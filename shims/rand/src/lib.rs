//! Offline stand-in for the parts of the [`rand`](https://crates.io/crates/rand)
//! crate this workspace uses.
//!
//! The build environment has no network registry, so the workspace vendors
//! this minimal, dependency-free shim instead of the real crate. It keeps
//! the same import surface (`rand::Rng`, `rand::SeedableRng`,
//! `rand::rngs::StdRng`) so the call sites read exactly like code written
//! against rand 0.8, and it is fully deterministic under
//! [`SeedableRng::seed_from_u64`] — the property every generator and test
//! in the workspace actually relies on.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 (the reference
//! seeding scheme from Blackman & Vigna). Streams therefore differ from
//! the real `StdRng` (ChaCha12); nothing in this workspace depends on the
//! concrete stream, only on determinism per seed.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random `u64`s plus the derived
/// convenience samplers the workspace uses (`gen_range`, `gen_bool`).
pub trait Rng {
    /// Return the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from `range` (half-open or inclusive; integer or
    /// floating point).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Return `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose whole stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that know how to sample a uniform value of type `T` from an
/// [`Rng`]. Blanket-implemented for `Range<T>` and `RangeInclusive<T>`
/// over every [`SampleUniform`] type, mirroring rand's structure so type
/// inference resolves integer literals from the use site.
pub trait SampleRange<T> {
    /// Draw one uniform sample from `self`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Types that can be drawn uniformly from a range (the integer and float
/// primitives).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)`.
    fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform sample from `[start, end]`.
    fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample from empty range");
        T::sample_inclusive(rng, start, end)
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, span)` via the widening-multiply method
/// (Lemire); bias is at most 2⁻⁶⁴ per draw, irrelevant here.
fn below(rng: &mut impl Rng, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        // Only reachable for u128-wide spans, which the workspace never
        // samples; fall back to two draws.
        let hi = (rng.next_u64() as u128) << 64;
        (hi | rng.next_u64() as u128) % span
    } else {
        (rng.next_u64() as u128 * span) >> 64
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                let v = start + (end - start) * unit_f64(rng.next_u64()) as $t;
                // Guard against `start + span * u` rounding up to `end`.
                if v < end { v } else { start }
            }
            fn sample_inclusive<R: Rng>(rng: &mut R, start: Self, end: Self) -> Self {
                start + (end - start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step, used to expand the `u64` seed into the state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard cheap
            // and explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(2012);
        let mut b = StdRng::seed_from_u64(2012);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1..=6usize);
            assert!((1..=6).contains(&w));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.3..1.5);
            assert!((0.3..1.5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn single_element_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(19);
        assert_eq!(rng.gen_range(4u32..=4), 4);
    }
}
