//! The write-ahead journal over real sockets.
//!
//! The crash-safety contract under test, without crashing anything
//! (the fault-injected crash smoke lives in `tests/crash_recovery.rs`):
//!
//! * a journaled `update_edges` acknowledges only after the batch is
//!   durable (`journaled: true` on the wire), and a fresh server
//!   pointed at the same journal directory recovers the exact world —
//!   query responses byte-identical across the restart;
//! * `stats` exposes the journal (epoch, records, what recovery
//!   replayed) and the server-wide `journaling` flag;
//! * `update_edges` racing `load_dataset` on the same name never tears
//!   state: epochs stay monotone per name, every answer matches the
//!   epoch it claims, and the journal ends at exactly the number of
//!   acknowledged batches.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use kor::json::JsonValue;
use kor::prelude::*;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kor-serve-journal-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_journaled(io: IoMode, journal: &Path, world_path: &Path) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io,
        queue_capacity: 256,
        journal: Some(journal.to_path_buf()),
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .attach_dataset("world", world_path)
        .expect("attach dataset");
    let addr = server.local_addr();
    (addr, server.start())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(resp.ends_with('\n'), "response must be a full line");
    JsonValue::parse(resp.trim_end()).expect("response is valid JSON")
}

fn assert_ok(resp: &JsonValue, what: &str) {
    assert_eq!(
        resp.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{what}: expected success, got {resp:?}"
    );
}

fn result_u64(resp: &JsonValue, key: &str) -> Option<u64> {
    resp.get("result")?.get(key)?.as_u64()
}

/// A mutation line scaling the budget of a real edge of `graph`.
fn scale_line(graph: &Graph, factor: f64) -> String {
    let (u, w) = graph
        .nodes()
        .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
        .next()
        .expect("the world has edges");
    format!(
        r#"{{"id":"mut","method":"update_edges","params":{{"dataset":"world","mutations":[{{"from":{},"to":{},"op":"scale","objective":1.0,"budget":{factor}}}]}}}}"#,
        u.0, w.0
    )
}

/// A canned-query request line with a fixed id, rendered once so the
/// pre- and post-restart responses are byte-comparable.
fn query_line(world: &Snapshot, i: usize) -> String {
    let q = &world.query_sets[0].queries[i % world.query_sets[0].queries.len()];
    let terms: Vec<JsonValue> = q
        .keywords
        .iter()
        .map(|k| JsonValue::from(world.graph.vocab().resolve(*k).unwrap()))
        .collect();
    format!(
        r#"{{"id":"q","method":"query","params":{{"dataset":"world","from":{},"to":{},"keywords":{},"budget":{},"algo":"os-scaling"}}}}"#,
        q.source.0,
        q.target.0,
        JsonValue::Arr(terms).render(),
        JsonValue::from(q.budget).render(),
    )
}

fn restart_battery(io: IoMode, tag: &str) {
    let dir = temp_dir(tag);
    let world = generate_world(&GenConfig::grid(6, 5, 3));
    let world_path = dir.join("world.korbin");
    write_snapshot(&world_path, &world).unwrap();
    let jdir = dir.join("journal");

    let (addr, handle) = start_journaled(io, &jdir, &world_path);
    let (mut conn, mut reader) = connect(addr);

    // Three acknowledged, journaled batches.
    for (i, factor) in [1.5, 2.0, 0.25].into_iter().enumerate() {
        let resp = roundtrip(&mut conn, &mut reader, &scale_line(&world.graph, factor));
        assert_ok(&resp, "journaled update_edges");
        assert_eq!(
            resp.get("result").unwrap().get("journaled"),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(result_u64(&resp, "epoch"), Some(i as u64 + 1));
    }

    // Capture post-mutation answers to replay after the restart.
    let queries: Vec<String> = (0..4).map(|i| query_line(&world, i)).collect();
    let before: Vec<String> = queries
        .iter()
        .map(|q| roundtrip(&mut conn, &mut reader, q).render())
        .collect();

    // The stats section tells the whole journal story.
    let stats = roundtrip(&mut conn, &mut reader, r#"{"id":"s","method":"stats"}"#);
    assert_ok(&stats, "stats");
    let server = stats.get("result").unwrap().get("server").unwrap();
    assert_eq!(server.get("journaling"), Some(&JsonValue::Bool(true)));
    let ds = &stats
        .get("result")
        .unwrap()
        .get("datasets")
        .unwrap()
        .as_arr()
        .unwrap()[0];
    let journal = ds.get("journal").expect("journaled dataset stats");
    assert_eq!(journal.get("epoch").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(journal.get("records").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(
        journal.get("recovered_batches").and_then(JsonValue::as_u64),
        Some(0),
        "a fresh journal has nothing to recover"
    );

    drop(conn);
    handle.shutdown();

    // A cold server on the same journal directory: recovery replays the
    // three batches and every answer is byte-identical.
    let (addr, handle) = start_journaled(io, &jdir, &world_path);
    let (mut conn, mut reader) = connect(addr);
    let stats = roundtrip(&mut conn, &mut reader, r#"{"id":"s","method":"stats"}"#);
    let ds = &stats
        .get("result")
        .unwrap()
        .get("datasets")
        .unwrap()
        .as_arr()
        .unwrap()[0];
    assert_eq!(ds.get("epoch").and_then(JsonValue::as_u64), Some(3));
    let journal = ds.get("journal").expect("journaled dataset stats");
    assert_eq!(
        journal.get("recovered_batches").and_then(JsonValue::as_u64),
        Some(3)
    );
    assert_eq!(
        journal.get("recovered_epoch").and_then(JsonValue::as_u64),
        Some(3)
    );
    for (q, want) in queries.iter().zip(&before) {
        let got = roundtrip(&mut conn, &mut reader, q).render();
        assert_eq!(&got, want, "answers must survive the restart bit-for-bit");
    }

    drop(conn);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journaled_mutations_survive_a_restart_event_io() {
    restart_battery(IoMode::Event, "restart-event");
}

#[test]
fn journaled_mutations_survive_a_restart_blocking_io() {
    restart_battery(IoMode::Blocking, "restart-blocking");
}

/// `update_edges` racing `load_dataset` on the same name, under
/// concurrent query load: no torn state, epochs monotone, and the
/// journal ends at exactly the acknowledged batch count.
#[test]
fn update_edges_racing_load_dataset_keeps_epochs_monotone() {
    let dir = temp_dir("race");
    let world = generate_world(&GenConfig::grid(6, 5, 3));
    let world_path = dir.join("world.korbin");
    write_snapshot(&world_path, &world).unwrap();
    let jdir = dir.join("journal");

    let (addr, handle) = start_journaled(IoMode::Event, &jdir, &world_path);

    const BATCHES: u64 = 12;
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let done = &done;
        let world = &world;
        let world_path = &world_path;

        // Queriers: every response must be ok and carry a sane epoch.
        let mut queriers = Vec::new();
        for _ in 0..2 {
            queriers.push(scope.spawn(move || {
                let (mut conn, mut reader) = connect(addr);
                let mut checked = 0u64;
                let mut i = 0;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = roundtrip(&mut conn, &mut reader, &query_line(world, i));
                    assert_ok(&resp, "concurrent query");
                    let epoch = result_u64(&resp, "epoch").expect("epoch on query");
                    assert!(epoch <= BATCHES, "epoch {epoch} out of range");
                    checked += 1;
                    i += 1;
                }
                checked
            }));
        }

        // Reloader: re-attach the same dataset by name, over and over.
        // Every load replays the journal, so its reported recovered
        // epoch can never exceed the batches acknowledged so far.
        let reloader = scope.spawn(move || {
            let (mut conn, mut reader) = connect(addr);
            let load = format!(
                r#"{{"id":"load","method":"load_dataset","params":{{"name":"world","path":{}}}}}"#,
                JsonValue::from(world_path.to_str().unwrap()).render()
            );
            let mut loads = 0u64;
            let mut last_recovered = 0u64;
            while !done.load(std::sync::atomic::Ordering::Relaxed) {
                let resp = roundtrip(&mut conn, &mut reader, &load);
                assert_ok(&resp, "concurrent load_dataset");
                let recovered = result_u64(&resp, "recovered_epoch").expect("recovered_epoch");
                assert!(
                    recovered >= last_recovered,
                    "recovery went backwards: {recovered} < {last_recovered}"
                );
                assert!(recovered <= BATCHES);
                last_recovered = recovered;
                loads += 1;
                std::thread::sleep(Duration::from_millis(3));
            }
            loads
        });

        // Mutator: acknowledged batches must see strictly increasing
        // epochs even though loads keep swapping the dataset under it.
        let (mut conn, mut reader) = connect(addr);
        let mut last_epoch = 0u64;
        for i in 0..BATCHES {
            let factor = if i % 2 == 0 { 2.0 } else { 0.5 };
            let resp = roundtrip(&mut conn, &mut reader, &scale_line(&world.graph, factor));
            assert_ok(&resp, "racing update_edges");
            assert_eq!(
                resp.get("result").unwrap().get("journaled"),
                Some(&JsonValue::Bool(true))
            );
            let epoch = result_u64(&resp, "epoch").expect("epoch on update");
            assert!(
                epoch > last_epoch,
                "epoch must be strictly monotone: {epoch} after {last_epoch}"
            );
            last_epoch = epoch;
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(last_epoch, BATCHES, "every batch advanced the epoch once");

        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = queriers.into_iter().map(|w| w.join().unwrap()).sum();
        let loads = reloader.join().unwrap();
        assert!(total > 0, "no concurrent query was ever checked");
        assert!(loads > 0, "no concurrent load ever raced the mutator");
        eprintln!("race check: {total} queries, {loads} reloads, {BATCHES} batches");

        // Final state: the journal holds exactly the acknowledged
        // batches and a fresh load replays all of them.
        let load = format!(
            r#"{{"id":"final","method":"load_dataset","params":{{"name":"world","path":{}}}}}"#,
            JsonValue::from(world_path.to_str().unwrap()).render()
        );
        let resp = roundtrip(&mut conn, &mut reader, &load);
        assert_ok(&resp, "final load_dataset");
        assert_eq!(result_u64(&resp, "recovered_epoch"), Some(BATCHES));
        assert_eq!(result_u64(&resp, "recovered_batches"), Some(BATCHES));
    });

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
