//! Backpressure tests for the event-driven I/O layer: saturating the
//! job queue must yield well-formed `overloaded` error responses (in
//! their proper pipeline slots), count them in `stats`, and leave the
//! server fully serviceable afterwards — and churning connections must
//! not leak file descriptors.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kor::data::{generate_world, GenConfig};
use kor::graph::fixtures::figure1;
use kor::graph::KeywordId;
use kor::json::JsonValue;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server};

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

fn read_json(reader: &mut BufReader<TcpStream>) -> JsonValue {
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    JsonValue::parse(resp.trim()).unwrap_or_else(|e| panic!("bad reply {resp:?}: {e:?}"))
}

fn error_code(v: &JsonValue) -> Option<&str> {
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
}

/// One worker, a one-slot queue, and a worker pinned down by an exact
/// search that runs to its deadline: a 40-request burst must get
/// exactly one real answer (the queued slot) and 39 well-formed
/// `overloaded` errors — then the server must recover completely.
#[test]
fn saturated_queue_answers_overloaded_and_recovers() {
    // A query hard enough that exact labeling cannot finish before the
    // deadline: the 12 rarest keywords with a near-threshold budget
    // keep the label search alive past 2 s even in release builds
    // (measured ~4 s unbounded), so the deadline — not the graph —
    // decides how long the worker stays busy.
    let world = generate_world(&GenConfig::grid(30, 30, 99));
    let nodes = world.graph.node_count();
    let vlen = world.graph.vocab().len();
    let keywords: Vec<String> = (0..12.min(vlen))
        .filter_map(|i| {
            world
                .graph
                .vocab()
                .resolve(KeywordId((vlen - 1 - i) as u32))
                .map(str::to_string)
        })
        .collect();
    assert!(!keywords.is_empty(), "generated world must carry keywords");

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        io: IoMode::Event,
        queue_capacity: 1,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_graph("grid", world.graph.clone()));
    let addr = server.local_addr();
    let handle = server.start();

    // Pin down the only worker for ~2 s.
    let kw_json: Vec<String> = keywords.iter().map(|k| format!("\"{k}\"")).collect();
    let slow = format!(
        r#"{{"id":"slow","method":"query","params":{{"dataset":"grid","from":0,"to":{},"keywords":[{}],"budget":150,"algo":"exact","deadline_ms":2000}}}}"#,
        nodes - 1,
        kw_json.join(","),
    );
    let (mut busy_conn, mut busy_reader) = connect(addr);
    busy_conn.write_all(slow.as_bytes()).unwrap();
    busy_conn.write_all(b"\n").unwrap();
    // Let the worker pop the slow job so the queue is empty but busy.
    std::thread::sleep(Duration::from_millis(400));

    // Burst 40 quick requests: seq 0 takes the one queue slot, the
    // other 39 must be refused per-request, not per-connection.
    let burst: String = (0..40)
        .map(|i| format!("{{\"id\":{i},\"method\":\"health\"}}\n"))
        .collect();
    let (mut conn, mut reader) = connect(addr);
    conn.write_all(burst.as_bytes()).unwrap();

    let mut overloaded = 0;
    let mut served = 0;
    for seq in 0..40 {
        let v = read_json(&mut reader);
        match v.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => {
                served += 1;
                assert_eq!(seq, 0, "only the queued request may succeed, got seq {seq}");
            }
            Some(false) => {
                assert_eq!(error_code(&v), Some("overloaded"), "seq {seq}: {v:?}");
                assert!(
                    matches!(v.get("id"), Some(JsonValue::Null)),
                    "an overloaded line is never parsed, so its id must be null"
                );
                overloaded += 1;
            }
            None => panic!("response without ok field: {v:?}"),
        }
    }
    assert_eq!(served, 1);
    assert_eq!(overloaded, 39);

    // The pinned worker ran to its deadline.
    let slow_reply = read_json(&mut busy_reader);
    assert_eq!(error_code(&slow_reply), Some("deadline_exceeded"));

    // Stats counted every refusal, and the queue drains back to empty.
    let (mut conn, mut reader) = connect(addr);
    conn.write_all(b"{\"method\":\"stats\"}\n").unwrap();
    let stats = read_json(&mut reader);
    let server_stats = stats
        .get("result")
        .and_then(|r| r.get("server"))
        .expect("stats.server");
    assert_eq!(
        server_stats.get("overloaded").and_then(JsonValue::as_u64),
        Some(39)
    );
    assert_eq!(
        server_stats
            .get("queued_requests")
            .and_then(JsonValue::as_u64),
        Some(0)
    );

    // Full recovery: a real query on the same connection succeeds.
    conn.write_all(
        b"{\"id\":\"after\",\"method\":\"query\",\"params\":{\"dataset\":\"grid\",\"from\":0,\"to\":1,\"budget\":1000000}}\n",
    )
    .unwrap();
    let v = read_json(&mut reader);
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{v:?}"
    );
    handle.shutdown();
}

fn open_fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("proc fd dir")
        .count()
}

/// 100 connect/use/drop cycles (plus some mid-line abandons) must not
/// leak file descriptors: the reactor has to reap every dead
/// connection and return its slab slot.
#[test]
fn connection_churn_does_not_leak_fds() {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io: IoMode::Event,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_graph("fig1", figure1()));
    let addr = server.local_addr();
    let handle = server.start();

    // Warm up (lazy fds: epoll-free, but the first connection may still
    // allocate) and take the baseline.
    for _ in 0..3 {
        let (mut conn, mut reader) = connect(addr);
        conn.write_all(b"{\"method\":\"health\"}\n").unwrap();
        read_json(&mut reader);
    }
    std::thread::sleep(Duration::from_millis(100));
    let before = open_fd_count();

    for cycle in 0..100 {
        let (mut conn, mut reader) = connect(addr);
        if cycle % 3 == 0 {
            // Abandon mid-line: the server holds a partial buffer when
            // the peer vanishes.
            conn.write_all(b"{\"method\":\"hea").unwrap();
        } else {
            conn.write_all(b"{\"method\":\"health\"}\n").unwrap();
            read_json(&mut reader);
        }
        drop(conn);
        drop(reader);
    }

    // Give the reactor time to notice every hangup and reap.
    std::thread::sleep(Duration::from_millis(500));
    let after = open_fd_count();
    assert!(
        after <= before + 4,
        "fd leak: {before} fds before churn, {after} after"
    );

    // And the server still answers.
    let (mut conn, mut reader) = connect(addr);
    conn.write_all(b"{\"method\":\"health\"}\n").unwrap();
    let v = read_json(&mut reader);
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.shutdown();
}
