//! Pipelining and framing tests for `kor serve`, run against both I/O
//! layers: N requests written in one burst must return N in-order
//! responses byte-identical to the same requests sent
//! one-connection-each, and a request line arriving in many TCP
//! segments (including segments straddling the reactor's read-buffer
//! boundary) must parse identically to a single-segment arrival.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kor::graph::fixtures::figure1;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

fn fixture_server(io: IoMode, threads: usize) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        io,
        // Deep queue: these tests pin ordering and byte-equivalence,
        // not backpressure (tests/serve_overload.rs covers that), so
        // no burst here may ever be answered `overloaded`.
        queue_capacity: 4096,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_graph("fig1", figure1()));
    let addr = server.local_addr();
    (addr, server.start())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

fn read_response(reader: &mut BufReader<TcpStream>) -> String {
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(resp.ends_with('\n'), "response must be a full line");
    resp.trim_end().to_string()
}

/// Deterministic request lines: queries and protocol errors only — no
/// `health`/`stats`, whose `uptime_ms` varies run to run.
fn canned_lines() -> Vec<String> {
    let mut lines = vec![
        r#"{"id":1,"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#.to_string(),
        r#"{"id":2,"method":"query","params":{"from":0,"to":7,"keywords":["t1"],"budget":10,"algo":"bucket-bound","k":2}}"#.to_string(),
        "definitely not json".to_string(),
        r#"{"id":4,"method":"teleport"}"#.to_string(),
        r#"{"id":5,"method":"query","params":{"from":0,"to":7}}"#.to_string(),
        r#"{"id":6,"method":"query","params":{"from":0,"to":7,"budget":5,"dataset":"mars"}}"#.to_string(),
        r#"{"id":7,"method":"query","params":{"from":3,"to":5,"keywords":["t2"],"budget":9,"algo":"greedy"}}"#.to_string(),
        r#"{"id":8,"method":"query","params":{"from":0,"to":7,"keywords":["t3"],"budget":12,"algo":"exact"}}"#.to_string(),
    ];
    // Pad to a depth that exercises reordering under a multi-worker
    // pool (quick errors complete before slow queries dispatched
    // earlier; the reactor must still answer in request order).
    for i in 0..24 {
        lines.push(format!(
            r#"{{"id":{},"method":"query","params":{{"from":0,"to":7,"keywords":["t{}","t{}"],"budget":{},"algo":"os-scaling"}}}}"#,
            100 + i,
            1 + i % 5,
            1 + (i + 2) % 5,
            8 + i % 6,
        ));
    }
    lines
}

/// One connection per request: the non-pipelined reference bytes.
fn one_each(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let (mut conn, mut reader) = connect(addr);
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            read_response(&mut reader)
        })
        .collect()
}

/// All requests in one burst on one connection.
fn one_burst(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let (mut conn, mut reader) = connect(addr);
    let mut payload = String::new();
    for line in lines {
        payload.push_str(line);
        payload.push('\n');
    }
    conn.write_all(payload.as_bytes()).unwrap();
    (0..lines.len())
        .map(|_| read_response(&mut reader))
        .collect()
}

#[test]
fn pipelined_burst_equals_one_connection_each() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, handle) = fixture_server(io, 4);
        let lines = canned_lines();
        let reference = one_each(addr, &lines);
        let burst = one_burst(addr, &lines);
        assert_eq!(
            burst,
            reference,
            "[{}] pipelined burst must be byte-identical to one-connection-each",
            io.as_str()
        );
        handle.shutdown();
    }
}

#[test]
fn eight_concurrent_pipelined_clients_agree() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, handle) = fixture_server(io, 4);
        let lines = canned_lines();
        let reference = one_each(addr, &lines);
        let mut clients = Vec::new();
        for _ in 0..8 {
            let lines = lines.clone();
            clients.push(std::thread::spawn(move || one_burst(addr, &lines)));
        }
        for client in clients {
            let got = client.join().expect("client thread");
            assert_eq!(
                got,
                reference,
                "[{}] concurrent pipelined client diverged",
                io.as_str()
            );
        }
        handle.shutdown();
    }
}

/// Graceful drain: a query pipelined IN FRONT of `shutdown` — both in
/// one TCP write, so the query is in flight when the shutdown lands —
/// still gets its full answer, in order, before the acknowledgement and
/// the server's exit. An in-flight request is never dropped by a
/// graceful stop.
#[test]
fn pipelined_query_in_flight_at_shutdown_is_still_answered() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, handle) = fixture_server(io, 2);
        let query = r#"{"id":"last-query","method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;
        // The reference answer, from a calm server.
        let reference = {
            let (mut conn, mut reader) = connect(addr);
            conn.write_all(query.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            read_response(&mut reader)
        };

        let (mut conn, mut reader) = connect(addr);
        conn.write_all(format!("{query}\n{{\"id\":\"bye\",\"method\":\"shutdown\"}}\n").as_bytes())
            .unwrap();
        let answered = read_response(&mut reader);
        assert_eq!(
            answered,
            reference,
            "[{}] the in-flight query must drain with its full answer",
            io.as_str()
        );
        let bye = read_response(&mut reader);
        assert!(
            bye.contains("\"stopping\":true"),
            "[{}] shutdown acknowledged after the drain: {bye}",
            io.as_str()
        );
        drop(conn);
        // The server actually stops — join() returns instead of hanging.
        handle.join();
    }
}

#[test]
fn cross_mode_responses_are_byte_identical() {
    let (event_addr, event_handle) = fixture_server(IoMode::Event, 3);
    let (blocking_addr, blocking_handle) = fixture_server(IoMode::Blocking, 3);
    let lines = canned_lines();
    let event = one_each(event_addr, &lines);
    let blocking = one_each(blocking_addr, &lines);
    assert_eq!(event, blocking, "event vs blocking response bytes");
    event_handle.shutdown();
    blocking_handle.shutdown();
}

/// Regression: a request line trickled in many small TCP segments —
/// with pauses, so every reactor read sees a partial line — must parse
/// identically to the same line arriving whole.
#[test]
fn segmented_request_parses_like_single_segment() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, handle) = fixture_server(io, 2);
        let line = r#"{"id":"seg","method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;

        let whole = {
            let (mut conn, mut reader) = connect(addr);
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            read_response(&mut reader)
        };

        let (mut conn, mut reader) = connect(addr);
        for (i, chunk) in line.as_bytes().chunks(3).enumerate() {
            conn.write_all(chunk).unwrap();
            conn.flush().unwrap();
            if i % 8 == 0 {
                // Long enough that the reactor is guaranteed to have
                // polled the socket mid-line several times.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        std::thread::sleep(Duration::from_millis(5));
        conn.write_all(b"\n").unwrap();
        let segmented = read_response(&mut reader);
        assert_eq!(
            segmented,
            whole,
            "[{}] segmented arrival changed the response",
            io.as_str()
        );
        handle.shutdown();
    }
}

/// Regression: a single request line larger than the reactor's 16 KiB
/// scratch read buffer straddles several reads; it must parse (and
/// answer) identically to the same line sent in one segment, and the
/// id — however large — must round-trip.
#[test]
fn line_straddling_read_buffer_boundary_parses_identically() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let (addr, handle) = fixture_server(io, 2);
        // ~40 KB id: the line cannot fit in one 16 KiB reactor read.
        let big_id = "x".repeat(40_000);
        let line = format!(
            r#"{{"id":"{big_id}","method":"query","params":{{"from":0,"to":7,"keywords":["t1"],"budget":10}}}}"#
        );

        let whole = {
            let (mut conn, mut reader) = connect(addr);
            conn.write_all(line.as_bytes()).unwrap();
            conn.write_all(b"\n").unwrap();
            read_response(&mut reader)
        };
        assert!(whole.contains(&big_id), "id must round-trip");
        assert!(whole.contains("\"ok\":true"), "{}", &whole[..120]);

        // The same line dribbled in 1000-byte segments with pauses at
        // scratch-buffer-sized strides.
        let (mut conn, mut reader) = connect(addr);
        for (i, chunk) in line.as_bytes().chunks(1000).enumerate() {
            conn.write_all(chunk).unwrap();
            if i % 16 == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        conn.write_all(b"\n").unwrap();
        let segmented = read_response(&mut reader);
        assert_eq!(
            segmented,
            whole,
            "[{}] buffer-straddling arrival changed the response",
            io.as_str()
        );
        handle.shutdown();
    }
}
