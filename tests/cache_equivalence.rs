//! Pre-processing cache contract tests.
//!
//! The cache must be **invisible** in results: every algorithm answers
//! byte-identically (route node ids and the IEEE-754 bit patterns of
//! both scores) whether the `τ`/`σ` pre-processing was rebuilt cold or
//! pulled from a shared warm cache, whether the cache was shared across
//! threads, and whether entries were LRU-evicted in between. Also pins
//! the stride-based deadline check: deadlines still fire promptly.

use std::time::{Duration, Instant};

use kor::prelude::*;
use kor_core::{
    bucket_bound_with_cache, exact_labeling_with_cache, os_scaling_with_cache,
    top_k_bucket_bound_with_cache, top_k_os_scaling_with_cache, PreprocessCache,
};

/// A deterministic repeated-target workload over a small road network.
fn setup() -> (Graph, InvertedIndex, Vec<KorQuery>) {
    let mut cfg = RoadNetConfig::small();
    cfg.seed = 17;
    let graph = generate_roadnet(&cfg);
    let index = InvertedIndex::build(&graph);
    let sets = generate_workload(
        &graph,
        &index,
        &WorkloadConfig {
            keyword_counts: vec![1, 2, 3],
            queries_per_set: 4,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed: 99,
        },
    );
    let mut queries = Vec::new();
    for set in &sets {
        for spec in &set.queries {
            // Repeat each (source, target) with varied budgets so the
            // warm pass hits the cached context.
            for delta in [30.0, 45.0, 60.0] {
                queries.push(
                    KorQuery::new(
                        &graph,
                        spec.source,
                        spec.target,
                        spec.keywords.clone(),
                        delta,
                    )
                    .unwrap(),
                );
            }
        }
    }
    (graph, index, queries)
}

/// Byte-exact fingerprint of a result set.
fn fp(routes: &[RouteResult]) -> Vec<(Vec<u32>, u64, u64)> {
    routes
        .iter()
        .map(|r| {
            (
                r.route.nodes().iter().map(|n| n.0).collect(),
                r.objective.to_bits(),
                r.budget.to_bits(),
            )
        })
        .collect()
}

/// Runs one named algorithm with an optional cache.
fn run_algo(
    graph: &Graph,
    index: &InvertedIndex,
    q: &KorQuery,
    algo: &str,
    cache: Option<&PreprocessCache>,
) -> Vec<RouteResult> {
    let os = OsScalingParams::default();
    let bb = BucketBoundParams::default();
    match algo {
        "os-scaling" => os_scaling_with_cache(graph, index, q, &os, cache)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "bucket-bound" => bucket_bound_with_cache(graph, index, q, &bb, cache)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "exact" => exact_labeling_with_cache(graph, index, q, None, cache)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "top-k-os-scaling" => {
            top_k_os_scaling_with_cache(graph, index, q, &os, 3, cache)
                .unwrap()
                .routes
        }
        "top-k-bucket-bound" => {
            top_k_bucket_bound_with_cache(graph, index, q, &bb, 3, cache)
                .unwrap()
                .routes
        }
        other => panic!("unknown algo {other}"),
    }
}

const ALGOS: [&str; 5] = [
    "os-scaling",
    "bucket-bound",
    "exact",
    "top-k-os-scaling",
    "top-k-bucket-bound",
];

#[test]
fn cached_results_byte_identical_across_all_algorithms() {
    let (graph, index, queries) = setup();
    for algo in ALGOS {
        let cache = PreprocessCache::new();
        for q in &queries {
            let cold = run_algo(&graph, &index, q, algo, None);
            let warm = run_algo(&graph, &index, q, algo, Some(&cache));
            assert_eq!(
                fp(&cold),
                fp(&warm),
                "{algo}: warm result diverged from cold"
            );
        }
        let stats = cache.stats();
        assert!(
            stats.ctx_hits > 0,
            "{algo}: repeated targets never hit the cache"
        );
        assert!(stats.ctx_misses > 0 && stats.trees_built >= 2);
    }
}

#[test]
fn engine_and_free_functions_agree() {
    // The KorEngine methods run on the warm path; the free functions run
    // cold. Both must agree for every algorithm, including after the
    // engine's cache is fully warm (second sweep).
    let (graph, index, queries) = setup();
    let engine = KorEngine::new(&graph);
    for sweep in 0..2 {
        for q in &queries {
            let os = OsScalingParams::default();
            let bb = BucketBoundParams::default();
            let warm = engine.os_scaling(q, &os).unwrap();
            let cold = os_scaling(&graph, &index, q, &os).unwrap();
            assert_eq!(
                fp(&warm.route.into_iter().collect::<Vec<_>>()),
                fp(&cold.route.into_iter().collect::<Vec<_>>()),
                "sweep {sweep}"
            );
            let warm = engine.top_k_bucket_bound(q, &bb, 2).unwrap();
            let cold = top_k_bucket_bound(&graph, &index, q, &bb, 2).unwrap();
            assert_eq!(fp(&warm.routes), fp(&cold.routes), "sweep {sweep}");
        }
    }
    let stats = engine.preprocess_stats();
    assert!(stats.ctx_hits > 0, "second sweep must hit the warm cache");
}

#[test]
fn search_stats_report_cache_hits() {
    let (graph, _, queries) = setup();
    let engine = KorEngine::new(&graph);
    let q = &queries[0];
    let first = engine
        .os_scaling(q, &OsScalingParams::default())
        .unwrap()
        .stats;
    assert_eq!(first.cache_hits, 0);
    assert!(first.cache_misses >= 1);
    assert!(first.trees_built >= 2);
    let second = engine
        .os_scaling(q, &OsScalingParams::default())
        .unwrap()
        .stats;
    assert!(second.cache_hits >= 1, "repeat query must hit");
    assert_eq!(second.trees_built, 0, "warm search builds no trees");
}

#[test]
fn concurrent_queries_share_one_cache() {
    // Workers hammer the same engine (and therefore the same
    // PreprocessCache) from std::thread::scope; every thread must see
    // exactly the sequential answers, and the shared cache must have
    // served hits.
    let (graph, index, queries) = setup();
    let engine = KorEngine::new(&graph);
    let expected: Vec<_> = queries
        .iter()
        .map(|q| fp(&run_algo(&graph, &index, q, "bucket-bound", None)))
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let engine = &engine;
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                for (q, want) in queries.iter().zip(expected) {
                    let got = engine
                        .bucket_bound(q, &BucketBoundParams::default())
                        .unwrap()
                        .route
                        .into_iter()
                        .collect::<Vec<_>>();
                    assert_eq!(&fp(&got), want);
                }
            });
        }
    });
    let stats = engine.preprocess_stats();
    assert!(
        stats.ctx_hits > 0,
        "4 threads × repeated targets must produce hits"
    );
    // Distinct targets in the workload bound the entry count no matter
    // how many threads raced.
    assert!(engine.preprocess_cache().context_entries() <= 12);
}

#[test]
fn eviction_under_tiny_capacity_keeps_answers_exact() {
    let (graph, index, queries) = setup();
    // Capacity 2 with ≥ 3 distinct targets forces LRU evictions.
    let engine = KorEngine::with_cache_capacity(&graph, 2);
    for sweep in 0..2 {
        for q in &queries {
            let warm = engine.os_scaling(q, &OsScalingParams::default()).unwrap();
            let cold = os_scaling(&graph, &index, q, &OsScalingParams::default()).unwrap();
            assert_eq!(
                fp(&warm.route.into_iter().collect::<Vec<_>>()),
                fp(&cold.route.into_iter().collect::<Vec<_>>()),
                "sweep {sweep}: eviction must not change answers"
            );
        }
    }
    assert!(engine.preprocess_cache().context_entries() <= 2);
    let stats = engine.preprocess_stats();
    assert!(
        stats.evictions > 0,
        "capacity 2 over many targets must evict"
    );
    // Budget-varied repeats of one target still hit before eviction.
    assert!(stats.ctx_hits > 0);
}

#[test]
fn deadline_fires_promptly_despite_strided_checks() {
    // The deadline is now checked every 1024 pops instead of every pop.
    // This search runs for tens of seconds unbounded (ε = 0.005, no
    // optimization strategies, 8 keywords); with a 50 ms deadline it
    // must abort quickly — pops are microsecond-scale, so 1024 of them
    // keep the firing latency far under the assertion's slack.
    let mut cfg = RoadNetConfig::with_nodes(3000);
    cfg.seed = 3;
    let graph = generate_roadnet(&cfg);
    let index = InvertedIndex::build(&graph);
    let kws: Vec<KeywordId> = index
        .iter()
        .filter(|(_, p)| p.len() >= 3 && p.len() <= 30)
        .map(|(k, _)| k)
        .take(8)
        .collect();
    let q = KorQuery::new(&graph, NodeId(0), NodeId(700), kws, 1e6).unwrap();
    let params = OsScalingParams {
        epsilon: 0.005,
        use_opt1: false,
        use_opt2: false,
        deadline: Some(Instant::now() + Duration::from_millis(50)),
        ..OsScalingParams::default()
    };
    let t0 = Instant::now();
    let r = os_scaling(&graph, &index, &q, &params);
    let elapsed = t0.elapsed();
    assert!(
        matches!(r, Err(KorError::DeadlineExceeded)),
        "50 ms deadline must abort a ~30 s search"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "deadline fired too late: {elapsed:?}"
    );
}

#[test]
fn expired_deadline_aborts_before_any_pop() {
    // The stride check must run on the very first pop: an
    // already-expired deadline aborts with zero work in both engines.
    let (graph, index, queries) = setup();
    let q = &queries[0];
    let past = Some(Instant::now() - Duration::from_secs(1));
    let os = OsScalingParams {
        deadline: past,
        ..OsScalingParams::default()
    };
    let bb = BucketBoundParams {
        deadline: past,
        ..BucketBoundParams::default()
    };
    assert!(matches!(
        os_scaling(&graph, &index, q, &os),
        Err(KorError::DeadlineExceeded)
    ));
    assert!(matches!(
        bucket_bound(&graph, &index, q, &bb),
        Err(KorError::DeadlineExceeded)
    ));
}
