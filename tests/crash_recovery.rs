//! Crash-recovery smoke: kill a journaled `kor serve` mid-mutation-storm
//! at a seeded fault point, restart it cold on the same journal
//! directory, and byte-diff its canned-query responses against a
//! never-crashed twin server that applied the recovered prefix of the
//! same batch sequence.
//!
//! Three crash windows, each a distinct durability edge:
//!
//! * `journal-append:torn` — death mid-record-write: a torn tail on
//!   disk, the interrupted batch lost, everything acknowledged intact;
//! * `journal-append:crash` — death after the write, before the fsync;
//! * `journal-synced:crash` — death after the fsync but before the
//!   acknowledgement: the batch is durable though no client ever heard
//!   so (recovery may legitimately land AHEAD of the last ack).
//!
//! Responses from the recovered server and the twin are also written
//! under `$CARGO_TARGET_TMPDIR/crash-smoke/` (with a copy of the
//! journal) so CI can upload the evidence on failure.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use kor::json::JsonValue;
use kor::prelude::*;

fn kor_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kor"))
}

/// Kills the server child on drop so a failing assertion never leaks a
/// listening process.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(args: &[&str], fault: Option<&str>) -> ServerGuard {
    let mut cmd = kor_cmd();
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::null());
    if let Some(spec) = fault {
        cmd.env(kor::data::faultpoint::ENV_VAR, spec);
    }
    let mut child = cmd.spawn().expect("spawn kor serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stdout).read_line(&mut line);
        let _ = tx.send(line);
    });
    let line = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("server must announce its address");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address token")
        .to_string();
    assert!(
        line.contains("listening on") && addr.contains(':'),
        "unexpected announcement {line:?}"
    );
    ServerGuard { child, addr }
}

fn connect(addr: &str) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

/// Sends one line; `None` if the connection died (the crash under
/// test), `Some(response)` otherwise.
fn try_roundtrip(
    conn: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    line: &str,
) -> Option<JsonValue> {
    conn.write_all(line.as_bytes()).ok()?;
    conn.write_all(b"\n").ok()?;
    let mut resp = String::new();
    match reader.read_line(&mut resp) {
        Ok(0) | Err(_) => None,
        Ok(_) => JsonValue::parse(resp.trim_end()).ok(),
    }
}

fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    let resp = try_roundtrip(conn, reader, line).expect("server answered");
    assert_eq!(
        resp.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "expected success: {resp:?}"
    );
    resp
}

/// The deterministic mutation storm: batch `i` scales the budget of the
/// world's first edge by a factor both the victim and the twin can
/// reconstruct.
fn batch_line(graph: &Graph, i: u64) -> String {
    let (u, w) = graph
        .nodes()
        .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
        .next()
        .expect("the world has edges");
    let factor = [1.5, 2.0, 0.5, 1.25, 0.8][i as usize % 5];
    format!(
        r#"{{"id":{i},"method":"update_edges","params":{{"dataset":"world","mutations":[{{"from":{},"to":{},"op":"scale","objective":1.0,"budget":{factor}}}]}}}}"#,
        u.0, w.0
    )
}

fn query_lines(world: &Snapshot) -> Vec<String> {
    world
        .query_sets
        .iter()
        .flat_map(|set| &set.queries)
        .enumerate()
        .map(|(i, q)| {
            let terms: Vec<JsonValue> = q
                .keywords
                .iter()
                .map(|k| JsonValue::from(world.graph.vocab().resolve(*k).unwrap()))
                .collect();
            format!(
                r#"{{"id":{i},"method":"query","params":{{"dataset":"world","from":{},"to":{},"keywords":{},"budget":{},"algo":"os-scaling"}}}}"#,
                q.source.0,
                q.target.0,
                JsonValue::Arr(terms).render(),
                JsonValue::from(q.budget).render(),
            )
        })
        .collect()
}

fn answers(addr: &str, lines: &[String]) -> Vec<String> {
    let (mut conn, mut reader) = connect(addr);
    lines
        .iter()
        .map(|q| roundtrip(&mut conn, &mut reader, q).render())
        .collect()
}

fn smoke(tag: &str, fault: &str) {
    let dir = std::env::temp_dir().join(format!("kor-crash-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let world = generate_world(&GenConfig::grid(6, 5, 3));
    let world_path = dir.join("world.korbin");
    write_snapshot(&world_path, &world).unwrap();
    let jdir = dir.join("journal");
    let artifacts = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join("crash-smoke")
        .join(tag);
    std::fs::create_dir_all(&artifacts).unwrap();

    let dataset_arg = format!("world={}", world_path.to_str().unwrap());
    let serve_args = |jdir: &Path| {
        vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--threads".to_string(),
            "2".to_string(),
            "--journal".to_string(),
            jdir.to_str().unwrap().to_string(),
            "--dataset".to_string(),
            dataset_arg.clone(),
        ]
    };

    // --- the victim: journaled serve with a seeded crash point ---
    let args: Vec<String> = serve_args(&jdir);
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let mut victim = spawn_server(&arg_refs, Some(fault));
    let (mut conn, mut reader) = connect(&victim.addr);
    let mut acked = 0u64;
    let mut attempted = 0u64;
    while attempted < 64 {
        attempted += 1;
        match try_roundtrip(
            &mut conn,
            &mut reader,
            &batch_line(&world.graph, attempted - 1),
        ) {
            Some(resp) => {
                assert_eq!(
                    resp.get("ok").and_then(JsonValue::as_bool),
                    Some(true),
                    "{tag}: pre-crash batch must succeed: {resp:?}"
                );
                acked += 1;
            }
            None => break, // the fault fired and took the process down
        }
    }
    assert!(
        attempted < 64,
        "{tag}: fault {fault:?} never fired in 64 batches"
    );
    assert!(acked > 0, "{tag}: the storm never landed a batch");
    let status = victim.child.wait().expect("victim exits");
    assert!(!status.success(), "{tag}: the victim must die, not exit 0");

    // Preserve the post-crash journal bytes as evidence.
    for entry in std::fs::read_dir(&jdir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::copy(&path, artifacts.join(path.file_name().unwrap())).unwrap();
    }

    // --- cold restart on the same journal: recovery replays the tail ---
    let args: Vec<String> = serve_args(&jdir);
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let recovered_srv = spawn_server(&arg_refs, None);
    let (mut conn, mut reader) = connect(&recovered_srv.addr);
    let stats = roundtrip(&mut conn, &mut reader, r#"{"id":"s","method":"stats"}"#);
    let ds = &stats
        .get("result")
        .unwrap()
        .get("datasets")
        .unwrap()
        .as_arr()
        .unwrap()[0];
    let recovered = ds
        .get("journal")
        .and_then(|j| j.get("recovered_epoch"))
        .and_then(JsonValue::as_u64)
        .expect("recovered_epoch in stats");
    // Every acknowledged batch must survive; a batch that was durable
    // but unacknowledged (the journal-synced window) may ride along.
    assert!(
        recovered >= acked && recovered <= attempted,
        "{tag}: recovered epoch {recovered} vs {acked} acked / {attempted} attempted"
    );
    drop((conn, reader));

    // --- the never-crashed twin: base world + the recovered prefix ---
    let twin_jdir = dir.join("twin-journal");
    let args: Vec<String> = serve_args(&twin_jdir);
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    let twin_srv = spawn_server(&arg_refs, None);
    let (mut conn, mut reader) = connect(&twin_srv.addr);
    for i in 0..recovered {
        let resp = roundtrip(&mut conn, &mut reader, &batch_line(&world.graph, i));
        assert_eq!(
            resp.get("result")
                .and_then(|r| r.get("epoch"))
                .and_then(JsonValue::as_u64),
            Some(i + 1),
            "{tag}: twin batch {i}"
        );
    }
    drop((conn, reader));

    // --- the diff: every canned query, byte for byte ---
    let queries = query_lines(&world);
    let from_recovered = answers(&recovered_srv.addr, &queries);
    let from_twin = answers(&twin_srv.addr, &queries);
    std::fs::write(artifacts.join("recovered.jsonl"), from_recovered.join("\n")).unwrap();
    std::fs::write(artifacts.join("twin.jsonl"), from_twin.join("\n")).unwrap();
    assert_eq!(
        from_recovered,
        from_twin,
        "{tag}: recovered server diverged from the never-crashed twin \
         (evidence in {})",
        artifacts.display()
    );
    eprintln!(
        "crash smoke [{tag}]: {acked} acked, {recovered} recovered, \
         {} canned queries byte-identical",
        queries.len()
    );

    drop(recovered_srv);
    drop(twin_srv);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_crash_recovers_bit_identically() {
    smoke("torn", "journal-append:torn:4");
}

#[test]
fn pre_sync_crash_recovers_bit_identically() {
    smoke("crash", "journal-append:crash:3");
}

#[test]
fn post_sync_pre_ack_crash_recovers_bit_identically() {
    smoke("synced", "journal-synced:crash:5");
}
