//! Dynamic-world oracle battery: a warm engine that survived a
//! mutation sequence via incremental cache invalidation answers every
//! query bit-for-bit identically to a cold engine built from the
//! mutated graph.
//!
//! The same 18 generated worlds `tests/gen_oracle.rs` validates against
//! the brute-force oracle each get a seeded traffic script (closures,
//! rush-hour slowdowns, reopenings). After every phase the warm engine
//! — whose τ/σ context cache, Opt-2 bound trees, and greedy forward
//! trees were warmed before the incident and selectively evicted by it
//! — answers every canned query with every algorithm, and so does a
//! cold engine built from scratch on the mutated graph. The answers
//! must match exactly: same feasibility, same route node ids, same
//! objective/budget f64 bit patterns, same top-k order. Every feasible
//! route is re-walked edge by edge against the *mutated* graph, so a
//! stale cache entry can't smuggle a closed edge back into an answer.
//!
//! Non-vacuity comes in two halves. Eviction: the generated worlds are
//! strongly connected (bidirectional edges), so every backward tree
//! reaches every node and each phase must evict warm entries — the
//! battery counts them. Survival: strongly connected worlds can never
//! retain a stamped tree, so a separate directed-world test (the
//! paper's Figure 1) proves entries whose stamp avoids the changed
//! edges stay warm and keep answering — with their hit counters as the
//! witness. A third test replays mutations through the sharded dataset
//! path (`Dataset::with_mutations`) and checks the router — re-derived
//! boundary or degraded fused-only — stays byte-identical to the cold
//! fused engine.

use std::sync::Arc;

use kor::prelude::*;
use kor::serve::registry::Dataset;
use kor::shard::ShardPlan;

const EPSILON: f64 = 0.5;
const BETA: f64 = 1.2;
const TOL: f64 = 1e-9;
const K: usize = 3;

/// Same worlds as `tests/gen_oracle.rs`: two topologies × 9 seeds.
fn worlds() -> Vec<GenConfig> {
    let mut configs = Vec::new();
    for seed in 0..9 {
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.5,
            ..GenConfig::grid(3, 4, seed)
        });
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.6,
            ..GenConfig::ring(10, 3, 1000 + seed)
        });
    }
    configs
}

/// A route reduced to its exact bits: node ids, OS bits, BS bits.
type RouteKey = (Vec<u32>, u64, u64);

fn key(r: &RouteResult) -> RouteKey {
    (
        r.route.nodes().iter().map(|n| n.0).collect(),
        r.objective.to_bits(),
        r.budget.to_bits(),
    )
}

const ALGOS: [&str; 6] = [
    "exact",
    "os-scaling",
    "bucket-bound",
    "top-k-os-scaling",
    "top-k-bucket-bound",
    "greedy",
];

/// Runs one algorithm on one engine and reduces the answer to routes.
fn run_algo<G: AsRef<Graph>>(
    engine: &KorEngine<G>,
    query: &KorQuery,
    algo: &str,
    anchor: Option<ScaleAnchor>,
) -> Vec<RouteResult> {
    let os = OsScalingParams {
        anchor,
        ..OsScalingParams::with_epsilon(EPSILON)
    };
    let bb = BucketBoundParams {
        anchor,
        ..BucketBoundParams::with(EPSILON, BETA)
    };
    match algo {
        "exact" => engine.exact(query).unwrap().route.into_iter().collect(),
        "os-scaling" => engine
            .os_scaling(query, &os)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "bucket-bound" => engine
            .bucket_bound(query, &bb)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "top-k-os-scaling" => engine.top_k_os_scaling(query, &os, K).unwrap().routes,
        "top-k-bucket-bound" => engine.top_k_bucket_bound(query, &bb, K).unwrap().routes,
        "greedy" => engine
            .greedy(query, &GreedyParams::default())
            .unwrap()
            .into_iter()
            .map(|g| RouteResult {
                route: g.route,
                objective: g.objective,
                budget: g.budget,
            })
            .collect(),
        other => unreachable!("unknown algo {other}"),
    }
}

/// Re-walks a route against the mutated graph: every hop must be an
/// edge that exists *now* (a stale tree citing a closed edge fails
/// here) and the claimed scores must match the current edge weights.
fn verify_route(graph: &Graph, query: &KorQuery, r: &RouteResult, what: &str) {
    let nodes = r.route.nodes();
    assert_eq!(*nodes.first().unwrap(), query.source, "{what}: source");
    assert_eq!(*nodes.last().unwrap(), query.target, "{what}: target");
    let mut os = 0.0;
    let mut bs = 0.0;
    for w in nodes.windows(2) {
        let e = graph.edge_between(w[0], w[1]).unwrap_or_else(|| {
            panic!(
                "{what}: edge {} -> {} does not exist after mutation",
                w[0], w[1]
            )
        });
        os += e.objective;
        bs += e.budget;
    }
    assert!((os - r.objective).abs() < TOL, "{what}: OS mismatch");
    assert!((bs - r.budget).abs() < TOL, "{what}: BS mismatch");
    assert!(bs <= query.budget + TOL, "{what}: over budget");
}

/// Warms every cache family: all six algorithms on every canned query.
fn warm_all(engine: &KorEngine<Arc<Graph>>, queries: &[KorQuery]) {
    for query in queries {
        for algo in ALGOS {
            let _ = run_algo(engine, query, algo, None);
        }
    }
}

/// Rebuilds the canned queries against the (mutated) graph — node ids
/// and vocab survive every mutation, so this can't fail.
fn canned_queries(graph: &Graph, sets: &[kor::data::CannedQuerySet]) -> Vec<KorQuery> {
    sets.iter()
        .flat_map(|set| &set.queries)
        .map(|q| {
            KorQuery::new(graph, q.source, q.target, q.keywords.clone(), q.budget)
                .expect("canned queries stay constructible across mutations")
        })
        .collect()
}

#[test]
fn warm_engine_matches_cold_rebuild_after_every_phase_on_all_worlds() {
    let mut evicted_total = 0usize;
    let mut compared = 0usize;
    for config in worlds() {
        let world = generate_world(&config);
        let label = format!("{} seed {}", config.topology.name(), config.seed);
        let script = generate_traffic(&world.graph, &TrafficConfig::base(0xD1CE ^ config.seed));
        let mut engine = KorEngine::new(Arc::new(world.graph.clone()));
        warm_all(&engine, &canned_queries(engine.graph(), &world.query_sets));

        for (phase, batch) in script.iter().enumerate() {
            let (next, report) = engine
                .apply_edge_mutations(batch)
                .unwrap_or_else(|e| panic!("{label} phase {phase}: {e}"));
            engine = next;
            evicted_total += report.total_evicted();
            assert_eq!(report.epoch, (phase + 1) as u64, "{label}");

            let cold = KorEngine::new(Arc::new(engine.graph().clone()));
            let queries = canned_queries(engine.graph(), &world.query_sets);
            for query in &queries {
                for algo in ALGOS {
                    let what = format!(
                        "{label} phase {phase}: {} -> {} Δ {:.3} [{algo}]",
                        query.source, query.target, query.budget
                    );
                    let warm = run_algo(&engine, query, algo, None);
                    let cold_routes = run_algo(&cold, query, algo, None);
                    assert_eq!(
                        warm.iter().map(key).collect::<Vec<_>>(),
                        cold_routes.iter().map(key).collect::<Vec<_>>(),
                        "{what}: warm engine diverged from cold rebuild"
                    );
                    compared += 1;
                    for (i, r) in warm.iter().enumerate() {
                        // Greedy may return an infeasible best-effort
                        // route; only feasible ones re-walk cleanly.
                        if algo != "greedy" || r.budget <= query.budget {
                            verify_route(engine.graph(), query, r, &format!("{what} #{i}"));
                        }
                    }
                }
            }
            // Re-warm so the next phase's invalidation has warm state to
            // carve up (the comparisons above already did this as a side
            // effect; this line just documents the intent).
        }
    }
    assert!(
        evicted_total > 0,
        "no mutation ever evicted a warm cache entry — the invalidation \
         path went untested"
    );
    eprintln!(
        "mutate oracle: {compared} warm-vs-cold comparisons, \
         {evicted_total} cache entries evicted"
    );
}

#[test]
fn directed_world_retains_warm_entries_that_avoid_the_changed_edges() {
    // Figure 1 of the paper is directed: {v0..v3} are exactly the nodes
    // that reach v1, so a mutation behind v7 can't touch v1's backward
    // trees. This is the survival half of non-vacuity: incremental
    // invalidation must keep those entries warm *and* they must keep
    // answering (hits, not rebuilds).
    let graph = Arc::new(kor::graph::fixtures::figure1());
    let v = |i: u32| NodeId(i);
    let engine = KorEngine::new(Arc::clone(&graph));
    let queries: Vec<KorQuery> = [
        (0, 7, vec!["t1", "t2"], 10.0),
        (0, 1, vec!["t2"], 8.0),
        (2, 7, vec!["t4"], 12.0),
        (3, 1, vec!["t1"], 6.0),
    ]
    .into_iter()
    .map(|(s, t, kw, b)| {
        KorQuery::from_terms(graph.as_ref(), v(s), v(t), kw, b).expect("valid query")
    })
    .collect();
    warm_all(&engine, &queries);

    // Slow down v5 -> v4: its head v4 reaches v7 but not v1, so the v1
    // contexts must survive while the v7 ones go.
    let (mutated, report) = engine
        .apply_edge_mutations(&[EdgeMutation::scale(v(5), v(4), 1.0, 1.5)])
        .expect("valid mutation");
    assert!(
        report.contexts_retained >= 1,
        "v1's context should survive: {report:?}"
    );
    assert!(
        report.contexts_evicted >= 1,
        "v7's context should be evicted: {report:?}"
    );
    assert!(
        report.total_retained() > 0 && report.total_evicted() > 0,
        "directed-world non-vacuity: {report:?}"
    );

    // The survivors keep answering from cache: re-running a v1 query
    // must not build new trees.
    let before = mutated.preprocess_cache().stats().trees_built;
    let q_v1 = KorQuery::from_terms(mutated.graph(), v(0), v(1), vec!["t2"], 8.0).unwrap();
    let _ = run_algo(&mutated, &q_v1, "os-scaling", None);
    assert_eq!(
        mutated.preprocess_cache().stats().trees_built,
        before,
        "retained context was rebuilt instead of reused"
    );

    // And the warm engine still matches a cold rebuild on every query.
    let cold = KorEngine::new(Arc::new(mutated.graph().clone()));
    for (i, (s, t, kw, b)) in [
        (0u32, 7u32, vec!["t1", "t2"], 10.0),
        (0, 1, vec!["t2"], 8.0),
        (2, 7, vec!["t4"], 12.0),
        (3, 1, vec!["t1"], 6.0),
    ]
    .into_iter()
    .enumerate()
    {
        let query = KorQuery::from_terms(mutated.graph(), v(s), v(t), kw, b).unwrap();
        for algo in ALGOS {
            assert_eq!(
                run_algo(&mutated, &query, algo, None)
                    .iter()
                    .map(key)
                    .collect::<Vec<_>>(),
                run_algo(&cold, &query, algo, None)
                    .iter()
                    .map(key)
                    .collect::<Vec<_>>(),
                "query {i} [{algo}]: warm diverged from cold"
            );
        }
    }
}

#[test]
fn sharded_dataset_stays_byte_identical_through_mutations() {
    let mut stayed_sharded = 0usize;
    let mut degraded = 0usize;
    for config in worlds().into_iter().take(6) {
        let mut world = generate_world(&config);
        let label = format!("{} seed {}", config.topology.name(), config.seed);
        world.sharding = Some(compute_sharding(&world.graph, 2));
        let assignment = world.sharding.as_ref().unwrap().assignment.clone();
        let query_sets = world.query_sets.clone();
        let dataset = Dataset::from_snapshot("w", world);
        assert!(dataset.router().is_some(), "{label}: dataset is sharded");

        // Two deterministic batches: first an intra-shard slowdown (the
        // boundary stays valid, the router stays sharded), then a
        // cut-edge slowdown (the router must degrade to fused-only).
        let graph = dataset.engine().graph();
        let intra = graph
            .nodes()
            .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
            .find(|&(u, w)| assignment[u.index()] == assignment[w.index()]);
        let cut = graph
            .nodes()
            .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
            .find(|&(u, w)| assignment[u.index()] != assignment[w.index()]);
        let (Some(intra), Some(cut)) = (intra, cut) else {
            panic!("{label}: expected both intra-shard and cut edges");
        };

        let mut dataset = dataset;
        for (u, w) in [intra, cut] {
            let (next, _report) = dataset
                .with_mutations(&[EdgeMutation::scale(u, w, 1.0, 1.25)])
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            dataset = next;
            let router = dataset.router().expect("router survives mutation");
            if router.fused_only() {
                degraded += 1;
            } else {
                stayed_sharded += 1;
            }

            let cold = KorEngine::new(Arc::new(dataset.engine().graph().clone()));
            for query in canned_queries(dataset.engine().graph(), &query_sets) {
                for algo in ALGOS {
                    let what = format!(
                        "{label}: {} -> {} [{algo}] (fused_only {})",
                        query.source,
                        query.target,
                        router.fused_only()
                    );
                    let plan = router
                        .plan(query.source, query.target, query.budget, algo != "greedy")
                        .expect("no shard is poisoned");
                    let routed = match plan {
                        ShardPlan::Local(s) => {
                            run_algo(router.engine(s), &query, algo, Some(router.anchor()))
                        }
                        ShardPlan::Fanout => run_algo(dataset.engine(), &query, algo, None),
                    };
                    let single = run_algo(&cold, &query, algo, None);
                    assert_eq!(
                        routed.iter().map(key).collect::<Vec<_>>(),
                        single.iter().map(key).collect::<Vec<_>>(),
                        "{what}: mutated sharded dataset diverged from cold engine"
                    );
                }
            }
        }
        // The second batch crossed the cut, so this dataset must have
        // ended degraded.
        assert!(
            dataset.router().unwrap().fused_only(),
            "{label}: cut-edge mutation did not degrade the router"
        );
    }
    assert!(
        stayed_sharded > 0,
        "no mutation ever left the router sharded — boundary re-derivation \
         went untested"
    );
    assert!(degraded > 0, "no mutation ever degraded the router");
    eprintln!(
        "sharded mutate oracle: {stayed_sharded} batches kept the boundary, \
         {degraded} degraded to fused-only"
    );
}
