//! End-to-end determinism of the dataset pipeline: `kor gen --seed N`
//! must be byte-reproducible, and the generated snapshot must flow
//! through `kor ingest`, `kor stats`, and `kor batch --canned`.

use std::path::Path;
use std::process::Command;

fn kor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kor"))
        .args(args)
        .output()
        .expect("spawn kor binary")
}

fn kor_ok(args: &[&str]) -> std::process::Output {
    let out = kor(args);
    assert!(
        out.status.success(),
        "kor {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

#[test]
fn gen_is_byte_reproducible_per_seed() {
    let dir = std::env::temp_dir().join(format!("kor-gen-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.korbin");
    let b = dir.join("b.korbin");
    let c = dir.join("c.korbin");

    let flags = |out: &Path, seed: &str| -> Vec<String> {
        [
            "gen",
            "--topology",
            "ring",
            "--nodes",
            "30",
            "--chords",
            "5",
            "--seed",
            seed,
            "--out",
        ]
        .iter()
        .map(|s| s.to_string())
        .chain([out.to_str().unwrap().to_string()])
        .collect()
    };
    let run = |args: Vec<String>| {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        kor_ok(&refs);
    };
    run(flags(&a, "42"));
    run(flags(&b, "42"));
    run(flags(&c, "43"));

    let (bytes_a, bytes_b, bytes_c) = (
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        std::fs::read(&c).unwrap(),
    );
    assert_eq!(
        bytes_a, bytes_b,
        "same seed and knobs must produce byte-identical snapshots"
    );
    assert_ne!(bytes_a, bytes_c, "different seeds must differ");

    // The documented seed contract is in the CLI help.
    let help = kor_ok(&["help"]);
    let text = String::from_utf8_lossy(&help.stdout).to_string();
    assert!(
        text.contains("Seed contract") && text.contains("byte-identical"),
        "help must document the seed contract:\n{text}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn generated_snapshot_feeds_every_front_end() {
    let dir = std::env::temp_dir().join(format!("kor-gen-pipe-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world = dir.join("world.korbin");
    let world_str = world.to_str().unwrap();
    kor_ok(&[
        "gen",
        "--topology",
        "grid",
        "--width",
        "8",
        "--height",
        "6",
        "--seed",
        "7",
        "--out",
        world_str,
    ]);

    // stats sniffs the binary format.
    let stats = kor_ok(&["stats", world_str]);
    assert!(
        String::from_utf8_lossy(&stats.stdout).contains("48"),
        "stats must report the 48 nodes"
    );

    // ingest converts to text and back.
    let text = dir.join("world.korg");
    kor_ok(&["ingest", world_str, "--out", text.to_str().unwrap()]);
    let back = dir.join("back.korbin");
    kor_ok(&[
        "ingest",
        text.to_str().unwrap(),
        "--out",
        back.to_str().unwrap(),
    ]);
    let g1 = kor::data::load_graph_auto(&world).unwrap();
    let g2 = kor::data::load_graph_auto(&back).unwrap();
    assert_eq!(g1.node_count(), g2.node_count());
    assert_eq!(g1.edge_count(), g2.edge_count());

    // batch replays the canned workload, emitting a parsable summary.
    let batch = kor_ok(&["batch", world_str, "--canned", "--quiet"]);
    let stdout = String::from_utf8_lossy(&batch.stdout);
    let json = kor::json::JsonValue::parse(stdout.trim()).expect("batch summary parses");
    let expected = kor::data::read_snapshot(&world).unwrap().query_count() as u64;
    assert_eq!(
        json.get("queries").and_then(kor::json::JsonValue::as_u64),
        Some(expected)
    );
    assert_eq!(
        json.get("errors").and_then(kor::json::JsonValue::as_u64),
        Some(0)
    );

    std::fs::remove_dir_all(&dir).ok();
}
