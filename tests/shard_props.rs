//! Shard-layout properties over a seed sweep.
//!
//! For every generated world across seeds, topologies, and shard
//! counts:
//!
//! * ownership — every node is owned by exactly one shard, shard ids
//!   are dense, and no shard is empty;
//! * edge partition — every graph edge is either inside exactly one
//!   shard subgraph or in the boundary summary's cut-edge list, never
//!   both, never neither;
//! * confinement is sound — for a same-shard pair `(s, t)` with a
//!   budget below `escape[s] + enter[t]`, the fused engine's optimal
//!   routes never leave the shard (any crossing route must spend at
//!   least `escape[s] + enter[t]`);
//! * reproducibility — sharding the same world twice yields identical
//!   layouts and byte-identical snapshots, and a written sharded
//!   snapshot reads back equal.

use kor::data::shard::{cut_edges, shard_subgraph, validate_sharding};
use kor::data::{snapshot_from_bytes, snapshot_to_bytes};
use kor::prelude::*;

const TOL: f64 = 1e-9;

fn worlds() -> Vec<GenConfig> {
    let mut configs = Vec::new();
    for seed in 0..6 {
        configs.push(GenConfig::grid(4 + (seed as usize % 3), 4, seed));
        configs.push(GenConfig::ring(12 + 2 * (seed as usize), 4, 500 + seed));
    }
    configs
}

#[test]
fn every_node_is_owned_by_exactly_one_nonempty_shard() {
    for config in worlds() {
        let world = generate_world(&config);
        for shards in [2usize, 3, 4] {
            let info = compute_sharding(&world.graph, shards);
            let label = format!("{} seed {} @{shards}", config.topology.name(), config.seed);
            assert_eq!(
                info.assignment.len(),
                world.graph.node_count(),
                "{label}: assignment covers every node"
            );
            let sizes = info.shard_sizes();
            assert_eq!(sizes.len(), info.shard_count as usize);
            assert!(
                sizes.iter().all(|&s| s > 0),
                "{label}: empty shard in {sizes:?}"
            );
            assert_eq!(
                sizes.iter().sum::<usize>(),
                world.graph.node_count(),
                "{label}: ownership double-counts or drops nodes"
            );
            assert!(
                info.assignment.iter().all(|&a| a < info.shard_count),
                "{label}: dangling shard id"
            );
            // The full validator (which also recomputes the boundary
            // tables bit for bit) accepts the computed layout.
            validate_sharding(&world.graph, &info)
                .unwrap_or_else(|e| panic!("{label}: computed layout rejected: {e}"));
        }
    }
}

#[test]
fn every_edge_is_intra_shard_or_a_recorded_cut() {
    for config in worlds() {
        let world = generate_world(&config);
        let graph = &world.graph;
        for shards in [2usize, 4] {
            let info = compute_sharding(graph, shards);
            let label = format!("{} seed {} @{shards}", config.topology.name(), config.seed);

            // Recount cuts by brute walk and compare to the summary.
            let brute: Vec<_> = cut_edges(graph, &info.assignment);
            assert_eq!(brute, info.cut_edges, "{label}: cut list diverges");
            for cut in &info.cut_edges {
                assert_ne!(
                    info.shard_of(cut.source),
                    info.shard_of(cut.target),
                    "{label}: recorded cut {} -> {} is intra-shard",
                    cut.source,
                    cut.target
                );
            }

            // Partition: shard subgraph edges + cuts == all edges.
            let intra: usize = (0..info.shard_count)
                .map(|s| shard_subgraph(graph, &info.assignment, s).edge_count())
                .sum();
            assert_eq!(
                intra + info.cut_edges.len(),
                graph.edge_count(),
                "{label}: edges dropped or double-counted"
            );
        }
    }
}

#[test]
fn confined_budgets_keep_optimal_routes_inside_the_shard() {
    let mut checked = 0usize;
    for config in worlds() {
        let world = generate_world(&config);
        let graph = &world.graph;
        let engine = KorEngine::new(graph);
        for shards in [2usize, 4] {
            let info = compute_sharding(graph, shards);
            let label = format!("{} seed {} @{shards}", config.topology.name(), config.seed);
            let mut budget_samples = 0usize;
            for s in graph.nodes() {
                for t in graph.nodes() {
                    if s == t || info.shard_of(s) != info.shard_of(t) {
                        continue;
                    }
                    let fence = info.escape[s.index()] + info.enter[t.index()];
                    if !fence.is_finite() || fence <= TOL {
                        continue;
                    }
                    // Just under the fence: provably confined.
                    let delta = fence - TOL;
                    assert!(
                        info.confined(s, t, delta),
                        "{label}: {s}->{t} Δ {delta} under the fence but not confined"
                    );
                    let query = KorQuery::new(graph, s, t, vec![], delta).unwrap();
                    for r in engine
                        .top_k_os_scaling(&query, &OsScalingParams::default(), 3)
                        .unwrap()
                        .routes
                    {
                        for &v in r.route.nodes() {
                            assert_eq!(
                                info.shard_of(v),
                                info.shard_of(s),
                                "{label}: confined query {s}->{t} Δ {delta} \
                                 produced a route leaving the shard at {v}"
                            );
                        }
                    }
                    checked += 1;
                    budget_samples += 1;
                    if budget_samples >= 25 {
                        break;
                    }
                }
                if budget_samples >= 25 {
                    break;
                }
            }
        }
    }
    assert!(
        checked > 50,
        "confinement property exercised only {checked} pairs — sweep too thin"
    );
}

#[test]
fn sharded_snapshots_are_byte_reproducible_per_seed() {
    for config in worlds().into_iter().take(4) {
        let label = format!("{} seed {}", config.topology.name(), config.seed);
        let make = || {
            let mut world = generate_world(&config);
            world.sharding = Some(compute_sharding(&world.graph, 3));
            snapshot_to_bytes(&world)
        };
        let (a, b) = (make(), make());
        assert_eq!(a, b, "{label}: same seed, different sharded bytes");

        // Read-back equality: the parsed layout is the one written.
        let world = snapshot_from_bytes(&a).unwrap_or_else(|e| panic!("{label}: reread: {e}"));
        let reread = world.sharding.expect("sharding survives the round trip");
        let fresh = compute_sharding(&world.graph, 3);
        assert_eq!(reread, fresh, "{label}: layout drifted through the bytes");
    }
}
