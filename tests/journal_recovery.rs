//! Recovery oracle battery: an engine recovered cold from
//! (base snapshot + `.korj` journal on disk) answers every canned
//! query bit-for-bit identically to the warm engine that never
//! crashed.
//!
//! This is the crash-safety counterpart of `tests/mutate_oracle.rs`:
//! where that battery proves incremental invalidation equals a cold
//! rebuild, this one proves the *durable* path equals the live path.
//! Generated worlds (grid and ring topologies, multiple seeds) each
//! get a seeded traffic script. Every batch is appended to a real
//! journal file before the warm engine applies it — the write-ahead
//! order serve uses. After every phase the journal is re-read from
//! disk, replayed over the pristine base world, and the recovered
//! engine races the warm survivor on every canned query with every
//! algorithm: same feasibility, same route node ids, same
//! objective/budget f64 bit patterns, same top-k order.
//!
//! A torn-tail rider appends garbage after the last durable record and
//! proves recovery still lands on the identical world (the byte-level
//! truncation property test lives with `kor_data::journal`).

use std::path::PathBuf;
use std::sync::Arc;

use kor::prelude::*;
use kor_data::journal::{graph_digest, journal_path, read_journal, replay, Journal};

const EPSILON: f64 = 0.5;
const BETA: f64 = 1.2;
const K: usize = 3;

/// Grid and ring worlds across seeds — the same families the gen and
/// mutate oracles cover, kept small so every phase replays quickly.
fn worlds() -> Vec<GenConfig> {
    let mut configs = Vec::new();
    for seed in 0..3 {
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.5,
            ..GenConfig::grid(3, 4, seed)
        });
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.6,
            ..GenConfig::ring(10, 3, 1000 + seed)
        });
    }
    configs
}

/// A route reduced to its exact bits: node ids, OS bits, BS bits.
type RouteKey = (Vec<u32>, u64, u64);

fn key(r: &RouteResult) -> RouteKey {
    (
        r.route.nodes().iter().map(|n| n.0).collect(),
        r.objective.to_bits(),
        r.budget.to_bits(),
    )
}

const ALGOS: [&str; 6] = [
    "exact",
    "os-scaling",
    "bucket-bound",
    "top-k-os-scaling",
    "top-k-bucket-bound",
    "greedy",
];

fn run_algo<G: AsRef<Graph>>(engine: &KorEngine<G>, query: &KorQuery, algo: &str) -> Vec<RouteKey> {
    let os = OsScalingParams::with_epsilon(EPSILON);
    let bb = BucketBoundParams::with(EPSILON, BETA);
    let routes: Vec<RouteResult> = match algo {
        "exact" => engine.exact(query).unwrap().route.into_iter().collect(),
        "os-scaling" => engine
            .os_scaling(query, &os)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "bucket-bound" => engine
            .bucket_bound(query, &bb)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "top-k-os-scaling" => engine.top_k_os_scaling(query, &os, K).unwrap().routes,
        "top-k-bucket-bound" => engine.top_k_bucket_bound(query, &bb, K).unwrap().routes,
        "greedy" => engine
            .greedy(query, &GreedyParams::default())
            .unwrap()
            .into_iter()
            .map(|g| RouteResult {
                route: g.route,
                objective: g.objective,
                budget: g.budget,
            })
            .collect(),
        other => unreachable!("unknown algo {other}"),
    };
    routes.iter().map(key).collect()
}

fn canned_queries(graph: &Graph, sets: &[kor::data::CannedQuerySet]) -> Vec<KorQuery> {
    sets.iter()
        .flat_map(|set| &set.queries)
        .map(|q| {
            KorQuery::new(graph, q.source, q.target, q.keywords.clone(), q.budget)
                .expect("canned queries stay constructible across mutations")
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kor-jrnl-oracle-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn recovered_engine_matches_the_never_crashed_twin_on_all_worlds() {
    let mut compared = 0usize;
    for (w, config) in worlds().into_iter().enumerate() {
        let world = generate_world(&config);
        let label = format!("{} seed {}", config.topology.name(), config.seed);
        let script = generate_traffic(&world.graph, &TrafficConfig::base(0xC0FFEE ^ config.seed));
        assert!(!script.is_empty(), "{label}: traffic script is empty");

        let dir = temp_dir(&format!("w{w}"));
        let jpath = journal_path(&dir, "w");
        let mut journal = Journal::create(&jpath, 0, graph_digest(&world.graph)).unwrap();

        // The never-crashed twin: warm caches, incremental invalidation.
        let mut warm = KorEngine::new(Arc::new(world.graph.clone()));
        for query in &canned_queries(warm.graph(), &world.query_sets) {
            for algo in ALGOS {
                let _ = run_algo(&warm, query, algo);
            }
        }

        for (phase, batch) in script.iter().enumerate() {
            let epoch = (phase + 1) as u64;
            // Write-ahead, exactly like serve: durable first, then live.
            journal.append(epoch, batch).unwrap();
            let (next, _report) = warm
                .apply_edge_mutations(batch)
                .unwrap_or_else(|e| panic!("{label} phase {phase}: {e}"));
            warm = next;

            // Cold recovery from the bytes on disk, every phase.
            let recovered = read_journal(&jpath).unwrap();
            assert_eq!(recovered.torn_bytes, 0, "{label}: clean journal");
            let (graph, applied) = replay(&world.graph, &recovered).unwrap();
            assert_eq!(applied, epoch, "{label} phase {phase}: batches replayed");
            assert_eq!(graph.epoch(), epoch, "{label}: recovered epoch");
            let cold = KorEngine::new(Arc::new(graph));

            for query in &canned_queries(warm.graph(), &world.query_sets) {
                for algo in ALGOS {
                    assert_eq!(
                        run_algo(&warm, query, algo),
                        run_algo(&cold, query, algo),
                        "{label} phase {phase}: {} -> {} Δ {:.3} [{algo}]: \
                         recovered engine diverged from the never-crashed twin",
                        query.source,
                        query.target,
                        query.budget
                    );
                    compared += 1;
                }
            }
        }

        // Torn-tail rider: a crash mid-append leaves garbage after the
        // last durable record. Recovery must land on the identical
        // world and report the tail.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&jpath)
            .unwrap();
        f.write_all(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01]).unwrap();
        drop(f);
        let recovered = read_journal(&jpath).unwrap();
        assert_eq!(recovered.torn_bytes, 5, "{label}: torn tail measured");
        assert_eq!(
            recovered.batches.len(),
            script.len(),
            "{label}: the torn tail cost no durable batch"
        );
        let (graph, _) = replay(&world.graph, &recovered).unwrap();
        let cold = KorEngine::new(Arc::new(graph));
        for query in &canned_queries(warm.graph(), &world.query_sets) {
            assert_eq!(
                run_algo(&warm, query, "bucket-bound"),
                run_algo(&cold, query, "bucket-bound"),
                "{label}: torn-tail recovery diverged"
            );
        }

        std::fs::remove_dir_all(&dir).ok();
    }
    assert!(compared > 0, "the oracle never compared anything");
    eprintln!("journal recovery oracle: {compared} warm-vs-recovered comparisons");
}

/// Regression: `RecoveryInfo.epoch` is the *graph* epoch after replay,
/// which equals the replayed-batch count only while the journal's base
/// is epoch 0. After compaction the journal is empty but its base is
/// the checkpoint epoch — recovery must report that epoch, not 0.
#[test]
fn compacted_journal_recovery_reports_the_checkpoint_epoch() {
    use kor::serve::recovery::attach;
    use kor_data::Snapshot;

    let config = GenConfig {
        vocab_size: 12,
        max_tags_per_node: 2,
        keyword_counts: vec![1, 2],
        queries_per_set: 4,
        budget_tightness: 1.5,
        ..GenConfig::grid(3, 4, 0)
    };
    let world = generate_world(&config);
    let script = generate_traffic(&world.graph, &TrafficConfig::base(7));
    let n = script.len() as u64;
    assert!(n > 0, "traffic script is empty");

    let dir = temp_dir("compact");
    let wpath = dir.join("w.korbin");
    write_snapshot(&wpath, &world).unwrap();
    let jdir = dir.join("journal");

    // Fresh attach binds a journal at base epoch 0; journal every batch
    // write-ahead while tracking the world it describes.
    let (_ds, mut state) = attach(&jdir, "w", &wpath).unwrap();
    assert_eq!(state.recovered.epoch, 0);
    let mut graph = world.graph.clone();
    for (i, batch) in script.iter().enumerate() {
        state.journal.append((i + 1) as u64, batch).unwrap();
        graph = graph.apply_mutations(batch).unwrap();
    }
    drop(state);

    // Pre-compaction restart: epoch and batch count coincide (base 0).
    let (_ds, state) = attach(&jdir, "w", &wpath).unwrap();
    assert_eq!(state.recovered.batches, n);
    assert_eq!(state.recovered.epoch, n);

    // Compact, restart again: nothing left to replay, but the epoch is
    // the checkpoint's — the two counters no longer coincide.
    let mut journal = state.journal;
    journal
        .checkpoint(
            "w",
            &Snapshot {
                graph,
                query_sets: Vec::new(),
                sharding: None,
            },
        )
        .unwrap();
    drop(journal);
    let (ds, state) = attach(&jdir, "w", &wpath).unwrap();
    assert_eq!(state.recovered.batches, 0, "compaction emptied the journal");
    assert_eq!(
        state.recovered.epoch, n,
        "recovered epoch must be the checkpoint epoch, not the replay count"
    );
    assert_eq!(
        ds.engine().graph().epoch(),
        n,
        "the dataset serves epoch {n}"
    );

    std::fs::remove_dir_all(&dir).ok();
}
