//! Shard fault injection over real sockets, in both I/O modes.
//!
//! A sharded dataset is served, then one shard is poisoned mid-stream:
//! queries owned by the poisoned shard (or crossing into it) must fail
//! with the structured `shard_unavailable` error while the connection
//! stays open and queries wholly owned by healthy shards keep
//! answering. `stats` must account the poisoned flag and the rejected
//! counter; `revive_shard` must restore service. The same battery runs
//! against the event reactor and the blocking I/O layer.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kor::json::JsonValue;
use kor::prelude::*;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

/// A deterministic sharded world, plus one node pair per shard and one
/// cross-shard pair (all picked from the same layout the server uses).
fn sharded_world() -> (Snapshot, ShardingInfo) {
    let mut world = generate_world(&GenConfig::grid(6, 5, 3));
    let info = compute_sharding(&world.graph, 2);
    world.sharding = Some(info.clone());
    (world, info)
}

fn pair_in_shard(graph: &Graph, info: &ShardingInfo, shard: u32) -> (u32, u32) {
    let mut owned = graph
        .nodes()
        .filter(|&v| info.shard_of(v) == shard)
        .map(|v| v.0);
    let a = owned.next().expect("shard is non-empty");
    let b = owned.next().expect("shard has at least two nodes");
    (a, b)
}

fn start_server(io: IoMode, world: Snapshot) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io,
        queue_capacity: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_snapshot("world", world));
    let addr = server.local_addr();
    (addr, server.start())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

/// Sends one request line and parses the one-line JSON response.
fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(resp.ends_with('\n'), "response must be a full line");
    JsonValue::parse(resp.trim_end()).expect("response is valid JSON")
}

fn query_line(from: u32, to: u32) -> String {
    format!(
        r#"{{"method":"query","params":{{"from":{from},"to":{to},"budget":1000000,"algo":"os-scaling"}}}}"#
    )
}

fn error_code(resp: &JsonValue) -> Option<String> {
    resp.get("error")?.get("code")?.as_str().map(str::to_string)
}

fn assert_ok(resp: &JsonValue, what: &str) {
    assert_eq!(
        resp.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{what}: expected success, got {resp:?}"
    );
}

fn poison_battery(io: IoMode) {
    let (world, info) = sharded_world();
    let graph_nodes = world.graph.node_count();
    let (s0a, s0b) = pair_in_shard(&world.graph, &info, 0);
    let (s1a, s1b) = pair_in_shard(&world.graph, &info, 1);
    assert!(graph_nodes >= 4, "world too small to pick pairs");
    let (addr, handle) = start_server(io, world);
    let (mut conn, mut reader) = connect(addr);

    // Healthy: both shards answer; a cross-shard query fans out fine.
    for (from, to) in [(s0a, s0b), (s1a, s1b), (s0a, s1a)] {
        assert_ok(
            &roundtrip(&mut conn, &mut reader, &query_line(from, to)),
            "pre-poison query",
        );
    }

    // Poison shard 0 mid-stream, on the same connection.
    let p = roundtrip(
        &mut conn,
        &mut reader,
        r#"{"method":"poison_shard","params":{"dataset":"world","shard":0}}"#,
    );
    assert_ok(&p, "poison_shard");
    assert_eq!(
        p.get("result")
            .and_then(|r| r.get("poisoned"))
            .and_then(JsonValue::as_bool),
        Some(true)
    );

    // Shard-0-owned and cross-shard queries now fail with the typed
    // error — and the connection stays open throughout.
    for (from, to) in [(s0a, s0b), (s0a, s1a), (s1b, s0b)] {
        let resp = roundtrip(&mut conn, &mut reader, &query_line(from, to));
        assert_eq!(
            error_code(&resp).as_deref(),
            Some("shard_unavailable"),
            "query {from}->{to} against poisoned shard: {resp:?}"
        );
    }
    // Queries wholly owned by shard 1 keep answering.
    assert_ok(
        &roundtrip(&mut conn, &mut reader, &query_line(s1a, s1b)),
        "healthy-shard query during poisoning",
    );

    // Stats account the failure: poisoned flag up, 3 rejections, and
    // the healthy shard's counters still moving.
    let stats = roundtrip(&mut conn, &mut reader, r#"{"method":"stats"}"#);
    let shards = stats
        .get("result")
        .and_then(|r| r.get("datasets"))
        .and_then(JsonValue::as_arr)
        .and_then(|d| d.first())
        .and_then(|d| d.get("shards"))
        .expect("sharded dataset stats carry a shards section")
        .clone();
    assert_eq!(shards.get("count").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(shards.get("rejected").and_then(JsonValue::as_u64), Some(3));
    let per_shard = shards
        .get("per_shard")
        .and_then(JsonValue::as_arr)
        .expect("per_shard array");
    assert_eq!(
        per_shard[0].get("poisoned").and_then(JsonValue::as_bool),
        Some(true)
    );
    assert_eq!(
        per_shard[1].get("poisoned").and_then(JsonValue::as_bool),
        Some(false)
    );
    assert!(
        per_shard[1].get("queries").and_then(JsonValue::as_u64) >= Some(2),
        "healthy shard kept serving: {per_shard:?}"
    );

    // Revive restores full service on the same connection.
    assert_ok(
        &roundtrip(
            &mut conn,
            &mut reader,
            r#"{"method":"revive_shard","params":{"dataset":"world","shard":0}}"#,
        ),
        "revive_shard",
    );
    assert_ok(
        &roundtrip(&mut conn, &mut reader, &query_line(s0a, s0b)),
        "post-revive query",
    );

    // Misuse is rejected with bad_request, not a hang or a crash.
    for line in [
        r#"{"method":"poison_shard","params":{"dataset":"world","shard":99}}"#,
        r#"{"method":"poison_shard","params":{"dataset":"world"}}"#,
    ] {
        let resp = roundtrip(&mut conn, &mut reader, line);
        assert_eq!(error_code(&resp).as_deref(), Some("bad_request"), "{line}");
    }

    drop(conn);
    handle.shutdown();
}

#[test]
fn poisoned_shard_yields_typed_errors_event_io() {
    poison_battery(IoMode::Event);
}

#[test]
fn poisoned_shard_yields_typed_errors_blocking_io() {
    poison_battery(IoMode::Blocking);
}

/// `poison_shard` against an unsharded dataset is a `bad_request`, and
/// sharded snapshots round-trip through the wire-level `load_dataset`
/// (the response reports the shard count).
#[test]
fn load_dataset_reports_shards_and_unsharded_poison_is_rejected() {
    let dir = std::env::temp_dir().join(format!("kor-shard-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sharded.korbin");
    let (world, _) = sharded_world();
    write_snapshot(&path, &world).unwrap();

    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        io: IoMode::Event,
        ..ServeConfig::default()
    })
    .expect("bind");
    server.registry().insert(Dataset::from_graph(
        "plain",
        kor::graph::fixtures::figure1(),
    ));
    let addr = server.local_addr();
    let handle = server.start();
    let (mut conn, mut reader) = connect(addr);

    let resp = roundtrip(
        &mut conn,
        &mut reader,
        r#"{"method":"poison_shard","params":{"dataset":"plain","shard":0}}"#,
    );
    assert_eq!(error_code(&resp).as_deref(), Some("bad_request"));

    let load = roundtrip(
        &mut conn,
        &mut reader,
        &format!(
            r#"{{"method":"load_dataset","params":{{"path":{}}}}}"#,
            JsonValue::from(path.to_str().unwrap()).render()
        ),
    );
    assert_ok(&load, "load_dataset of a sharded snapshot");
    let result = load.get("result").expect("result");
    assert_eq!(result.get("shards").and_then(JsonValue::as_u64), Some(2));
    // The freshly loaded sharded dataset answers queries.
    let resp = roundtrip(
        &mut conn,
        &mut reader,
        r#"{"method":"query","params":{"dataset":"sharded","from":0,"to":5,"budget":1000000}}"#,
    );
    assert_ok(&resp, "query against the loaded sharded dataset");

    drop(conn);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
