//! End-to-end test for `kor loadtest`: generate a snapshot, run the
//! smoke profile through the real binary, and check the emitted
//! `BENCH_serve.json` carries the documented schema with sane numbers.

use std::path::PathBuf;
use std::process::Command;

use kor::json::JsonValue;

fn kor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kor"))
        .args(args)
        .output()
        .expect("spawn kor binary")
}

#[test]
fn loadtest_smoke_writes_schema_complete_report() {
    let dir = std::env::temp_dir().join(format!("kor-loadtest-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world_path: PathBuf = dir.join("world.korbin");
    let out_path: PathBuf = dir.join("bench.json");

    let gen = kor(&[
        "gen",
        "--topology",
        "grid",
        "--width",
        "6",
        "--height",
        "5",
        "--seed",
        "17",
        "--out",
        world_path.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "gen failed");

    let out = kor(&[
        "loadtest",
        world_path.to_str().unwrap(),
        "--smoke",
        "--threads",
        "2",
        "--clients",
        "8",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "loadtest failed: {stderr}");
    // The human summary names both I/O layers and the speedup.
    assert!(stderr.contains("loadtest [event]"), "stderr: {stderr}");
    assert!(stderr.contains("loadtest [blocking]"), "stderr: {stderr}");
    assert!(stderr.contains("the blocking QPS"), "stderr: {stderr}");

    let raw = std::fs::read_to_string(&out_path).expect("report written");
    let report = JsonValue::parse(raw.trim()).expect("report parses");

    assert_eq!(
        report.get("created_by").and_then(JsonValue::as_str),
        Some("kor loadtest")
    );
    let dataset = report.get("dataset").expect("dataset section");
    assert_eq!(dataset.get("nodes").and_then(JsonValue::as_u64), Some(30));
    assert!(dataset.get("canned_queries").and_then(JsonValue::as_u64) > Some(0));

    let config = report.get("config").expect("config section");
    assert_eq!(config.get("threads").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(config.get("clients").and_then(JsonValue::as_u64), Some(8));

    let modes = report.get("modes").expect("modes section");
    for io in ["event", "blocking"] {
        let mode = modes.get(io).unwrap_or_else(|| panic!("modes.{io}"));
        assert_eq!(mode.get("io").and_then(JsonValue::as_str), Some(io));
        assert!(
            mode.get("qps").and_then(JsonValue::as_f64) > Some(0.0),
            "{io} must serve requests"
        );
        assert!(mode.get("requests_ok").and_then(JsonValue::as_u64) > Some(0));
        assert_eq!(
            mode.get("other_errors").and_then(JsonValue::as_u64),
            Some(0),
            "{io}: only `overloaded` errors are acceptable under load"
        );
        let latency = mode
            .get("latency_ms")
            .unwrap_or_else(|| panic!("{io} latency"));
        let p50 = latency.get("p50").and_then(JsonValue::as_f64).unwrap();
        let p99 = latency.get("p99").and_then(JsonValue::as_f64).unwrap();
        let max = latency.get("max").and_then(JsonValue::as_f64).unwrap();
        assert!(p50 <= p99 && p99 <= max, "{io}: {p50} {p99} {max}");
        // The report snapshots the server's own view of the run.
        let server = mode.get("server").unwrap_or_else(|| panic!("{io} server"));
        assert_eq!(server.get("io").and_then(JsonValue::as_str), Some(io));
    }
    assert!(
        report
            .get("speedup_event_over_blocking")
            .and_then(JsonValue::as_f64)
            > Some(0.0),
        "speedup must be present when both modes run"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadtest_requires_a_snapshot_argument() {
    let out = kor(&["loadtest"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot"), "stderr: {stderr}");
}

#[test]
fn loadtest_rejects_a_missing_snapshot_file() {
    let out = kor(&["loadtest", "/nonexistent/world.korbin", "--smoke"]);
    assert!(!out.status.success());
}
