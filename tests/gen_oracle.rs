//! Property test: every algorithm agrees with (or is provably bounded
//! by) the brute-force oracle on dozens of seeded generated worlds.
//!
//! `kor_core::brute` enumerates the whole search space, so on small
//! worlds it is ground truth. For each world the canned queries that
//! `kor_data::gen` synthesized (budgets scaled off real shortest-path
//! distances, so feasibility is genuinely mixed) are answered by every
//! algorithm and checked against the oracle:
//!
//! * exact labeling — identical feasibility and optimal objective;
//! * `OSScaling` — feasibility agreement plus the Theorem-2 bound
//!   `OS ≤ opt / (1 − ε)`;
//! * `BucketBound` — feasibility agreement plus the Theorem-3 bound
//!   `OS ≤ opt · β / (1 − ε)`;
//! * top-k `OSScaling` — sorted results whose best respects the bound;
//! * greedy — never *claims* feasibility on an infeasible query, and
//!   never beats the optimum;
//! * every returned route re-walked edge by edge: it must exist in the
//!   graph, cover the query keywords, and reproduce its claimed scores.

use kor::prelude::*;

const EPSILON: f64 = 0.5;
const BETA: f64 = 1.2;
const TOL: f64 = 1e-9;

/// The per-world generator configs: two topologies across a seed sweep,
/// kept small enough that the oracle exhausts the space quickly.
fn worlds() -> Vec<GenConfig> {
    let mut configs = Vec::new();
    for seed in 0..9 {
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.5,
            ..GenConfig::grid(3, 4, seed)
        });
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.6,
            ..GenConfig::ring(10, 3, 1000 + seed)
        });
    }
    configs
}

/// Re-walks a returned route against the graph: every hop must be a real
/// edge, the claimed scores must match the edge sums, the keywords must
/// be covered, and the budget limit must hold.
fn verify_route(graph: &Graph, query: &KorQuery, r: &RouteResult, what: &str) {
    let nodes = r.route.nodes();
    assert_eq!(
        *nodes.first().unwrap(),
        query.source,
        "{what}: wrong source"
    );
    assert_eq!(*nodes.last().unwrap(), query.target, "{what}: wrong target");
    let mut os = 0.0;
    let mut bs = 0.0;
    let mut mask = query.keywords.mask_of(graph.keywords(nodes[0]));
    for w in nodes.windows(2) {
        let e = graph
            .edge_between(w[0], w[1])
            .unwrap_or_else(|| panic!("{what}: edge {} -> {} does not exist", w[0], w[1]));
        os += e.objective;
        bs += e.budget;
        mask |= query.keywords.mask_of(graph.keywords(w[1]));
    }
    assert!(
        (os - r.objective).abs() < TOL,
        "{what}: OS {} ≠ {os}",
        r.objective
    );
    assert!(
        (bs - r.budget).abs() < TOL,
        "{what}: BS {} ≠ {bs}",
        r.budget
    );
    assert!(
        query.keywords.is_covering(mask),
        "{what}: keywords uncovered"
    );
    assert!(
        bs <= query.budget + TOL,
        "{what}: budget {bs} > Δ {}",
        query.budget
    );
}

#[test]
fn all_algorithms_agree_with_the_brute_force_oracle() {
    let brute_params = BruteForceParams {
        target_pruning: true,
        ..BruteForceParams::default()
    };
    let os_params = OsScalingParams::with_epsilon(EPSILON);
    let bb_params = BucketBoundParams::with(EPSILON, BETA);
    let greedy_params = GreedyParams::default();

    let mut total = 0usize;
    let mut feasible = 0usize;
    let mut infeasible = 0usize;
    for config in worlds() {
        let world = generate_world(&config);
        let graph = &world.graph;
        let engine = KorEngine::new(graph);
        let label = format!("{} seed {}", config.topology.name(), config.seed);
        for set in &world.query_sets {
            for canned in &set.queries {
                let query = KorQuery::new(
                    graph,
                    canned.source,
                    canned.target,
                    canned.keywords.clone(),
                    canned.budget,
                )
                .expect("canned queries are valid");
                let what = format!(
                    "{label}: {} -> {} ({} kw, Δ {:.3})",
                    canned.source,
                    canned.target,
                    canned.keywords.len(),
                    canned.budget
                );
                total += 1;

                let oracle = engine
                    .brute_force(&query, &brute_params)
                    .unwrap_or_else(|e| panic!("{what}: oracle failed: {e}"));

                let exact = engine.exact(&query).unwrap();
                let os = engine.os_scaling(&query, &os_params).unwrap();
                let bb = engine.bucket_bound(&query, &bb_params).unwrap();
                let top_k = engine.top_k_os_scaling(&query, &os_params, 3).unwrap();
                let greedy = engine.greedy(&query, &greedy_params).unwrap();

                match &oracle.route {
                    None => {
                        infeasible += 1;
                        assert!(exact.route.is_none(), "{what}: exact disagrees (feasible)");
                        assert!(os.route.is_none(), "{what}: OSScaling disagrees");
                        assert!(bb.route.is_none(), "{what}: BucketBound disagrees");
                        assert!(top_k.routes.is_empty(), "{what}: top-k disagrees");
                        if let Some(g) = &greedy {
                            assert!(
                                !g.is_feasible(),
                                "{what}: greedy claims a feasible route on an infeasible query"
                            );
                        }
                    }
                    Some(opt) => {
                        feasible += 1;
                        verify_route(graph, &query, opt, &format!("{what} [oracle]"));

                        let ex = exact
                            .route
                            .unwrap_or_else(|| panic!("{what}: exact missed a feasible route"));
                        verify_route(graph, &query, &ex, &format!("{what} [exact]"));
                        assert!(
                            (ex.objective - opt.objective).abs() < TOL,
                            "{what}: exact {} ≠ oracle {}",
                            ex.objective,
                            opt.objective
                        );

                        let os_r = os
                            .route
                            .unwrap_or_else(|| panic!("{what}: OSScaling missed feasibility"));
                        verify_route(graph, &query, &os_r, &format!("{what} [os-scaling]"));
                        assert!(
                            os_r.objective >= opt.objective - TOL,
                            "{what}: OSScaling beat the optimum"
                        );
                        assert!(
                            os_r.objective <= opt.objective / (1.0 - EPSILON) + TOL,
                            "{what}: Theorem 2 violated: {} > {}",
                            os_r.objective,
                            opt.objective / (1.0 - EPSILON)
                        );

                        let bb_r = bb
                            .route
                            .unwrap_or_else(|| panic!("{what}: BucketBound missed feasibility"));
                        verify_route(graph, &query, &bb_r, &format!("{what} [bucket-bound]"));
                        assert!(
                            bb_r.objective >= opt.objective - TOL
                                && bb_r.objective <= opt.objective * BETA / (1.0 - EPSILON) + TOL,
                            "{what}: Theorem 3 violated: {} vs opt {}",
                            bb_r.objective,
                            opt.objective
                        );

                        assert!(!top_k.routes.is_empty(), "{what}: top-k found nothing");
                        let mut prev = f64::NEG_INFINITY;
                        for (i, r) in top_k.routes.iter().enumerate() {
                            verify_route(graph, &query, r, &format!("{what} [top-k #{i}]"));
                            assert!(r.objective >= prev, "{what}: top-k not sorted");
                            prev = r.objective;
                        }
                        assert!(
                            top_k.routes[0].objective <= opt.objective / (1.0 - EPSILON) + TOL,
                            "{what}: top-k best breaks the OSScaling bound"
                        );

                        if let Some(g) = &greedy {
                            if g.is_feasible() {
                                let gr = RouteResult {
                                    route: g.route.clone(),
                                    objective: g.objective,
                                    budget: g.budget,
                                };
                                verify_route(graph, &query, &gr, &format!("{what} [greedy]"));
                                assert!(
                                    g.objective >= opt.objective - TOL,
                                    "{what}: greedy beat the optimum"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
    // The sweep must actually exercise both outcomes, or the assertions
    // above prove nothing.
    assert_eq!(total, 18 * 2 * 4, "world/query sweep shrank unexpectedly");
    assert!(feasible >= 20, "only {feasible}/{total} feasible queries");
    assert!(
        infeasible >= 5,
        "only {infeasible}/{total} infeasible queries"
    );
}
