//! `update_edges` over real sockets, in both I/O modes.
//!
//! The dynamic-world serve battery: a live dataset is mutated
//! mid-stream on an open pipelined connection, while concurrent
//! connections keep querying. The contract under test:
//!
//! * mutations apply atomically — every response carries the graph
//!   `epoch` it was answered on, and the answer always matches a cold
//!   engine built for exactly that epoch (no torn graphs, ever);
//! * the connection survives the mutation and malformed payloads alike
//!   (structured `bad_request`, never a dropped socket);
//! * a sharded dataset whose cut edge is mutated degrades to
//!   fused-only routing (visible in `stats`) but keeps answering
//!   byte-identically.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kor::json::JsonValue;
use kor::prelude::*;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

fn start_server(io: IoMode, dataset: Dataset) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io,
        queue_capacity: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    server.registry().insert(dataset);
    let addr = server.local_addr();
    (addr, server.start())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    read_line(reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> JsonValue {
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(resp.ends_with('\n'), "response must be a full line");
    JsonValue::parse(resp.trim_end()).expect("response is valid JSON")
}

fn error_code(resp: &JsonValue) -> Option<String> {
    resp.get("error")?.get("code")?.as_str().map(str::to_string)
}

fn result_field<'a>(resp: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    resp.get("result")?.get(key)
}

fn assert_ok(resp: &JsonValue, what: &str) {
    assert_eq!(
        resp.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{what}: expected success, got {resp:?}"
    );
}

/// Figure 1 query ⟨v0, v7, {t1, t2}, 10⟩ — OS 6 on the pristine graph.
const QUERY: &str = r#"{"method":"query","params":{"from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;

/// Answers the figure-1 query on a cold engine for `graph`, reduced to
/// comparable bits.
fn expected_answer(graph: &Graph) -> Option<(Vec<u64>, u64, u64)> {
    let engine = KorEngine::new(graph);
    let query = KorQuery::from_terms(graph, NodeId(0), NodeId(7), vec!["t1", "t2"], 10.0).unwrap();
    engine
        .os_scaling(&query, &OsScalingParams::with_epsilon(0.5))
        .unwrap()
        .route
        .map(|r| {
            (
                r.route.nodes().iter().map(|n| u64::from(n.0)).collect(),
                r.objective.to_bits(),
                r.budget.to_bits(),
            )
        })
}

/// Reduces a wire query response to the same comparable bits.
fn wire_answer(resp: &JsonValue) -> Option<(Vec<u64>, u64, u64)> {
    let routes = result_field(resp, "routes")?.as_arr()?;
    let r = routes.first()?;
    Some((
        r.get("nodes")?
            .as_arr()?
            .iter()
            .filter_map(JsonValue::as_u64)
            .collect(),
        r.get("objective")?.as_f64()?.to_bits(),
        r.get("budget")?.as_f64()?.to_bits(),
    ))
}

fn mutate_battery(io: IoMode) {
    let (addr, handle) = start_server(
        io,
        Dataset::from_graph("fig1", kor::graph::fixtures::figure1()),
    );
    let (mut conn, mut reader) = connect(addr);

    // Pipeline three requests in one write: query, mutation, query. The
    // server must answer all three in order on the same connection —
    // the mutation lands between the two queries.
    let mutation = r#"{"method":"update_edges","params":{"dataset":"fig1","mutations":[{"from":5,"to":7,"op":"close"}]}}"#;
    conn.write_all(format!("{QUERY}\n{mutation}\n{QUERY}\n").as_bytes())
        .unwrap();
    let before = read_line(&mut reader);
    let mutated = read_line(&mut reader);
    let after = read_line(&mut reader);

    assert_ok(&before, "pre-mutation query");
    assert_eq!(
        result_field(&before, "epoch").and_then(JsonValue::as_u64),
        Some(0)
    );
    assert_ok(&mutated, "update_edges");
    assert_eq!(
        result_field(&mutated, "epoch").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        result_field(&mutated, "edges").and_then(JsonValue::as_u64),
        Some(11)
    );
    assert_ok(&after, "post-mutation query");
    assert_eq!(
        result_field(&after, "epoch").and_then(JsonValue::as_u64),
        Some(1)
    );

    // Both answers must match cold engines for their respective epochs.
    let g0 = kor::graph::fixtures::figure1();
    let g1 = g0
        .apply_mutations(&[EdgeMutation::close(NodeId(5), NodeId(7))])
        .unwrap();
    assert_eq!(wire_answer(&before), expected_answer(&g0));
    assert_eq!(wire_answer(&after), expected_answer(&g1));

    // Malformed payloads: structured bad_request, connection survives.
    for line in [
        r#"{"method":"update_edges","params":{"dataset":"fig1","mutations":[{"from":5,"to":7,"op":"close"}]}}{"#,
        r#"{"method":"update_edges","params":{"mutations":[]}}"#,
        r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"widen"}]}}"#,
        r#"{"method":"update_edges","params":{"mutations":[{"from":0,"to":1,"op":"scale","objective":1.0,"budget":-2.0}]}}"#,
    ] {
        let resp = roundtrip(&mut conn, &mut reader, line);
        let code = error_code(&resp);
        assert!(
            matches!(code.as_deref(), Some("bad_request") | Some("parse_error")),
            "{line}: {resp:?}"
        );
    }

    // Reopening with the original weights restores the epoch-0 answer
    // on the same still-open connection.
    let reopen = r#"{"method":"update_edges","params":{"dataset":"fig1","mutations":[{"from":5,"to":7,"op":"reopen","objective":4.0,"budget":1.0}]}}"#;
    assert_ok(&roundtrip(&mut conn, &mut reader, reopen), "reopen");
    let restored = roundtrip(&mut conn, &mut reader, QUERY);
    assert_eq!(
        result_field(&restored, "epoch").and_then(JsonValue::as_u64),
        Some(2)
    );
    assert_eq!(wire_answer(&restored), expected_answer(&g0));

    drop(conn);
    handle.shutdown();
}

#[test]
fn update_edges_is_atomic_midstream_event_io() {
    mutate_battery(IoMode::Event);
}

#[test]
fn update_edges_is_atomic_midstream_blocking_io() {
    mutate_battery(IoMode::Blocking);
}

/// Concurrent clients hammer queries while the main thread flips an
/// edge weight back and forth. Every response must be internally
/// consistent: the answer bit-matches the cold engine for the exact
/// epoch the response claims — a torn graph (old edges, new epoch, or
/// any mix) cannot produce that.
#[test]
fn concurrent_queries_never_observe_a_torn_graph() {
    let (addr, handle) = start_server(
        IoMode::Event,
        Dataset::from_graph("fig1", kor::graph::fixtures::figure1()),
    );

    // One expected answer per epoch, from cold engines on the exact
    // cumulative mutation sequence the server will apply. Alternating
    // ×3.0 / ×⅓ budget scalings on edge 3 → 4 flip the Example 2
    // optimum back and forth (the scaled budgets are not bit-identical
    // to the originals, so each epoch gets its own cold graph).
    const MUTATIONS: u64 = 6;
    let batches: Vec<EdgeMutation> = (0..MUTATIONS)
        .map(|i| {
            let factor = if i % 2 == 0 { 3.0 } else { 1.0 / 3.0 };
            EdgeMutation::scale(NodeId(3), NodeId(4), 1.0, factor)
        })
        .collect();
    let mut graphs = vec![kor::graph::fixtures::figure1()];
    for m in &batches {
        let next = graphs
            .last()
            .unwrap()
            .apply_mutations(std::slice::from_ref(m))
            .unwrap();
        graphs.push(next);
    }
    let expected: Vec<_> = graphs.iter().map(expected_answer).collect();
    assert_ne!(
        expected[0], expected[1],
        "the mutation must change the answer or the check is vacuous"
    );
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let done = &done;
        let expected = &expected;
        let mut workers = Vec::new();
        for _ in 0..3 {
            workers.push(scope.spawn(move || {
                let (mut conn, mut reader) = connect(addr);
                let mut checked = 0u64;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp = roundtrip(&mut conn, &mut reader, QUERY);
                    assert_ok(&resp, "concurrent query");
                    let epoch = result_field(&resp, "epoch")
                        .and_then(JsonValue::as_u64)
                        .expect("query responses carry the epoch");
                    assert!(epoch <= MUTATIONS, "epoch {epoch} out of range");
                    assert_eq!(
                        wire_answer(&resp),
                        expected[epoch as usize],
                        "epoch {epoch}: answer does not match that epoch's graph"
                    );
                    checked += 1;
                }
                checked
            }));
        }

        let (mut conn, mut reader) = connect(addr);
        for (i, m) in batches.iter().enumerate() {
            let i = i as u64;
            let (MutationKind::Scale { budget, .. } | MutationKind::Reopen { budget, .. }) = m.kind
            else {
                unreachable!("batches are scalings")
            };
            let line = format!(
                r#"{{"method":"update_edges","params":{{"mutations":[{{"from":3,"to":4,"op":"scale","objective":1.0,"budget":{budget}}}]}}}}"#
            );
            let resp = roundtrip(&mut conn, &mut reader, &line);
            assert_ok(&resp, "mutation");
            assert_eq!(
                result_field(&resp, "epoch").and_then(JsonValue::as_u64),
                Some(i + 1)
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(total > 0, "no concurrent query was ever checked");
        eprintln!("torn-graph check: {total} concurrent answers validated");
    });
    handle.shutdown();
}

/// Mutating a cut edge of a sharded dataset degrades the router to
/// fused-only (visible in stats) without changing a single answer.
#[test]
fn sharded_dataset_degrades_to_fused_only_over_the_wire() {
    let mut world = generate_world(&GenConfig::grid(6, 5, 3));
    let info = compute_sharding(&world.graph, 2);
    let assignment = info.assignment.clone();
    world.sharding = Some(info);
    let graph = world.graph.clone();
    let (addr, handle) = start_server(IoMode::Event, Dataset::from_snapshot("world", world));
    let (mut conn, mut reader) = connect(addr);

    let fused_only = |conn: &mut TcpStream, reader: &mut BufReader<TcpStream>| -> bool {
        let stats = roundtrip(conn, reader, r#"{"method":"stats"}"#);
        stats
            .get("result")
            .and_then(|r| r.get("datasets"))
            .and_then(JsonValue::as_arr)
            .and_then(|d| d.first())
            .and_then(|d| d.get("shards"))
            .and_then(|s| s.get("fused_only"))
            .and_then(JsonValue::as_bool)
            .expect("sharded stats carry fused_only")
    };
    assert!(!fused_only(&mut conn, &mut reader), "starts sharded");

    // Find a cut edge and slow it down over the wire.
    let (cu, cw) = graph
        .nodes()
        .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
        .find(|&(u, w)| assignment[u.index()] != assignment[w.index()])
        .expect("a 2-sharded grid has cut edges");
    let resp = roundtrip(
        &mut conn,
        &mut reader,
        &format!(
            r#"{{"method":"update_edges","params":{{"mutations":[{{"from":{},"to":{},"op":"scale","objective":1.0,"budget":1.5}}]}}}}"#,
            cu.0, cw.0
        ),
    );
    assert_ok(&resp, "cut-edge mutation");
    assert_eq!(
        result_field(&resp, "router").and_then(JsonValue::as_str),
        Some("fused_only")
    );
    assert!(
        fused_only(&mut conn, &mut reader),
        "degraded after cut change"
    );

    // Every query still answers exactly like a cold engine on the
    // mutated graph.
    let mutated = graph
        .apply_mutations(&[EdgeMutation::scale(cu, cw, 1.0, 1.5)])
        .unwrap();
    let cold = KorEngine::new(&mutated);
    let mut checked = 0;
    for set in &world_queries(&graph) {
        for q in &set.queries {
            let query =
                KorQuery::new(&mutated, q.source, q.target, q.keywords.clone(), q.budget).unwrap();
            let want = cold
                .os_scaling(&query, &OsScalingParams::with_epsilon(0.5))
                .unwrap()
                .route
                .map(|r| {
                    (
                        r.route
                            .nodes()
                            .iter()
                            .map(|n| u64::from(n.0))
                            .collect::<Vec<u64>>(),
                        r.objective.to_bits(),
                        r.budget.to_bits(),
                    )
                });
            let keywords: Vec<String> = query
                .keywords
                .ids()
                .iter()
                .map(|&k| mutated.vocab().resolve(k).unwrap().to_string())
                .collect();
            let line = format!(
                r#"{{"method":"query","params":{{"from":{},"to":{},"keywords":[{}],"budget":{},"algo":"os-scaling"}}}}"#,
                q.source.0,
                q.target.0,
                keywords
                    .iter()
                    .map(|k| format!("{:?}", k))
                    .collect::<Vec<_>>()
                    .join(","),
                q.budget
            );
            let resp = roundtrip(&mut conn, &mut reader, &line);
            assert_ok(&resp, "post-degradation query");
            assert_eq!(
                wire_answer(&resp),
                want,
                "query {} -> {}",
                q.source,
                q.target
            );
            checked += 1;
        }
    }
    assert!(checked > 0);

    drop(conn);
    handle.shutdown();
}

/// The canned query sets of the deterministic world (regenerated — the
/// server consumed the original snapshot).
fn world_queries(graph: &Graph) -> Vec<CannedQuerySet> {
    let world = generate_world(&GenConfig::grid(6, 5, 3));
    assert_eq!(world.graph.node_count(), graph.node_count());
    world.query_sets
}
