//! End-to-end test for `kor serve`: spawn the real binary on an
//! ephemeral port, talk to it over real TCP sockets — concurrent
//! queries, runtime dataset loading, malformed requests, deadlines —
//! and check that query results are identical to the equivalent
//! single-shot `kor query` CLI invocation.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use kor::json::JsonValue;

fn kor_cmd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kor"))
}

fn kor(args: &[&str]) -> std::process::Output {
    kor_cmd().args(args).output().expect("spawn kor binary")
}

/// Kills the server child on drop so a failing assertion never leaks a
/// listening process.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server(args: &[&str]) -> ServerGuard {
    let mut child = kor_cmd()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn kor serve");
    // The server prints exactly one stdout line before serving:
    // `kor serve: listening on 127.0.0.1:PORT`.
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stdout).read_line(&mut line);
        let _ = tx.send(line);
    });
    let line = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("server must announce its address");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address token")
        .to_string();
    assert!(
        line.contains("listening on") && addr.contains(':'),
        "unexpected announcement {line:?}"
    );
    ServerGuard { child, addr }
}

/// Sends request lines over one connection and returns one trimmed
/// response line per request, in order.
fn roundtrip(addr: &str, lines: &[&str]) -> Vec<String> {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut out = Vec::new();
    for line in lines {
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(resp.ends_with('\n'), "response must be one full line");
        out.push(resp.trim_end().to_string());
    }
    out
}

fn parse_ok(resp: &str) -> JsonValue {
    let v = JsonValue::parse(resp).expect("response parses");
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "expected ok:true in {resp}"
    );
    v.get("result").expect("result present").clone()
}

fn error_code(resp: &str) -> String {
    let v = JsonValue::parse(resp).expect("response parses");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
    v.get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .expect("error.code present")
        .to_string()
}

/// First route of a query result as `(nodes, objective, budget)`.
fn first_route(result: &JsonValue) -> (Vec<u64>, f64, f64) {
    let route = &result.get("routes").unwrap().as_arr().unwrap()[0];
    let nodes = route
        .get("nodes")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|n| n.as_u64().unwrap())
        .collect();
    (
        nodes,
        route.get("objective").and_then(JsonValue::as_f64).unwrap(),
        route.get("budget").and_then(JsonValue::as_f64).unwrap(),
    )
}

/// Parses `kor query` CLI stdout: the `#1 OS x BS y (n stops)` line and
/// the `v0[...] -> v1 -> …` route line.
fn parse_cli_route(stdout: &str) -> Option<(Vec<u64>, String, String)> {
    if stdout.contains("no feasible route") {
        return None;
    }
    let mut lines = stdout.lines();
    let head = lines.next().expect("result line");
    let toks: Vec<&str> = head.split_whitespace().collect();
    assert_eq!(toks[0], "#1", "unexpected CLI output: {stdout}");
    let os = toks[2].to_string();
    let bs = toks[4].to_string();
    let route_line = lines.next().expect("route line");
    let nodes = route_line
        .trim()
        .split(" -> ")
        .map(|tok| {
            let digits: String = tok
                .trim_start_matches('v')
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse::<u64>().expect("node id")
        })
        .collect();
    Some((nodes, os, bs))
}

#[test]
fn serve_end_to_end() {
    let dir = std::env::temp_dir().join(format!("kor-serve-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let city: PathBuf = dir.join("city.korg");
    let second: PathBuf = dir.join("second.korg");

    for (path, seed) in [(&city, "5"), (&second, "9")] {
        let gen = kor(&[
            "generate",
            "road",
            "--nodes",
            "200",
            "--seed",
            seed,
            "--out",
            path.to_str().unwrap(),
        ]);
        assert!(gen.status.success(), "generate failed");
    }

    // A keyword that certainly occurs in the dataset.
    let graph = kor::data::load_graph(&city).unwrap();
    let kw = graph
        .vocab()
        .iter()
        .find(|(id, _)| graph.nodes().any(|n| graph.node_has_keyword(n, *id)))
        .map(|(_, t)| t.to_string())
        .unwrap();

    let mut server = spawn_server(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "3",
        "--dataset",
        &format!("city={}", city.to_str().unwrap()),
    ]);
    let addr = server.addr.clone();

    // --- health + stats ---
    let responses = roundtrip(&addr, &[r#"{"id":1,"method":"health"}"#]);
    let health = parse_ok(&responses[0]);
    assert_eq!(health.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(health.get("datasets").and_then(JsonValue::as_u64), Some(1));

    let responses = roundtrip(&addr, &[r#"{"id":2,"method":"stats"}"#]);
    let stats = parse_ok(&responses[0]);
    let ds = &stats.get("datasets").unwrap().as_arr().unwrap()[0];
    assert_eq!(ds.get("name").and_then(JsonValue::as_str), Some("city"));
    assert_eq!(ds.get("nodes").and_then(JsonValue::as_u64), Some(200));

    // --- concurrent identical queries must produce identical bytes ---
    let query_line = format!(
        r#"{{"id":7,"method":"query","params":{{"dataset":"city","from":0,"to":100,"keywords":[{}],"budget":1000,"algo":"bucket-bound"}}}}"#,
        JsonValue::from(kw.as_str()).render()
    );
    let mut workers = Vec::new();
    for _ in 0..8 {
        let addr = addr.clone();
        let line = query_line.clone();
        workers.push(std::thread::spawn(move || {
            roundtrip(&addr, &[&line]).remove(0)
        }));
    }
    let concurrent: Vec<String> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for resp in &concurrent {
        assert_eq!(
            resp, &concurrent[0],
            "concurrent responses must be byte-identical"
        );
    }
    let served = parse_ok(&concurrent[0]);

    // --- the served result equals the single-shot CLI invocation ---
    let cli = kor(&[
        "query",
        city.to_str().unwrap(),
        "--from",
        "0",
        "--to",
        "100",
        "--keywords",
        &kw,
        "--budget",
        "1000",
        "--algo",
        "bucket-bound",
    ]);
    assert!(cli.status.success());
    let cli_stdout = String::from_utf8_lossy(&cli.stdout);
    match parse_cli_route(&cli_stdout) {
        None => {
            assert_eq!(
                served.get("feasible").and_then(JsonValue::as_bool),
                Some(false)
            );
        }
        Some((cli_nodes, cli_os, cli_bs)) => {
            assert_eq!(
                served.get("feasible").and_then(JsonValue::as_bool),
                Some(true)
            );
            let (nodes, objective, budget) = first_route(&served);
            assert_eq!(nodes, cli_nodes, "route node sequences must agree");
            // The CLI prints scores at 4 decimal places; the server
            // returns full-precision numbers. Formatted identically,
            // the bytes must match.
            assert_eq!(format!("{objective:.4}"), cli_os);
            assert_eq!(format!("{budget:.4}"), cli_bs);
        }
    }

    // The same query again (empty keywords, exact algorithm) — both
    // feasibility and scores must agree with the CLI.
    let exact_line = r#"{"id":8,"method":"query","params":{"from":0,"to":100,"keywords":[],"budget":1000,"algo":"exact"}}"#;
    let served_exact = parse_ok(&roundtrip(&addr, &[exact_line])[0]);
    let cli = kor(&[
        "query",
        city.to_str().unwrap(),
        "--from",
        "0",
        "--to",
        "100",
        "--budget",
        "1000",
        "--algo",
        "exact",
    ]);
    let cli_stdout = String::from_utf8_lossy(&cli.stdout);
    let (cli_nodes, cli_os, _) = parse_cli_route(&cli_stdout).expect("empty-keyword WCSPP route");
    let (nodes, objective, _) = first_route(&served_exact);
    assert_eq!(nodes, cli_nodes);
    assert_eq!(format!("{objective:.4}"), cli_os);

    // --- structured errors ---
    let responses = roundtrip(
        &addr,
        &[
            "this is not json",
            r#"{"id":10,"method":"teleport"}"#,
            r#"{"id":11,"method":"query","params":{"from":0,"to":100}}"#,
            r#"{"id":12,"method":"query","params":{"from":0,"to":100,"budget":5,"dataset":"mars"}}"#,
            r#"{"id":13,"method":"query","params":{"from":0,"to":100,"budget":5,"bogus_key":1}}"#,
        ],
    );
    assert_eq!(error_code(&responses[0]), "parse_error");
    assert_eq!(error_code(&responses[1]), "unknown_method");
    assert_eq!(error_code(&responses[2]), "bad_request");
    assert_eq!(error_code(&responses[3]), "unknown_dataset");
    assert_eq!(error_code(&responses[4]), "bad_request");
    // Error responses echo the request id.
    assert!(responses[1].starts_with(r#"{"id":10,"#), "{}", responses[1]);

    // --- deadlines: an already-expired deadline aborts the search ---
    let deadline_line = format!(
        r#"{{"id":14,"method":"query","params":{{"from":0,"to":100,"keywords":[{}],"budget":1000,"algo":"os-scaling","deadline_ms":0}}}}"#,
        JsonValue::from(kw.as_str()).render()
    );
    let responses = roundtrip(&addr, &[&deadline_line]);
    assert_eq!(error_code(&responses[0]), "deadline_exceeded");

    // --- load a second dataset at runtime and query it ---
    let load_line = format!(
        r#"{{"id":15,"method":"load_dataset","params":{{"name":"second","path":{}}}}}"#,
        JsonValue::from(second.to_str().unwrap()).render()
    );
    let responses = roundtrip(
        &addr,
        &[
            load_line.as_str(),
            r#"{"id":16,"method":"query","params":{"dataset":"second","from":3,"to":50,"keywords":[],"budget":1000}}"#,
            r#"{"id":17,"method":"stats"}"#,
        ],
    );
    let loaded = parse_ok(&responses[0]);
    assert_eq!(
        loaded.get("name").and_then(JsonValue::as_str),
        Some("second")
    );
    assert_eq!(loaded.get("nodes").and_then(JsonValue::as_u64), Some(200));
    assert_eq!(
        loaded.get("replaced").and_then(JsonValue::as_bool),
        Some(false)
    );
    let q2 = parse_ok(&responses[1]);
    assert_eq!(
        q2.get("dataset").and_then(JsonValue::as_str),
        Some("second")
    );
    let stats2 = parse_ok(&responses[2]);
    assert_eq!(stats2.get("datasets").unwrap().as_arr().unwrap().len(), 2);

    // --- graceful shutdown over the wire ---
    let responses = roundtrip(&addr, &[r#"{"id":"bye","method":"shutdown"}"#]);
    let bye = parse_ok(&responses[0]);
    assert_eq!(bye.get("stopping").and_then(JsonValue::as_bool), Some(true));
    let mut exited = false;
    for _ in 0..300 {
        if let Some(status) = server.child.try_wait().unwrap() {
            assert!(status.success(), "server must exit cleanly: {status}");
            exited = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    assert!(exited, "server must exit after a shutdown request");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_loads_generated_korbin_snapshots() {
    let dir = std::env::temp_dir().join(format!("kor-serve-korbin-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world_path = dir.join("world.korbin");
    let gen = kor(&[
        "gen",
        "--topology",
        "grid",
        "--width",
        "7",
        "--height",
        "6",
        "--seed",
        "21",
        "--out",
        world_path.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "gen failed");
    let world = kor::data::read_snapshot(&world_path).expect("snapshot reads");

    let server = spawn_server(&["serve", "--addr", "127.0.0.1:0", "--threads", "2"]);
    let addr = server.addr.clone();

    // Load the binary snapshot over the wire.
    let load_line = format!(
        r#"{{"id":1,"method":"load_dataset","params":{{"path":{}}}}}"#,
        JsonValue::from(world_path.to_str().unwrap()).render()
    );
    let loaded = parse_ok(&roundtrip(&addr, &[&load_line])[0]);
    assert_eq!(
        loaded.get("name").and_then(JsonValue::as_str),
        Some("world")
    );
    assert_eq!(loaded.get("nodes").and_then(JsonValue::as_u64), Some(42));

    // Replay every canned query: ask twice over the wire — the repeat
    // hits the warm pre-processing cache — and also against a fresh
    // in-process engine built from the same snapshot. All three answers
    // must agree byte for byte (the wire uses shortest-round-trip float
    // formatting, so equal bit patterns render identically).
    let engine = kor::core::KorEngine::new(&world.graph);
    let mut checked = 0;
    for set in &world.query_sets {
        for canned in &set.queries {
            let terms: Vec<JsonValue> = canned
                .keywords
                .iter()
                .map(|k| JsonValue::from(world.graph.vocab().resolve(*k).unwrap()))
                .collect();
            let line = format!(
                r#"{{"id":2,"method":"query","params":{{"from":{},"to":{},"keywords":{},"budget":{},"algo":"os-scaling"}}}}"#,
                canned.source.0,
                canned.target.0,
                JsonValue::Arr(terms).render(),
                JsonValue::from(canned.budget).render(),
            );
            let responses = roundtrip(&addr, &[&line, &line]);
            assert_eq!(
                responses[0], responses[1],
                "cold and warm responses must be byte-identical"
            );
            let served = parse_ok(&responses[0]);

            let query = kor::core::KorQuery::new(
                &world.graph,
                canned.source,
                canned.target,
                canned.keywords.clone(),
                canned.budget,
            )
            .unwrap();
            let fresh = engine
                .os_scaling(&query, &kor::core::OsScalingParams::default())
                .unwrap();
            match fresh.route {
                None => assert_eq!(
                    served.get("feasible").and_then(JsonValue::as_bool),
                    Some(false),
                    "server disagrees on infeasibility"
                ),
                Some(expect) => {
                    let (nodes, objective, budget) = first_route(&served);
                    let expect_nodes: Vec<u64> = expect
                        .route
                        .nodes()
                        .iter()
                        .map(|n| u64::from(n.0))
                        .collect();
                    assert_eq!(nodes, expect_nodes, "route must match a fresh engine");
                    assert_eq!(objective.to_bits(), expect.objective.to_bits());
                    assert_eq!(budget.to_bits(), expect.budget.to_bits());
                    checked += 1;
                }
            }
        }
    }
    assert!(checked > 0, "no feasible canned query exercised the check");

    // The warm cache must actually have been hit by the repeats.
    let stats = parse_ok(&roundtrip(&addr, &[r#"{"id":3,"method":"stats"}"#])[0]);
    let prep = stats.get("datasets").unwrap().as_arr().unwrap()[0]
        .get("prep_cache")
        .expect("prep_cache present");
    assert!(
        prep.get("ctx_hits").and_then(JsonValue::as_u64) > Some(0),
        "repeat queries must hit the pre-processing cache"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn blocking_io_flag_serves_byte_identical_responses() {
    let dir = std::env::temp_dir().join(format!("kor-serve-io-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let world_path = dir.join("world.korbin");
    let gen = kor(&[
        "gen",
        "--topology",
        "grid",
        "--width",
        "6",
        "--height",
        "5",
        "--seed",
        "33",
        "--out",
        world_path.to_str().unwrap(),
    ]);
    assert!(gen.status.success(), "gen failed");

    let load_line = format!(
        r#"{{"id":0,"method":"load_dataset","params":{{"path":{}}}}}"#,
        JsonValue::from(world_path.to_str().unwrap()).render()
    );
    // Deterministic lines only: no health/stats (whose uptime varies).
    let lines = [
        r#"{"id":1,"method":"query","params":{"dataset":"world","from":0,"to":29,"keywords":[],"budget":100,"algo":"os-scaling"}}"#,
        r#"{"id":2,"method":"query","params":{"dataset":"world","from":0,"to":29,"keywords":[],"budget":100,"algo":"exact"}}"#,
        "garbage in",
        r#"{"id":4,"method":"teleport"}"#,
        r#"{"id":5,"method":"query","params":{"dataset":"mars","from":0,"to":1,"budget":5}}"#,
    ];

    let mut per_mode = Vec::new();
    for io in ["event", "blocking"] {
        let server = spawn_server(&[
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--threads",
            "2",
            "--io",
            io,
        ]);
        let addr = server.addr.clone();
        parse_ok(&roundtrip(&addr, &[&load_line])[0]);

        // The stats section reports the layer actually in use.
        let stats = parse_ok(&roundtrip(&addr, &[r#"{"method":"stats"}"#])[0]);
        assert_eq!(
            stats
                .get("server")
                .and_then(|s| s.get("io"))
                .and_then(JsonValue::as_str),
            Some(io)
        );

        per_mode.push(roundtrip(&addr, &lines));
    }
    assert_eq!(
        per_mode[0], per_mode[1],
        "event and blocking I/O must produce byte-identical responses"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_rejects_unknown_io_mode() {
    let out = kor(&["serve", "--addr", "127.0.0.1:0", "--io", "fibers"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("io mode"), "stderr: {stderr}");
}

#[test]
fn serve_reports_bind_failure() {
    // An unresolvable listen address must fail fast with a nonzero
    // exit, not hang.
    let out = kor(&["serve", "--addr", "not-an-address"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bind"), "stderr: {stderr}");
}
