//! Seeded protocol fuzzer for `kor serve`, run against both I/O
//! layers: deterministic per seed, it throws split/merged frames,
//! mid-line disconnects, oversized lines, interleaved blank lines, and
//! binary garbage at a live server and asserts the server never dies,
//! every well-formed request line gets exactly one well-formed JSON
//! reply (with its id echoed), and malformed input yields `parse_error`
//! — not silence, not a dropped connection.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kor::graph::fixtures::figure1;
use kor::json::JsonValue;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

fn fixture_server(io: IoMode) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io,
        // Deep queue: this suite pins framing/parsing behavior, so no
        // fuzzed line may be answered `overloaded` (that would change
        // the expected reply).
        queue_capacity: 4096,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_graph("fig1", figure1()));
    let addr = server.local_addr();
    (addr, server.start())
}

/// What one fuzzed line must produce.
enum Expect {
    /// A well-formed JSON reply echoing this numeric id.
    Reply(u64),
    /// A `parse_error` reply (with a null id — the line never parsed).
    ParseError,
    /// Nothing: blank lines are skipped.
    Silence,
}

/// One fuzzed line (newline NOT included) plus its expectation.
struct FuzzLine {
    bytes: Vec<u8>,
    expect: Expect,
}

fn gen_line(rng: &mut StdRng, next_id: &mut u64) -> FuzzLine {
    match rng.gen_range(0..6u32) {
        // Valid query with randomized endpoints/keywords/budget; any
        // outcome (ok or structured error) is a well-formed reply.
        0 | 1 => {
            let id = *next_id;
            *next_id += 1;
            let from = rng.gen_range(0..8u32);
            let to = rng.gen_range(0..8u32);
            let n_kw = rng.gen_range(0..3usize);
            let kws: Vec<String> = (0..n_kw)
                .map(|_| format!("\"t{}\"", rng.gen_range(1..6u32)))
                .collect();
            let budget = rng.gen_range(3..15u32);
            let line = format!(
                r#"{{"id":{id},"method":"query","params":{{"from":{from},"to":{to},"keywords":[{}],"budget":{budget}}}}}"#,
                kws.join(",")
            );
            FuzzLine {
                bytes: line.into_bytes(),
                expect: Expect::Reply(id),
            }
        }
        // Valid health request.
        2 => {
            let id = *next_id;
            *next_id += 1;
            FuzzLine {
                bytes: format!(r#"{{"id":{id},"method":"health"}}"#).into_bytes(),
                expect: Expect::Reply(id),
            }
        }
        // Printable garbage (never valid JSON: starts with a letter).
        3 => {
            let len = rng.gen_range(1..60usize);
            let mut s = String::from("g");
            for _ in 0..len {
                s.push((b' ' + (rng.gen_range(0..95u32) as u8)) as char);
            }
            FuzzLine {
                bytes: s.into_bytes(),
                expect: Expect::ParseError,
            }
        }
        // Binary garbage: arbitrary non-newline bytes, at least one of
        // them clearly non-whitespace and non-JSON.
        4 => {
            let len = rng.gen_range(1..80usize);
            let mut bytes = vec![0xFFu8];
            for _ in 0..len {
                let b = loop {
                    let b = rng.gen_range(0..256u32) as u8;
                    if b != b'\n' {
                        break b;
                    }
                };
                bytes.push(b);
            }
            FuzzLine {
                bytes,
                expect: Expect::ParseError,
            }
        }
        // Blank line: empty or whitespace-only.
        _ => {
            let pad = rng.gen_range(0..4usize);
            FuzzLine {
                bytes: vec![b' '; pad],
                expect: Expect::Silence,
            }
        }
    }
}

/// Writes `payload` in randomly-sized chunks with occasional pauses, so
/// the server sees split and merged frames in every combination.
fn write_chunked(rng: &mut StdRng, conn: &mut TcpStream, payload: &[u8]) {
    let mut at = 0;
    while at < payload.len() {
        let n = rng.gen_range(1..64usize).min(payload.len() - at);
        conn.write_all(&payload[at..at + n]).expect("chunk write");
        at += n;
        if rng.gen_bool(0.15) {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// One fuzzed connection: a random script of lines, a random framing,
/// and (sometimes) a trailing partial line followed by a disconnect.
/// Returns how many well-formed replies were checked.
fn fuzz_connection(rng: &mut StdRng, addr: SocketAddr, next_id: &mut u64) -> usize {
    let n_lines = rng.gen_range(1..10usize);
    let lines: Vec<FuzzLine> = (0..n_lines).map(|_| gen_line(rng, next_id)).collect();
    let mut payload = Vec::new();
    for line in &lines {
        payload.extend_from_slice(&line.bytes);
        payload.push(b'\n');
    }
    // Mid-line disconnect: a committed-looking prefix with no newline.
    // The server must not answer it and must not die.
    let partial = rng.gen_bool(0.3);
    if partial {
        payload.extend_from_slice(br#"{"id":999999,"method":"hea"#);
    }

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    write_chunked(rng, &mut conn, &payload);

    let mut checked = 0;
    for line in &lines {
        match line.expect {
            Expect::Silence => continue,
            Expect::Reply(id) => {
                let mut resp = String::new();
                reader.read_line(&mut resp).expect("reply for valid line");
                let v = JsonValue::parse(resp.trim()).unwrap_or_else(|e| {
                    panic!("malformed reply {resp:?}: {e:?}");
                });
                assert_eq!(
                    v.get("id").and_then(JsonValue::as_u64),
                    Some(id),
                    "id must echo in {resp}"
                );
                assert!(v.get("ok").and_then(JsonValue::as_bool).is_some());
                checked += 1;
            }
            Expect::ParseError => {
                let mut resp = String::new();
                reader.read_line(&mut resp).expect("reply for garbage line");
                let v = JsonValue::parse(resp.trim())
                    .unwrap_or_else(|e| panic!("malformed reply {resp:?}: {e:?}"));
                assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
                assert_eq!(
                    v.get("error")
                        .and_then(|e| e.get("code"))
                        .and_then(JsonValue::as_str),
                    Some("parse_error"),
                    "garbage must yield parse_error, got {resp}"
                );
                checked += 1;
            }
        }
    }
    // Drop with the partial line unanswered (if any): an uncommitted
    // request must simply vanish.
    drop(conn);
    checked
}

fn run_fuzz(io: IoMode, seed: u64, connections: usize) {
    let (addr, handle) = fixture_server(io);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_id = 0u64;
    let mut checked = 0;
    for _ in 0..connections {
        checked += fuzz_connection(&mut rng, addr, &mut next_id);
    }
    assert!(checked > connections, "fuzz exercised too few replies");

    // The server survived everything above: a fresh connection gets
    // normal service.
    let mut conn = TcpStream::connect(addr).expect("server still accepts");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    conn.write_all(b"{\"id\":424242,\"method\":\"health\"}\n")
        .unwrap();
    let mut resp = String::new();
    BufReader::new(conn).read_line(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("424242"), "{resp}");
    handle.shutdown();
}

#[test]
fn fuzz_event_io() {
    run_fuzz(IoMode::Event, 0x6b07, 30);
}

#[test]
fn fuzz_event_io_alternate_seed() {
    run_fuzz(IoMode::Event, 20120807, 30);
}

#[test]
fn fuzz_blocking_io() {
    run_fuzz(IoMode::Blocking, 7, 20);
}

/// One seeded malformed `update_edges` line. Every variant is invalid
/// in a different layer: JSON shape, unknown fields, bad ops, bad
/// multiplier domains (including `1e999`, which parses to infinity),
/// edges or nodes that do not exist, duplicates, and self-loops.
fn malformed_update_edges(rng: &mut StdRng, id: u64) -> Vec<u8> {
    let body = match rng.gen_range(0..12u32) {
        0 => r#"{}"#.to_string(),
        1 => r#"{"mutations":[]}"#.to_string(),
        2 => r#"{"mutations":42}"#.to_string(),
        3 => r#"{"mutations":["close"]}"#.to_string(),
        4 => format!(
            r#"{{"mutations":[{{"from":{},"to":{},"op":"demolish"}}]}}"#,
            rng.gen_range(0..8u32),
            rng.gen_range(0..8u32)
        ),
        5 => r#"{"mutations":[{"from":0,"to":1,"op":"close","objective":1.0,"budget":1.0}]}"#
            .to_string(),
        6 => r#"{"mutations":[{"from":0,"to":1,"op":"scale","objective":1.0}]}"#.to_string(),
        // 1e999 overflows to +inf — must be a typed rejection, not a
        // served infinity.
        7 => r#"{"mutations":[{"from":0,"to":1,"op":"scale","objective":1e999,"budget":1.0}]}"#
            .to_string(),
        8 => format!(
            r#"{{"mutations":[{{"from":0,"to":1,"op":"scale","objective":{},"budget":1.0}}]}}"#,
            ["0.0", "-1.5", "-0.0"][rng.gen_range(0..3usize)]
        ),
        // (7, 0) and (1, 0) are not edges of figure 1; node 99 is not a
        // node at all.
        9 => format!(
            r#"{{"mutations":[{{"from":{},"to":0,"op":"close"}}]}}"#,
            [7u32, 1, 99][rng.gen_range(0..3usize)]
        ),
        10 => r#"{"mutations":[{"from":0,"to":1,"op":"close"},{"from":0,"to":1,"op":"close"}]}"#
            .to_string(),
        _ => format!(
            r#"{{"mutations":[{{"from":{0},"to":{0},"op":"close"}}]}}"#,
            rng.gen_range(0..8u32)
        ),
    };
    format!(r#"{{"id":{id},"method":"update_edges","params":{body}}}"#).into_bytes()
}

/// A storm of malformed `update_edges` lines (chunk-framed, interleaved
/// with valid queries) must produce one structured `bad_request` per
/// line, leave the dataset at epoch 0 — no partial batch may ever
/// apply — and leave the server serving.
fn run_update_edges_fuzz(io: IoMode, seed: u64) {
    let (addr, handle) = fixture_server(io);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    let mut checked = 0;
    for id in 0..120u64 {
        let payload = if id % 5 == 4 {
            // Interleave a valid query so real traffic flows throughout.
            format!(
                r#"{{"id":{id},"method":"query","params":{{"from":0,"to":7,"keywords":["t1"],"budget":10}}}}"#
            )
            .into_bytes()
        } else {
            malformed_update_edges(&mut rng, id)
        };
        let mut framed = payload.clone();
        framed.push(b'\n');
        write_chunked(&mut rng, &mut conn, &framed);

        let mut resp = String::new();
        reader.read_line(&mut resp).expect("reply");
        let v = JsonValue::parse(resp.trim())
            .unwrap_or_else(|e| panic!("malformed reply {resp:?}: {e:?}"));
        assert_eq!(v.get("id").and_then(JsonValue::as_u64), Some(id), "{resp}");
        if id % 5 == 4 {
            assert_eq!(
                v.get("ok").and_then(JsonValue::as_bool),
                Some(true),
                "{resp}"
            );
        } else {
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(JsonValue::as_str),
                Some("bad_request"),
                "line {:?} must be a structured rejection, got {resp}",
                String::from_utf8_lossy(&payload)
            );
        }
        checked += 1;
    }
    assert_eq!(checked, 120);

    // Not one of the rejected batches may have touched the graph.
    conn.write_all(b"{\"id\":9000,\"method\":\"stats\"}\n")
        .unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let stats = JsonValue::parse(resp.trim()).unwrap();
    let ds = stats
        .get("result")
        .and_then(|r| r.get("datasets"))
        .and_then(JsonValue::as_arr)
        .and_then(|d| d.first())
        .expect("dataset stats");
    assert_eq!(ds.get("epoch").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(ds.get("edges").and_then(JsonValue::as_u64), Some(12));

    handle.shutdown();
}

#[test]
fn fuzz_update_edges_event_io() {
    run_update_edges_fuzz(IoMode::Event, 0xED6E5);
}

#[test]
fn fuzz_update_edges_blocking_io() {
    run_update_edges_fuzz(IoMode::Blocking, 0x5107);
}

/// Oversized lines are their own terminal case: the server must answer
/// `request_too_large` and close — even when the oversized line never
/// ends (no newline arrives before the cap trips).
#[test]
fn oversized_lines_are_rejected_not_buffered() {
    for io in [IoMode::Event, IoMode::Blocking] {
        let server = Server::bind(ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 1,
            io,
            max_request_bytes: 256,
            ..ServeConfig::default()
        })
        .expect("bind");
        server
            .registry()
            .insert(Dataset::from_graph("fig1", figure1()));
        let addr = server.local_addr();
        let handle = server.start();

        // Terminated oversized line.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        conn.write_all(&vec![b'x'; 600]).unwrap();
        conn.write_all(b"\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(
            resp.contains("request_too_large"),
            "[{}] {resp}",
            io.as_str()
        );
        let mut next = String::new();
        assert_eq!(reader.read_line(&mut next).unwrap(), 0, "then hangs up");

        // Unterminated oversized line: the cap must trip on buffered
        // bytes alone, not wait forever for a newline.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        conn.write_all(&vec![b'y'; 2048]).unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        assert!(
            resp.contains("request_too_large"),
            "[{}] {resp}",
            io.as_str()
        );

        // The server is unharmed.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        conn.write_all(b"{\"method\":\"health\"}\n").unwrap();
        let mut resp = String::new();
        BufReader::new(conn).read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
        handle.shutdown();
    }
}
