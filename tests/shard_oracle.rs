//! Cross-shard oracle equivalence: the scatter-gather router is
//! byte-identical to the single fused engine.
//!
//! The same 18 generated worlds `tests/gen_oracle.rs` validates against
//! the brute-force oracle are sharded at N ∈ {2, 4} and every canned
//! query is answered twice — once through the shard router (confined
//! queries on their owning shard's engine with anchored scaling,
//! everything else on the fused engine) and once on a plain single
//! engine. The answers must match bit for bit: same feasibility, same
//! route node ids, same objective/budget f64 bit patterns, same top-k
//! order and length. Every router-path route is additionally re-walked
//! edge by edge against the fused graph.
//!
//! The battery also asserts it is not vacuous: across all worlds some
//! queries must route shard-locally and some must fan out, otherwise
//! the confinement condition never fired and the test proves nothing.

use kor::prelude::*;
use kor::shard::{ShardPlan, ShardRouter};

const EPSILON: f64 = 0.5;
const BETA: f64 = 1.2;
const TOL: f64 = 1e-9;
const K: usize = 3;

/// Same worlds as `tests/gen_oracle.rs`: two topologies × 9 seeds.
fn worlds() -> Vec<GenConfig> {
    let mut configs = Vec::new();
    for seed in 0..9 {
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.5,
            ..GenConfig::grid(3, 4, seed)
        });
        configs.push(GenConfig {
            vocab_size: 12,
            max_tags_per_node: 2,
            keyword_counts: vec![1, 2],
            queries_per_set: 4,
            budget_tightness: 1.6,
            ..GenConfig::ring(10, 3, 1000 + seed)
        });
    }
    configs
}

/// A route reduced to its exact bits: node ids, OS bits, BS bits.
type RouteKey = (Vec<u32>, u64, u64);

fn key(r: &RouteResult) -> RouteKey {
    (
        r.route.nodes().iter().map(|n| n.0).collect(),
        r.objective.to_bits(),
        r.budget.to_bits(),
    )
}

const ALGOS: [&str; 6] = [
    "exact",
    "os-scaling",
    "bucket-bound",
    "top-k-os-scaling",
    "top-k-bucket-bound",
    "greedy",
];

/// Runs one algorithm on one engine and reduces the answer to routes.
/// `anchor` pins the scaling extrema when the engine is a shard-local
/// one; `None` on the fused engine computes the same values natively.
fn run_algo<G: AsRef<Graph>>(
    engine: &KorEngine<G>,
    query: &KorQuery,
    algo: &str,
    anchor: Option<ScaleAnchor>,
) -> Vec<RouteResult> {
    let os = OsScalingParams {
        anchor,
        ..OsScalingParams::with_epsilon(EPSILON)
    };
    let bb = BucketBoundParams {
        anchor,
        ..BucketBoundParams::with(EPSILON, BETA)
    };
    match algo {
        "exact" => engine.exact(query).unwrap().route.into_iter().collect(),
        "os-scaling" => engine
            .os_scaling(query, &os)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "bucket-bound" => engine
            .bucket_bound(query, &bb)
            .unwrap()
            .route
            .into_iter()
            .collect(),
        "top-k-os-scaling" => engine.top_k_os_scaling(query, &os, K).unwrap().routes,
        "top-k-bucket-bound" => engine.top_k_bucket_bound(query, &bb, K).unwrap().routes,
        "greedy" => engine
            .greedy(query, &GreedyParams::default())
            .unwrap()
            .into_iter()
            .map(|g| RouteResult {
                route: g.route,
                objective: g.objective,
                budget: g.budget,
            })
            .collect(),
        other => unreachable!("unknown algo {other}"),
    }
}

/// Re-walks a route against the fused graph: every hop must be a real
/// edge and the claimed scores must match the edge sums. (Keyword and
/// budget checks live in `gen_oracle.rs`; here the concern is that a
/// shard-local search cannot invent edges its subgraph does not have.)
fn verify_route(graph: &Graph, query: &KorQuery, r: &RouteResult, what: &str) {
    let nodes = r.route.nodes();
    assert_eq!(*nodes.first().unwrap(), query.source, "{what}: source");
    assert_eq!(*nodes.last().unwrap(), query.target, "{what}: target");
    let mut os = 0.0;
    let mut bs = 0.0;
    for w in nodes.windows(2) {
        let e = graph
            .edge_between(w[0], w[1])
            .unwrap_or_else(|| panic!("{what}: edge {} -> {} does not exist", w[0], w[1]));
        os += e.objective;
        bs += e.budget;
    }
    assert!((os - r.objective).abs() < TOL, "{what}: OS mismatch");
    assert!((bs - r.budget).abs() < TOL, "{what}: BS mismatch");
    assert!(bs <= query.budget + TOL, "{what}: over budget");
}

#[test]
fn router_is_byte_identical_to_the_single_engine_on_all_worlds() {
    let mut local_total = 0u64;
    let mut fanout_total = 0u64;
    let mut queries_total = 0usize;

    for config in worlds() {
        let world = generate_world(&config);
        let graph = &world.graph;
        let fused = KorEngine::new(graph);
        for shards in [2usize, 4] {
            let info = compute_sharding(graph, shards);
            let router = ShardRouter::new(graph, info);
            let label = format!(
                "{} seed {} at {shards} shards",
                config.topology.name(),
                config.seed
            );
            for set in &world.query_sets {
                for canned in &set.queries {
                    let query = KorQuery::new(
                        graph,
                        canned.source,
                        canned.target,
                        canned.keywords.clone(),
                        canned.budget,
                    )
                    .expect("canned queries are valid");
                    queries_total += 1;
                    for algo in ALGOS {
                        let what = format!(
                            "{label}: {} -> {} Δ {:.3} [{algo}]",
                            canned.source, canned.target, canned.budget
                        );
                        let plan = router
                            .plan(query.source, query.target, query.budget, algo != "greedy")
                            .expect("no shard is poisoned");
                        let routed = match plan {
                            ShardPlan::Local(s) => {
                                run_algo(router.engine(s), &query, algo, Some(router.anchor()))
                            }
                            ShardPlan::Fanout => run_algo(&fused, &query, algo, None),
                        };
                        let single = run_algo(&fused, &query, algo, None);
                        assert_eq!(
                            routed.iter().map(key).collect::<Vec<_>>(),
                            single.iter().map(key).collect::<Vec<_>>(),
                            "{what}: router diverged from the single engine \
                             (plan {plan:?})"
                        );
                        // Greedy may legitimately return an infeasible
                        // best-effort route; only re-walk feasible ones.
                        for (i, r) in routed.iter().enumerate() {
                            if algo != "greedy" || r.budget <= query.budget {
                                verify_route(graph, &query, r, &format!("{what} #{i}"));
                            }
                        }
                        // Top-k answers must come back sorted.
                        let mut prev = f64::NEG_INFINITY;
                        for r in &routed {
                            assert!(r.objective >= prev, "{what}: not sorted");
                            prev = r.objective;
                        }
                    }
                }
            }
            local_total += router
                .shard_counters()
                .iter()
                .map(|c| c.local_hits)
                .sum::<u64>();
            fanout_total += router.fanouts();
        }
    }

    // The battery must exercise both paths, or byte-identity is vacuous.
    assert!(
        local_total > 0,
        "no query was ever confined — the shard-local path went untested \
         ({queries_total} queries)"
    );
    assert!(
        fanout_total > 0,
        "no query ever fanned out — the fused path went untested"
    );
    eprintln!(
        "shard oracle: {queries_total} queries × {} algos; {local_total} confined local, \
         {fanout_total} fanouts",
        ALGOS.len()
    );
}
