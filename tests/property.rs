//! Property-based tests over random small graphs: algorithm invariants
//! that must hold on *every* input, not just the curated fixtures.
//!
//! The build environment vendors no `proptest`, so these are hand-rolled
//! randomized properties: each test draws `CASES` independent inputs from
//! a seeded [`StdRng`] (deterministic, so failures reproduce) and checks
//! the same invariants a proptest harness would.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kor::prelude::*;

const CASES: u64 = 64;

/// A random small directed graph with `2..=max_nodes` nodes, up to two
/// keywords per node from a tiny vocabulary, and random positive weights.
fn random_graph(rng: &mut StdRng, max_nodes: usize) -> Graph {
    let n = rng.gen_range(2..=max_nodes);
    let mut b = GraphBuilder::new();
    for t in 0..6u32 {
        b.vocab_mut().intern(&format!("kw{t}"));
    }
    for _ in 0..n {
        let n_kws = rng.gen_range(0..3usize);
        let kws: Vec<KeywordId> = (0..n_kws)
            .map(|_| KeywordId(rng.gen_range(0u32..6)))
            .collect();
        b.add_node_ids(kws);
    }
    let n_edges = rng.gen_range(1..(n * 3).max(2));
    for _ in 0..n_edges {
        let from = rng.gen_range(0..n as u32);
        let to = rng.gen_range(0..n as u32);
        if from != to {
            let o = rng.gen_range(1u32..50) as f64 / 10.0;
            let bu = rng.gen_range(1u32..50) as f64 / 10.0;
            // Duplicate edges are rejected; ignore those.
            let _ = b.add_edge(NodeId(from), NodeId(to), o, bu);
        }
    }
    b.build().expect("valid random graph")
}

/// Random query pieces: raw endpoints (reduced modulo the node count at
/// the use site), up to two query keywords, and a budget in `(0, 12]`.
fn random_query_parts(rng: &mut StdRng) -> (u32, u32, Vec<KeywordId>, f64) {
    let s = rng.gen_range(0u32..12);
    let t = rng.gen_range(0u32..12);
    let n_kws = rng.gen_range(0..3usize);
    let kws: Vec<KeywordId> = (0..n_kws)
        .map(|_| KeywordId(rng.gen_range(0u32..6)))
        .collect();
    let delta = rng.gen_range(1u32..120) as f64 / 10.0;
    (s, t, kws, delta)
}

#[test]
fn exact_agrees_with_brute_force() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1000 + case);
        let graph = random_graph(&mut rng, 8);
        let (s, t, kws, delta) = random_query_parts(&mut rng);
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let brute = engine.brute_force(
            &query,
            &BruteForceParams {
                max_expansions: 2_000_000,
                target_pruning: true,
            },
        );
        let Ok(brute) = brute else { continue }; // search space cap
        let exact = engine.exact(&query).unwrap();
        match (&brute.route, &exact.route) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert!(
                    (a.objective - b.objective).abs() < 1e-9,
                    "case {case}: brute {} vs exact {}",
                    a.objective,
                    b.objective
                );
            }
            (a, b) => panic!("case {case}: feasibility disagreement {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn os_scaling_bound_and_feasibility() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x2000 + case);
        let graph = random_graph(&mut rng, 10);
        let (s, t, kws, delta) = random_query_parts(&mut rng);
        let eps = rng.gen_range(5u32..95) as f64 / 100.0;
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let exact = engine.exact(&query).unwrap();
        let approx = engine
            .os_scaling(&query, &OsScalingParams::with_epsilon(eps))
            .unwrap();
        match (&exact.route, &approx.route) {
            (None, None) => {}
            (Some(opt), Some(found)) => {
                assert!(
                    found.objective <= opt.objective / (1.0 - eps) + 1e-9,
                    "case {case}: Theorem 2 violated at eps={eps}: {} > {}",
                    found.objective,
                    opt.objective / (1.0 - eps)
                );
                let (os, bs) = found.route.scores(&graph).unwrap();
                assert!((os - found.objective).abs() < 1e-9, "case {case}");
                assert!((bs - found.budget).abs() < 1e-9, "case {case}");
                assert!(found.budget <= delta + 1e-9, "case {case}");
                assert!(
                    found.route.covers(&graph, query.keywords.ids()),
                    "case {case}"
                );
            }
            (a, b) => panic!("case {case}: feasibility disagreement {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn bucket_bound_theorem3() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3000 + case);
        let graph = random_graph(&mut rng, 10);
        let (s, t, kws, delta) = random_query_parts(&mut rng);
        let beta = rng.gen_range(105u32..250) as f64 / 100.0;
        let eps = 0.5;
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let exact = engine.exact(&query).unwrap();
        let bb = engine
            .bucket_bound(&query, &BucketBoundParams::with(eps, beta))
            .unwrap();
        match (&exact.route, &bb.route) {
            (None, None) => {}
            (Some(opt), Some(found)) => {
                assert!(
                    found.objective <= opt.objective * beta / (1.0 - eps) + 1e-9,
                    "case {case}: Theorem 3 violated at beta={beta}: {} > {}",
                    found.objective,
                    opt.objective * beta / (1.0 - eps)
                );
                assert!(found.budget <= delta + 1e-9, "case {case}");
                assert!(
                    found.route.covers(&graph, query.keywords.ids()),
                    "case {case}"
                );
            }
            (a, b) => panic!("case {case}: feasibility disagreement {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn top_k_is_sorted_distinct_feasible() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x4000 + case);
        let graph = random_graph(&mut rng, 8);
        let (s, t, kws, delta) = random_query_parts(&mut rng);
        let k = rng.gen_range(1usize..5);
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let topk = engine
            .top_k_os_scaling(&query, &OsScalingParams::with_epsilon(0.3), k)
            .unwrap();
        assert!(topk.routes.len() <= k, "case {case}");
        for w in topk.routes.windows(2) {
            assert!(w[0].objective <= w[1].objective + 1e-12, "case {case}");
            assert!(
                w[0].route.nodes() != w[1].route.nodes(),
                "case {case}: duplicate route"
            );
        }
        for r in &topk.routes {
            assert!(r.budget <= delta + 1e-9, "case {case}");
            assert!(r.route.covers(&graph, query.keywords.ids()), "case {case}");
            let (os, bs) = r.route.scores(&graph).unwrap();
            assert!((os - r.objective).abs() < 1e-9, "case {case}");
            assert!((bs - r.budget).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn greedy_output_is_always_a_valid_route() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x5000 + case);
        let graph = random_graph(&mut rng, 10);
        let (s, t, kws, delta) = random_query_parts(&mut rng);
        let beam = rng.gen_range(1usize..3);
        let alpha = rng.gen_range(0u32..=100) as f64 / 100.0;
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let params = GreedyParams {
            alpha,
            beam_width: beam,
            mode: GreedyMode::KeywordsFirst,
        };
        if let Some(r) = engine.greedy(&query, &params).unwrap() {
            assert_eq!(r.route.source(), Some(s), "case {case}");
            assert_eq!(r.route.target(), Some(t), "case {case}");
            let (os, bs) = r.route.scores(&graph).unwrap();
            assert!((os - r.objective).abs() < 1e-9, "case {case}");
            assert!((bs - r.budget).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn inverted_indexes_agree() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6000 + case);
        let graph = random_graph(&mut rng, 12);
        let mem = InvertedIndex::build(&graph);
        let dir = std::env::temp_dir().join("kor-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("idx-{}-{case}.bin", std::process::id()));
        let disk = DiskInvertedIndex::build(&graph, &path).unwrap();
        for (kw, postings) in mem.iter() {
            let term = graph.vocab().resolve(kw).unwrap();
            assert_eq!(
                disk.postings(term).unwrap().unwrap(),
                postings.to_vec(),
                "case {case}"
            );
        }
        assert_eq!(disk.term_count() as usize, mem.term_count(), "case {case}");
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn graph_io_round_trips() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x7000 + case);
        let graph = random_graph(&mut rng, 12);
        let text = kor::data::graph_to_string(&graph);
        let back = kor::data::graph_from_str(&text).unwrap();
        assert_eq!(back.node_count(), graph.node_count(), "case {case}");
        assert_eq!(back.edge_count(), graph.edge_count(), "case {case}");
        for v in graph.nodes() {
            let a: Vec<(u32, u64, u64)> = graph
                .out_edges(v)
                .map(|e| (e.node.0, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            let b: Vec<(u32, u64, u64)> = back
                .out_edges(v)
                .map(|e| (e.node.0, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            assert_eq!(a, b, "case {case}");
        }
    }
}

#[test]
fn landmark_bounds_are_admissible_on_random_graphs() {
    // The ALT triangle bound must never exceed the true remaining
    // shortest distance to the target — in either metric — or the
    // engines would prune feasible routes. Exercised on random directed
    // graphs full of unreachable pairs, where the ±inf arithmetic in
    // the bound is most likely to go wrong.
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x8000 + case);
        let graph = random_graph(&mut rng, 14);
        let lm = Landmarks::build(&graph, DEFAULT_LANDMARKS);
        for target in graph.nodes() {
            let ctx = QueryContext::new(&graph, target);
            let bounds = lm.for_target(target);
            for v in graph.nodes() {
                let ob = lm.objective_bound(v, &bounds);
                let bb = lm.budget_bound(v, &bounds);
                assert!(!ob.is_nan() && !bb.is_nan(), "case {case}: NaN bound");
                assert!(
                    ob <= ctx.os_tau(v),
                    "case {case}: objective bound {ob} > true {} ({v} -> {target})",
                    ctx.os_tau(v)
                );
                assert!(
                    bb <= ctx.bs_sigma(v),
                    "case {case}: budget bound {bb} > true {} ({v} -> {target})",
                    ctx.bs_sigma(v)
                );
            }
        }
    }
}

#[test]
fn landmark_bounds_are_admissible_on_generated_worlds() {
    // Same invariant on the `kor gen` worlds the oracle suites use:
    // positioned grid/ring topologies route landmark selection through
    // the geometric partitioner, a different code path than the BFS
    // fallback random graphs take.
    let configs = [
        GenConfig::grid(8, 6, 21),
        GenConfig::ring(40, 6, 22),
        GenConfig::grid(5, 5, 23),
    ];
    for config in configs {
        let world = generate_world(&config);
        let graph = &world.graph;
        let lm = Landmarks::build(graph, DEFAULT_LANDMARKS);
        let mut rng = StdRng::seed_from_u64(0x9000 + config.seed);
        let n = graph.node_count() as u32;
        for _ in 0..200 {
            let v = NodeId(rng.gen_range(0..n));
            let target = NodeId(rng.gen_range(0..n));
            let ctx = QueryContext::new(graph, target);
            let bounds = lm.for_target(target);
            let ob = lm.objective_bound(v, &bounds);
            let bb = lm.budget_bound(v, &bounds);
            assert!(!ob.is_nan() && !bb.is_nan(), "seed {}: NaN", config.seed);
            assert!(
                ob <= ctx.os_tau(v),
                "seed {}: objective bound {ob} > true {} ({v} -> {target})",
                config.seed,
                ctx.os_tau(v)
            );
            assert!(
                bb <= ctx.bs_sigma(v),
                "seed {}: budget bound {bb} > true {} ({v} -> {target})",
                config.seed,
                ctx.bs_sigma(v)
            );
        }
    }
}
