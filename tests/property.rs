//! Property-based tests over random small graphs: algorithm invariants
//! that must hold on *every* input, not just the curated fixtures.

use proptest::prelude::*;

use kor::prelude::*;

/// A random small directed graph with up to `max_nodes` nodes, a few
/// keywords per node from a tiny vocabulary, and random positive weights.
fn arb_graph(max_nodes: usize) -> impl Strategy<Value = Graph> {
    let node_range = 2..=max_nodes;
    node_range
        .prop_flat_map(|n| {
            let keywords = proptest::collection::vec(
                proptest::collection::vec(0u32..6, 0..3),
                n,
            );
            let edges = proptest::collection::vec(
                (0..n as u32, 0..n as u32, 1u32..50, 1u32..50),
                1..(n * 3).max(2),
            );
            (Just(n), keywords, edges)
        })
        .prop_map(|(n, keywords, edges)| {
            let mut b = GraphBuilder::new();
            for t in 0..6u32 {
                b.vocab_mut().intern(&format!("kw{t}"));
            }
            for kws in keywords.iter().take(n) {
                b.add_node_ids(kws.iter().map(|&k| KeywordId(k)).collect());
            }
            for &(from, to, o, bu) in &edges {
                if from != to {
                    // Duplicate edges are rejected; ignore those.
                    let _ = b.add_edge(
                        NodeId(from),
                        NodeId(to),
                        o as f64 / 10.0,
                        bu as f64 / 10.0,
                    );
                }
            }
            b.build().expect("valid random graph")
        })
}

fn arb_query_parts() -> impl Strategy<Value = (u32, u32, Vec<u32>, f64)> {
    (
        0u32..12,
        0u32..12,
        proptest::collection::vec(0u32..6, 0..3),
        1u32..120,
    )
        .prop_map(|(s, t, kws, d)| (s, t, kws, d as f64 / 10.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_agrees_with_brute_force(
        graph in arb_graph(8),
        (s, t, kws, delta) in arb_query_parts(),
    ) {
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let kws: Vec<KeywordId> = kws.into_iter().map(KeywordId).collect();
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let brute = engine.brute_force(&query, &BruteForceParams {
            max_expansions: 2_000_000,
            target_pruning: true,
        });
        let Ok(brute) = brute else { return Ok(()); }; // search space cap
        let exact = engine.exact(&query).unwrap();
        match (&brute.route, &exact.route) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-9,
                    "brute {} vs exact {}", a.objective, b.objective);
            }
            (a, b) => prop_assert!(false, "feasibility disagreement {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn os_scaling_bound_and_feasibility(
        graph in arb_graph(10),
        (s, t, kws, delta) in arb_query_parts(),
        eps_pct in 5u32..95,
    ) {
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let kws: Vec<KeywordId> = kws.into_iter().map(KeywordId).collect();
        let eps = eps_pct as f64 / 100.0;
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let exact = engine.exact(&query).unwrap();
        let approx = engine.os_scaling(&query, &OsScalingParams::with_epsilon(eps)).unwrap();
        match (&exact.route, &approx.route) {
            (None, None) => {}
            (Some(opt), Some(found)) => {
                prop_assert!(found.objective <= opt.objective / (1.0 - eps) + 1e-9,
                    "Theorem 2 violated at eps={eps}: {} > {}",
                    found.objective, opt.objective / (1.0 - eps));
                let (os, bs) = found.route.scores(&graph).unwrap();
                prop_assert!((os - found.objective).abs() < 1e-9);
                prop_assert!((bs - found.budget).abs() < 1e-9);
                prop_assert!(found.budget <= delta + 1e-9);
                prop_assert!(found.route.covers(&graph, query.keywords.ids()));
            }
            (a, b) => prop_assert!(false, "feasibility disagreement {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn bucket_bound_theorem3(
        graph in arb_graph(10),
        (s, t, kws, delta) in arb_query_parts(),
        beta_pct in 105u32..250,
    ) {
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let kws: Vec<KeywordId> = kws.into_iter().map(KeywordId).collect();
        let beta = beta_pct as f64 / 100.0;
        let eps = 0.5;
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let exact = engine.exact(&query).unwrap();
        let bb = engine.bucket_bound(&query, &BucketBoundParams::with(eps, beta)).unwrap();
        match (&exact.route, &bb.route) {
            (None, None) => {}
            (Some(opt), Some(found)) => {
                prop_assert!(found.objective <= opt.objective * beta / (1.0 - eps) + 1e-9,
                    "Theorem 3 violated at beta={beta}: {} > {}",
                    found.objective, opt.objective * beta / (1.0 - eps));
                prop_assert!(found.budget <= delta + 1e-9);
                prop_assert!(found.route.covers(&graph, query.keywords.ids()));
            }
            (a, b) => prop_assert!(false, "feasibility disagreement {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn top_k_is_sorted_distinct_feasible(
        graph in arb_graph(8),
        (s, t, kws, delta) in arb_query_parts(),
        k in 1usize..5,
    ) {
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let kws: Vec<KeywordId> = kws.into_iter().map(KeywordId).collect();
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let topk = engine.top_k_os_scaling(&query, &OsScalingParams::with_epsilon(0.3), k).unwrap();
        prop_assert!(topk.routes.len() <= k);
        for w in topk.routes.windows(2) {
            prop_assert!(w[0].objective <= w[1].objective + 1e-12);
            prop_assert!(w[0].route.nodes() != w[1].route.nodes(), "duplicate route");
        }
        for r in &topk.routes {
            prop_assert!(r.budget <= delta + 1e-9);
            prop_assert!(r.route.covers(&graph, query.keywords.ids()));
            let (os, bs) = r.route.scores(&graph).unwrap();
            prop_assert!((os - r.objective).abs() < 1e-9);
            prop_assert!((bs - r.budget).abs() < 1e-9);
        }
    }

    #[test]
    fn greedy_output_is_always_a_valid_route(
        graph in arb_graph(10),
        (s, t, kws, delta) in arb_query_parts(),
        beam in 1usize..3,
        alpha_pct in 0u32..=100,
    ) {
        let s = NodeId(s % graph.node_count() as u32);
        let t = NodeId(t % graph.node_count() as u32);
        let kws: Vec<KeywordId> = kws.into_iter().map(KeywordId).collect();
        let query = KorQuery::new(&graph, s, t, kws, delta).unwrap();
        let engine = KorEngine::new(&graph);
        let params = GreedyParams {
            alpha: alpha_pct as f64 / 100.0,
            beam_width: beam,
            mode: GreedyMode::KeywordsFirst,
        };
        if let Some(r) = engine.greedy(&query, &params).unwrap() {
            prop_assert_eq!(r.route.source(), Some(s));
            prop_assert_eq!(r.route.target(), Some(t));
            let (os, bs) = r.route.scores(&graph).unwrap();
            prop_assert!((os - r.objective).abs() < 1e-9);
            prop_assert!((bs - r.budget).abs() < 1e-9);
        }
    }

    #[test]
    fn inverted_indexes_agree(graph in arb_graph(12)) {
        let mem = InvertedIndex::build(&graph);
        let dir = std::env::temp_dir().join("kor-proptest");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("idx-{}.bin", std::process::id()));
        let disk = DiskInvertedIndex::build(&graph, &path).unwrap();
        for (kw, postings) in mem.iter() {
            let term = graph.vocab().resolve(kw).unwrap();
            prop_assert_eq!(disk.postings(term).unwrap().unwrap(), postings.to_vec());
        }
        prop_assert_eq!(disk.term_count() as usize, mem.term_count());
    }

    #[test]
    fn graph_io_round_trips(graph in arb_graph(12)) {
        let text = kor::data::graph_to_string(&graph);
        let back = kor::data::graph_from_str(&text).unwrap();
        prop_assert_eq!(back.node_count(), graph.node_count());
        prop_assert_eq!(back.edge_count(), graph.edge_count());
        for v in graph.nodes() {
            let a: Vec<(u32, u64, u64)> = graph.out_edges(v)
                .map(|e| (e.node.0, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            let b: Vec<(u32, u64, u64)> = back.out_edges(v)
                .map(|e| (e.node.0, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            prop_assert_eq!(a, b);
        }
    }
}
