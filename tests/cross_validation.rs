//! Cross-validation of all algorithms on generated datasets: every
//! algorithm must agree on feasibility, respect its approximation bound
//! against the exact baseline, and return verifiable routes.

use kor::prelude::*;

fn road() -> Graph {
    generate_roadnet(&RoadNetConfig {
        nodes: 150,
        area_km: 12.0,
        vocab_size: 60,
        seed: 99,
        ..RoadNetConfig::small()
    })
}

fn queries(
    graph: &Graph,
    engine: &KorEngine<&Graph>,
    m: usize,
    n: usize,
    seed: u64,
) -> Vec<KorQuery> {
    let workload = generate_workload(
        graph,
        engine.index(),
        &WorkloadConfig {
            keyword_counts: vec![m],
            queries_per_set: n,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed,
        },
    );
    workload[0]
        .queries
        .iter()
        .map(|s| KorQuery::new(graph, s.source, s.target, s.keywords.clone(), 25.0).unwrap())
        .collect()
}

#[test]
fn approximations_respect_bounds_on_road_network() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    let eps = 0.5;
    let beta = 1.2;
    let mut feasible = 0;
    for query in queries(&graph, &engine, 3, 12, 1) {
        let exact = engine.exact(&query).unwrap();
        let os = engine
            .os_scaling(&query, &OsScalingParams::with_epsilon(eps))
            .unwrap();
        let bb = engine
            .bucket_bound(&query, &BucketBoundParams::with(eps, beta))
            .unwrap();
        match &exact.route {
            None => {
                assert!(os.route.is_none(), "OSScaling must agree on infeasibility");
                assert!(
                    bb.route.is_none(),
                    "BucketBound must agree on infeasibility"
                );
            }
            Some(opt) => {
                feasible += 1;
                let os_r = os.route.expect("OSScaling must find a feasible route");
                let bb_r = bb.route.expect("BucketBound must find a feasible route");
                assert!(
                    os_r.objective <= opt.objective / (1.0 - eps) + 1e-9,
                    "Theorem 2 violated: {} > {}",
                    os_r.objective,
                    opt.objective / (1.0 - eps)
                );
                assert!(
                    bb_r.objective <= opt.objective * beta / (1.0 - eps) + 1e-9,
                    "Theorem 3 violated: {} > {}",
                    bb_r.objective,
                    opt.objective * beta / (1.0 - eps)
                );
                for r in [&os_r, &bb_r] {
                    let (ros, rbs) = r.route.scores(&graph).unwrap();
                    assert!((ros - r.objective).abs() < 1e-9);
                    assert!((rbs - r.budget).abs() < 1e-9);
                    assert!(r.budget <= query.budget + 1e-9);
                    assert!(r.route.covers(&graph, query.keywords.ids()));
                    assert_eq!(r.route.source(), Some(query.source));
                    assert_eq!(r.route.target(), Some(query.target));
                }
            }
        }
    }
    assert!(feasible >= 3, "workload too infeasible to be meaningful");
}

#[test]
fn os_scaling_matches_exact_at_tiny_epsilon() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    for query in queries(&graph, &engine, 2, 10, 2) {
        let exact = engine.exact(&query).unwrap();
        let tight = engine
            .os_scaling(&query, &OsScalingParams::with_epsilon(0.001))
            .unwrap();
        assert_eq!(
            exact.route.map(|r| (r.objective * 1e9).round()),
            tight.route.map(|r| (r.objective * 1e9).round()),
        );
    }
}

#[test]
fn optimization_strategies_never_change_feasibility() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    for query in queries(&graph, &engine, 3, 10, 3) {
        let with = engine
            .os_scaling(&query, &OsScalingParams::default())
            .unwrap();
        let without = engine
            .os_scaling(&query, &OsScalingParams::without_optimizations(0.5))
            .unwrap();
        assert_eq!(with.route.is_some(), without.route.is_some());
        if let (Some(a), Some(b)) = (&with.route, &without.route) {
            // Both satisfy the same bound; objectives may differ slightly
            // because Opt1 jump labels can find different representatives,
            // but never beyond the approximation bound of each other.
            let exact = engine.exact(&query).unwrap().route.unwrap();
            for r in [a, b] {
                assert!(r.objective <= exact.objective / 0.5 + 1e-9);
            }
        }
    }
}

#[test]
fn greedy_routes_are_always_valid_routes() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    for query in queries(&graph, &engine, 3, 15, 4) {
        for beam in [1, 2] {
            for mode in [GreedyMode::KeywordsFirst, GreedyMode::BudgetFirst] {
                let params = GreedyParams {
                    alpha: 0.5,
                    beam_width: beam,
                    mode,
                };
                if let Some(r) = engine.greedy(&query, &params).unwrap() {
                    let (os, bs) = r.route.scores(&graph).unwrap();
                    assert!((os - r.objective).abs() < 1e-9);
                    assert!((bs - r.budget).abs() < 1e-9);
                    assert_eq!(r.route.source(), Some(query.source));
                    assert_eq!(r.route.target(), Some(query.target));
                    assert_eq!(
                        r.covers_keywords,
                        r.route.covers(&graph, query.keywords.ids())
                    );
                    if mode == GreedyMode::BudgetFirst {
                        assert!(r.within_budget);
                    }
                }
            }
        }
    }
}

#[test]
fn greedy_feasible_routes_never_beat_exact() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    for query in queries(&graph, &engine, 2, 10, 5) {
        let exact = engine.exact(&query).unwrap();
        if let Some(gr) = engine.greedy(&query, &GreedyParams::default()).unwrap() {
            if gr.is_feasible() {
                let opt = exact.route.expect("greedy feasible ⇒ feasible exists");
                assert!(gr.objective >= opt.objective - 1e-9);
            }
        }
    }
}

#[test]
fn top_k_prefix_consistency() {
    // The best route of a top-k result equals the single-route result.
    let graph = road();
    let engine = KorEngine::new(&graph);
    for query in queries(&graph, &engine, 2, 8, 6) {
        let single = engine
            .os_scaling(&query, &OsScalingParams::with_epsilon(0.2))
            .unwrap();
        let topk = engine
            .top_k_os_scaling(&query, &OsScalingParams::with_epsilon(0.2), 3)
            .unwrap();
        match (&single.route, topk.routes.first()) {
            (None, None) => {}
            (Some(a), Some(b)) => assert!((a.objective - b.objective).abs() < 1e-9),
            (a, b) => panic!("top-k disagreement: {a:?} vs {b:?}"),
        }
        // sorted and within budget
        for w in topk.routes.windows(2) {
            assert!(w[0].objective <= w[1].objective + 1e-12);
        }
        for r in &topk.routes {
            assert!(r.budget <= query.budget + 1e-9);
            assert!(r.route.covers(&graph, query.keywords.ids()));
        }
    }
}

#[test]
fn flickr_pipeline_supports_end_to_end_queries() {
    let (graph, _) = generate_flickr(&FlickrConfig::small());
    let engine = KorEngine::new(&graph);
    let workload = generate_workload(
        &graph,
        engine.index(),
        &WorkloadConfig {
            keyword_counts: vec![2, 4],
            queries_per_set: 5,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed: 8,
        },
    );
    let mut any_feasible = false;
    for set in &workload {
        for spec in &set.queries {
            let query = KorQuery::new(
                &graph,
                spec.source,
                spec.target,
                spec.keywords.clone(),
                10.0,
            )
            .unwrap();
            let os = engine
                .os_scaling(&query, &OsScalingParams::default())
                .unwrap();
            let bb = engine
                .bucket_bound(&query, &BucketBoundParams::default())
                .unwrap();
            assert_eq!(os.route.is_some(), bb.route.is_some());
            if let Some(r) = os.route {
                any_feasible = true;
                assert!(r.route.covers(&graph, query.keywords.ids()));
                assert!(r.budget <= 10.0 + 1e-9);
            }
        }
    }
    assert!(
        any_feasible,
        "Flickr-like workload should have feasible queries"
    );
}

#[test]
fn disk_index_agrees_with_memory_on_generated_graph() {
    let graph = road();
    let mem = InvertedIndex::build(&graph);
    let dir = std::env::temp_dir().join("kor-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let disk = DiskInvertedIndex::build(&graph, &dir.join("road.idx")).unwrap();
    assert_eq!(disk.term_count() as usize, mem.term_count());
    for (kw, postings) in mem.iter() {
        let term = graph.vocab().resolve(kw).unwrap();
        assert_eq!(disk.postings(term).unwrap().unwrap(), postings);
    }
}

#[test]
fn graph_io_round_trip_preserves_query_answers() {
    let graph = road();
    let engine = KorEngine::new(&graph);
    let text = kor::data::graph_to_string(&graph);
    let reloaded = kor::data::graph_from_str(&text).unwrap();
    let engine2 = KorEngine::new(&reloaded);
    for query in queries(&graph, &engine, 2, 5, 7) {
        // Rebuild the query against the reloaded graph's vocabulary.
        let terms: Vec<&str> = query
            .keywords
            .ids()
            .iter()
            .map(|&k| graph.vocab().resolve(k).unwrap())
            .collect();
        let q2 = KorQuery::from_terms(&reloaded, query.source, query.target, terms, query.budget)
            .unwrap();
        let a = engine
            .os_scaling(&query, &OsScalingParams::default())
            .unwrap();
        let b = engine2
            .os_scaling(&q2, &OsScalingParams::default())
            .unwrap();
        assert_eq!(
            a.route.map(|r| (r.objective * 1e9).round()),
            b.route.map(|r| (r.objective * 1e9).round())
        );
    }
}

#[test]
fn partitioned_preprocessing_matches_dense_on_road_network() {
    // The paper's §6 future work: partition-based pre-processing must
    // produce the same τ/σ scores as the dense matrices.
    let graph = generate_roadnet(&RoadNetConfig {
        nodes: 120,
        area_km: 10.0,
        vocab_size: 50,
        seed: 21,
        ..RoadNetConfig::small()
    });
    let dense = DenseApsp::by_dijkstra(&graph);
    let part = PartitionedApsp::build(&graph, &PartitionConfig::auto(&graph));
    assert!(part.stored_entries() < 2 * graph.node_count() * graph.node_count());
    for i in graph.nodes() {
        for j in graph.nodes() {
            match (dense.tau(i, j), part.tau_cost(i, j)) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert!((d.objective - p.objective).abs() < 1e-9, "{i}->{j}");
                }
                (d, p) => panic!("{i}->{j}: dense {d:?} vs partitioned {p:?}"),
            }
            match (dense.sigma(i, j), part.sigma_cost(i, j)) {
                (None, None) => {}
                (Some(d), Some(p)) => {
                    assert!((d.budget - p.budget).abs() < 1e-9, "{i}->{j}");
                }
                (d, p) => panic!("{i}->{j}: dense {d:?} vs partitioned {p:?}"),
            }
        }
    }
}
