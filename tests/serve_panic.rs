//! Per-request panic isolation over real sockets, in both I/O modes.
//!
//! The `serve-request` fault point injects a panic into the handler for
//! exactly one request. The contract: the poisoned request gets a
//! structured `internal_error` response with its id preserved, the SAME
//! connection keeps answering (no dropped socket, no dead worker), and
//! `stats.server.panics` counts the event.
//!
//! The fault-point registry is process-global, so this battery lives in
//! its own integration-test binary (own process) and runs both I/O
//! modes inside one `#[test]` — each armed spec fires exactly once, and
//! the second mode arms its own.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use kor::json::JsonValue;
use kor::serve::registry::Dataset;
use kor::serve::{IoMode, ServeConfig, Server, ServerHandle};

fn start_server(io: IoMode) -> (SocketAddr, ServerHandle) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        io,
        queue_capacity: 64,
        ..ServeConfig::default()
    })
    .expect("bind");
    server
        .registry()
        .insert(Dataset::from_graph("fig1", kor::graph::fixtures::figure1()));
    let addr = server.local_addr();
    (addr, server.start())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (conn, reader)
}

fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> JsonValue {
    conn.write_all(line.as_bytes()).unwrap();
    conn.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(resp.ends_with('\n'), "response must be a full line");
    JsonValue::parse(resp.trim_end()).expect("response is valid JSON")
}

fn panic_battery(io: IoMode) {
    let (addr, handle) = start_server(io);
    let (mut conn, mut reader) = connect(addr);

    // Arm a one-shot panic for the NEXT handled request, then pipeline
    // three requests in one write: the poisoned one and two healthy
    // neighbors. All three must be answered, in order, on this one
    // connection — the panic costs exactly one response.
    kor::data::faultpoint::arm("serve-request:panic").expect("arm fault point");
    let query = r#"{"id":"victim","method":"query","params":{"dataset":"fig1","from":0,"to":7,"keywords":["t1","t2"],"budget":10,"algo":"os-scaling"}}"#;
    let health = r#"{"id":"alive","method":"health"}"#;
    conn.write_all(format!("{query}\n{health}\n{health}\n").as_bytes())
        .unwrap();
    let poisoned = {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("poisoned response");
        JsonValue::parse(resp.trim_end()).expect("valid JSON")
    };
    assert_eq!(
        poisoned.get("ok").and_then(JsonValue::as_bool),
        Some(false),
        "{io:?}: poisoned request must fail structurally: {poisoned:?}"
    );
    assert_eq!(
        poisoned.get("id").and_then(JsonValue::as_str),
        Some("victim"),
        "{io:?}: the id survives the panic"
    );
    assert_eq!(
        poisoned
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(JsonValue::as_str),
        Some("internal_error"),
        "{io:?}: {poisoned:?}"
    );

    for _ in 0..2 {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("pipelined neighbor");
        let v = JsonValue::parse(resp.trim_end()).unwrap();
        assert_eq!(
            v.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "{io:?}: the connection must survive the panic: {v:?}"
        );
        assert_eq!(v.get("id").and_then(JsonValue::as_str), Some("alive"));
    }

    // The same query succeeds now that the fault point is spent, and
    // the panic counter recorded exactly one event.
    let retried = roundtrip(&mut conn, &mut reader, query);
    assert_eq!(retried.get("ok").and_then(JsonValue::as_bool), Some(true));
    let stats = roundtrip(&mut conn, &mut reader, r#"{"id":"s","method":"stats"}"#);
    assert_eq!(
        stats
            .get("result")
            .and_then(|r| r.get("server"))
            .and_then(|s| s.get("panics"))
            .and_then(JsonValue::as_u64),
        Some(1),
        "{io:?}: {stats:?}"
    );

    drop(conn);
    handle.shutdown();
}

#[test]
fn a_panicking_request_costs_one_response_not_the_connection() {
    panic_battery(IoMode::Event);
    panic_battery(IoMode::Blocking);
}
