//! End-to-end smoke test for the `kor batch` subcommand: generate a tiny
//! Flickr-like dataset with the CLI, run a batch over it, and check that
//! the JSON summary actually parses and carries sane numbers.
//!
//! Validation uses the strict RFC 8259 parser in [`kor::json`] (the
//! same module the `kor serve` wire protocol is built on), so the
//! summary is genuinely parsed rather than grepped for substrings.

use std::path::PathBuf;
use std::process::Command;

use kor::json::JsonValue;

fn num(v: &JsonValue, key: &str) -> f64 {
    match v.get(key) {
        Some(JsonValue::Num(n)) => *n,
        other => panic!("expected number at {key:?}, got {other:?}"),
    }
}

fn kor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kor"))
        .args(args)
        .output()
        .expect("spawn kor binary")
}

#[test]
fn batch_subcommand_end_to_end() {
    let dir = std::env::temp_dir().join(format!("kor-batch-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph: PathBuf = dir.join("tiny.korg");
    let summary: PathBuf = dir.join("summary.json");

    let gen = kor(&[
        "generate",
        "flickr",
        "--small",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(
        gen.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let run = kor(&[
        "batch",
        graph.to_str().unwrap(),
        "--budget",
        "20",
        "--keywords",
        "1,2",
        "--per-set",
        "8",
        "--threads",
        "2",
        "--seed",
        "3",
        "--quiet",
        "--json-out",
        summary.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    // The JSON summary is both written to --json-out and printed as the
    // last stdout line; both must parse to the same tree.
    let from_file = std::fs::read_to_string(&summary).unwrap();
    let parsed = JsonValue::parse(&from_file).expect("summary JSON must parse");
    let stdout = String::from_utf8_lossy(&run.stdout);
    let last_line = stdout.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
    assert_eq!(JsonValue::parse(last_line.trim()).unwrap(), parsed);

    assert_eq!(
        parsed.get("algo"),
        Some(&JsonValue::Str("bucket-bound".into()))
    );
    assert_eq!(num(&parsed, "queries"), 16.0);
    assert_eq!(num(&parsed, "threads"), 2.0);
    assert_eq!(num(&parsed, "errors"), 0.0);
    assert!(
        num(&parsed, "feasible") >= 1.0,
        "expected some feasible routes"
    );
    assert!(num(&parsed, "wall_ms") > 0.0);
    assert!(num(&parsed, "throughput_qps") > 0.0);

    let latency = parsed.get("latency_us").expect("latency_us present");
    for key in ["min", "mean", "p50", "p95", "p99", "max"] {
        assert!(num(latency, key) > 0.0, "latency {key} must be positive");
    }
    assert!(num(latency, "min") <= num(latency, "p50"));
    assert!(num(latency, "p50") <= num(latency, "max"));

    let Some(JsonValue::Arr(sets)) = parsed.get("per_set") else {
        panic!("per_set must be an array");
    };
    assert_eq!(sets.len(), 2);
    let counts: Vec<f64> = sets.iter().map(|s| num(s, "keywords")).collect();
    assert_eq!(counts, vec![1.0, 2.0]);
    assert_eq!(
        sets.iter()
            .map(|s| num(s, "queries") as usize)
            .sum::<usize>(),
        16
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_parser_rejects_malformed_input() {
    for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
        assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
    }
    // And accepts the shapes the summary uses.
    let ok = r#"{"a":"x\"y","b":[1,2.5,null],"c":{"d":true}}"#;
    assert!(JsonValue::parse(ok).is_ok());
}
