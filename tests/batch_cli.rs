//! End-to-end smoke test for the `kor batch` subcommand: generate a tiny
//! Flickr-like dataset with the CLI, run a batch over it, and check that
//! the JSON summary actually parses and carries sane numbers.
//!
//! The environment vendors no `serde_json`, so the test includes a small
//! strict RFC 8259 parser — enough to genuinely validate the summary
//! rather than grepping for substrings.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;

/// Minimal JSON value tree.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(Json::Num(n)) => *n,
            other => panic!("expected number at {key:?}, got {other:?}"),
        }
    }
}

/// Strict recursive-descent JSON parser over the full input.
fn parse_json(text: &str) -> Result<Json, String> {
    let bytes: Vec<char> = text.chars().collect();
    let mut at = 0usize;
    let value = parse_value(&bytes, &mut at)?;
    skip_ws(&bytes, &mut at);
    if at != bytes.len() {
        return Err(format!("trailing garbage at char {at}"));
    }
    Ok(value)
}

fn skip_ws(b: &[char], at: &mut usize) {
    while *at < b.len() && matches!(b[*at], ' ' | '\t' | '\n' | '\r') {
        *at += 1;
    }
}

fn expect(b: &[char], at: &mut usize, c: char) -> Result<(), String> {
    skip_ws(b, at);
    if b.get(*at) == Some(&c) {
        *at += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {c:?} at char {at}, found {:?}",
            b.get(*at)
        ))
    }
}

fn parse_value(b: &[char], at: &mut usize) -> Result<Json, String> {
    skip_ws(b, at);
    match b.get(*at) {
        Some('{') => parse_object(b, at),
        Some('[') => parse_array(b, at),
        Some('"') => Ok(Json::Str(parse_string(b, at)?)),
        Some('t') => parse_literal(b, at, "true", Json::Bool(true)),
        Some('f') => parse_literal(b, at, "false", Json::Bool(false)),
        Some('n') => parse_literal(b, at, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => parse_number(b, at),
        other => Err(format!("unexpected {other:?} at char {at}")),
    }
}

fn parse_literal(b: &[char], at: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    for c in lit.chars() {
        if b.get(*at) != Some(&c) {
            return Err(format!("bad literal at char {at}"));
        }
        *at += 1;
    }
    Ok(v)
}

fn parse_number(b: &[char], at: &mut usize) -> Result<Json, String> {
    let start = *at;
    while *at < b.len() && matches!(b[*at], '-' | '+' | '.' | 'e' | 'E' | '0'..='9') {
        *at += 1;
    }
    let s: String = b[start..*at].iter().collect();
    s.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {s:?} at char {start}"))
}

fn parse_string(b: &[char], at: &mut usize) -> Result<String, String> {
    expect(b, at, '"')?;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".into()),
            Some('"') => {
                *at += 1;
                return Ok(out);
            }
            Some('\\') => {
                *at += 1;
                match b.get(*at) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = b
                            .get(*at + 1..*at + 5)
                            .ok_or("truncated \\u escape")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *at += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *at += 1;
            }
            Some(&c) => {
                out.push(c);
                *at += 1;
            }
        }
    }
}

fn parse_array(b: &[char], at: &mut usize) -> Result<Json, String> {
    expect(b, at, '[')?;
    let mut items = Vec::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&']') {
        *at += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(',') => *at += 1,
            Some(']') => {
                *at += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected , or ] at char {at}, found {other:?}")),
        }
    }
}

fn parse_object(b: &[char], at: &mut usize) -> Result<Json, String> {
    expect(b, at, '{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, at);
    if b.get(*at) == Some(&'}') {
        *at += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, at);
        let key = parse_string(b, at)?;
        expect(b, at, ':')?;
        map.insert(key, parse_value(b, at)?);
        skip_ws(b, at);
        match b.get(*at) {
            Some(',') => *at += 1,
            Some('}') => {
                *at += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected , or }} at char {at}, found {other:?}")),
        }
    }
}

fn kor(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_kor"))
        .args(args)
        .output()
        .expect("spawn kor binary")
}

#[test]
fn batch_subcommand_end_to_end() {
    let dir = std::env::temp_dir().join(format!("kor-batch-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph: PathBuf = dir.join("tiny.korg");
    let summary: PathBuf = dir.join("summary.json");

    let gen = kor(&[
        "generate",
        "flickr",
        "--small",
        "--seed",
        "7",
        "--out",
        graph.to_str().unwrap(),
    ]);
    assert!(
        gen.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&gen.stderr)
    );

    let run = kor(&[
        "batch",
        graph.to_str().unwrap(),
        "--budget",
        "20",
        "--keywords",
        "1,2",
        "--per-set",
        "8",
        "--threads",
        "2",
        "--seed",
        "3",
        "--quiet",
        "--json-out",
        summary.to_str().unwrap(),
    ]);
    assert!(
        run.status.success(),
        "batch failed: {}",
        String::from_utf8_lossy(&run.stderr)
    );

    // The JSON summary is both written to --json-out and printed as the
    // last stdout line; both must parse to the same tree.
    let from_file = std::fs::read_to_string(&summary).unwrap();
    let parsed = parse_json(&from_file).expect("summary JSON must parse");
    let stdout = String::from_utf8_lossy(&run.stdout);
    let last_line = stdout.lines().rev().find(|l| !l.trim().is_empty()).unwrap();
    assert_eq!(parse_json(last_line.trim()).unwrap(), parsed);

    assert_eq!(parsed.get("algo"), Some(&Json::Str("bucket-bound".into())));
    assert_eq!(parsed.num("queries"), 16.0);
    assert_eq!(parsed.num("threads"), 2.0);
    assert_eq!(parsed.num("errors"), 0.0);
    assert!(
        parsed.num("feasible") >= 1.0,
        "expected some feasible routes"
    );
    assert!(parsed.num("wall_ms") > 0.0);
    assert!(parsed.num("throughput_qps") > 0.0);

    let latency = parsed.get("latency_us").expect("latency_us present");
    for key in ["min", "mean", "p50", "p95", "p99", "max"] {
        assert!(latency.num(key) > 0.0, "latency {key} must be positive");
    }
    assert!(latency.num("min") <= latency.num("p50"));
    assert!(latency.num("p50") <= latency.num("max"));

    let Some(Json::Arr(sets)) = parsed.get("per_set") else {
        panic!("per_set must be an array");
    };
    assert_eq!(sets.len(), 2);
    let counts: Vec<f64> = sets.iter().map(|s| s.num("keywords")).collect();
    assert_eq!(counts, vec![1.0, 2.0]);
    assert_eq!(
        sets.iter()
            .map(|s| s.num("queries") as usize)
            .sum::<usize>(),
        16
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_parser_rejects_malformed_input() {
    for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "\"unterminated"] {
        assert!(parse_json(bad).is_err(), "{bad:?} should not parse");
    }
    // And accepts the shapes the summary uses.
    let ok = r#"{"a":"x\"y","b":[1,2.5,null],"c":{"d":true}}"#;
    assert!(parse_json(ok).is_ok());
}
