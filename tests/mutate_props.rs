//! Property sweep over the incremental invalidation machinery.
//!
//! Random *directed* layered graphs (edges only flow forward, so
//! backward reachability is genuinely partial — unlike the strongly
//! connected gen worlds) are warmed, mutated, and checked against the
//! two properties the stamps must satisfy:
//!
//! * **soundness** — every cached backward tree whose stamp contains a
//!   changed edge head is evicted; a query to an evicted target
//!   rebuilds its trees (`trees_built` grows) and answers exactly like
//!   a cold engine;
//! * **minimality** — the eviction is *exactly* the reachability
//!   predicate, no collateral damage: entries whose stamp avoids every
//!   changed head survive, and a query to a surviving target is a pure
//!   cache hit (`trees_built` unchanged).
//!
//! The expected eviction set is computed independently of the stamps,
//! by asking each cached target's own `QueryContext` whether any
//! changed head reaches it. The sweep also pins the typed rejection
//! contract: closing a nonexistent edge, zero/negative/non-finite
//! multipliers, duplicate pairs, and reopening a live edge each map to
//! their own `MutationError` variant and leave the engine untouched.

use std::sync::Arc;

use kor::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded random layered DAG: `layers × width` nodes, edges only from
/// layer i to i+1 (plus a few skips), one keyword per node from a tiny
/// vocab. Directed on purpose: reachability must be partial for
/// retention to be observable.
fn layered_dag(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let layers = 4 + (seed as usize % 3); // 4..=6
    let width = 3 + (seed as usize % 2); // 3..=4
    let mut builder = GraphBuilder::new();
    let mut grid: Vec<Vec<NodeId>> = Vec::new();
    for _ in 0..layers {
        let mut layer = Vec::new();
        for _ in 0..width {
            let tag = format!("t{}", rng.gen_range(0u32..6));
            layer.push(builder.add_node([tag.as_str()]));
        }
        grid.push(layer);
    }
    for i in 0..layers - 1 {
        for &u in &grid[i] {
            // Every node gets 1-2 forward edges so no layer dead-ends.
            let fanout = rng.gen_range(1usize..=2);
            for _ in 0..fanout {
                let w = grid[i + 1][rng.gen_range(0..width)];
                let objective = rng.gen_range(1.0..4.0);
                let budget = rng.gen_range(1.0..4.0);
                // Duplicate picks are fine: add_edge rejects them, skip.
                let _ = builder.add_edge(u, w, objective, budget);
            }
        }
        // A couple of layer-skipping edges for path diversity.
        if i + 2 < layers {
            let u = grid[i][rng.gen_range(0..width)];
            let w = grid[i + 2][rng.gen_range(0..width)];
            let _ = builder.add_edge(u, w, rng.gen_range(1.0..4.0), rng.gen_range(2.0..6.0));
        }
    }
    builder.build().expect("layered DAG is a valid graph")
}

/// Every (from, to) edge pair of the graph.
fn edge_pairs(graph: &Graph) -> Vec<(NodeId, NodeId)> {
    graph
        .nodes()
        .flat_map(|u| graph.out_edges(u).map(move |e| (u, e.node)))
        .collect()
}

#[test]
fn eviction_is_exactly_the_reachability_predicate() {
    let mut retained_total = 0usize;
    let mut evicted_total = 0usize;
    for seed in 0..12u64 {
        let graph = Arc::new(layered_dag(seed));
        let engine = KorEngine::new(Arc::clone(&graph));
        let mut rng = StdRng::seed_from_u64(0xFEED ^ seed);

        // Warm a context for every node that has an in-edge (others are
        // unreachable targets and would cache nothing useful).
        for t in graph.nodes() {
            let (_, _) = engine.preprocess_cache().context(graph.as_ref(), t);
        }
        let cached = engine.preprocess_cache().cached_context_targets();
        assert!(!cached.is_empty());

        // Pick a mutation batch: one scale + one close on random edges.
        let pairs = edge_pairs(&graph);
        let scale_at = rng.gen_range(0..pairs.len());
        let mut close_at = rng.gen_range(0..pairs.len());
        while close_at == scale_at {
            close_at = rng.gen_range(0..pairs.len());
        }
        let batch = [
            EdgeMutation::scale(pairs[scale_at].0, pairs[scale_at].1, 1.3, 1.1),
            EdgeMutation::close(pairs[close_at].0, pairs[close_at].1),
        ];
        let heads = [pairs[scale_at].1, pairs[close_at].1];

        // Expected eviction set, computed from each target's own
        // context — independently of the stamp implementation.
        let expected_evicted: Vec<NodeId> = cached
            .iter()
            .copied()
            .filter(|&t| {
                let (ctx, _) = engine.preprocess_cache().context(graph.as_ref(), t);
                heads
                    .iter()
                    .any(|&h| ctx.reaches_target(h) || ctx.sigma_to_target(h).is_some() || h == t)
            })
            .collect();

        let (mutated, report) = engine.apply_edge_mutations(&batch).expect("valid batch");
        assert_eq!(
            report.contexts_evicted,
            expected_evicted.len(),
            "seed {seed}: eviction must equal the reachability predicate"
        );
        assert_eq!(
            report.contexts_retained,
            cached.len() - expected_evicted.len(),
            "seed {seed}: retention must be the complement"
        );
        retained_total += report.contexts_retained;
        evicted_total += report.contexts_evicted;

        // Soundness and minimality through the stats counters: querying
        // a survivor is a pure hit, querying an evicted target rebuilds.
        for &t in &cached {
            let before = mutated.preprocess_cache().stats().trees_built;
            let (_, hit) = mutated.preprocess_cache().context(mutated.graph(), t);
            let after = mutated.preprocess_cache().stats().trees_built;
            if expected_evicted.contains(&t) {
                assert!(!hit, "seed {seed}: stale context for {t} survived");
                assert!(after > before, "seed {seed}: eviction without rebuild");
            } else {
                assert!(hit, "seed {seed}: retained context for {t} was lost");
                assert_eq!(after, before, "seed {seed}: retained context rebuilt");
            }
        }
    }
    // The sweep must observe both outcomes or the predicate check was
    // one-sided.
    assert!(retained_total > 0, "no context ever survived a mutation");
    assert!(evicted_total > 0, "no context was ever evicted");
    eprintln!("mutate props: {retained_total} retained, {evicted_total} evicted across 12 seeds");
}

#[test]
fn warm_answers_match_cold_across_random_mutation_sequences() {
    for seed in 0..8u64 {
        let graph = Arc::new(layered_dag(seed));
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let mut engine = KorEngine::new(Arc::clone(&graph));

        // Random feasible-looking queries: first-layer sources, any
        // later node as target, one keyword the target actually has.
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let queries: Vec<(NodeId, NodeId, f64)> = (0..6)
            .map(|_| {
                let s = nodes[rng.gen_range(0..nodes.len() / 2)];
                let t = nodes[rng.gen_range(nodes.len() / 2..nodes.len())];
                (s, t, rng.gen_range(5.0..25.0))
            })
            .collect();
        let run_all = |e: &KorEngine<Arc<Graph>>| -> Vec<Option<(Vec<u32>, u64, u64)>> {
            queries
                .iter()
                .map(|&(s, t, b)| {
                    let q = KorQuery::new(e.graph(), s, t, Vec::new(), b).expect("endpoints exist");
                    e.os_scaling(&q, &OsScalingParams::with_epsilon(0.5))
                        .unwrap()
                        .route
                        .map(|r| {
                            (
                                r.route.nodes().iter().map(|n| n.0).collect(),
                                r.objective.to_bits(),
                                r.budget.to_bits(),
                            )
                        })
                })
                .collect()
        };

        for step in 0..4 {
            let _ = run_all(&engine); // keep the caches warm
            let pairs = edge_pairs(engine.graph());
            let (u, w) = pairs[rng.gen_range(0..pairs.len())];
            let batch = if rng.gen_bool(0.5) {
                vec![EdgeMutation::scale(u, w, 1.0, rng.gen_range(1.1..2.0))]
            } else {
                vec![EdgeMutation::close(u, w)]
            };
            let (next, _) = engine.apply_edge_mutations(&batch).expect("valid batch");
            engine = next;
            let cold = KorEngine::new(Arc::new(engine.graph().clone()));
            assert_eq!(
                run_all(&engine),
                run_all(&cold),
                "seed {seed} step {step}: warm diverged from cold"
            );
        }
    }
}

#[test]
fn invalid_mutations_are_typed_errors_and_leave_the_engine_alone() {
    let graph = Arc::new(layered_dag(1));
    let engine = KorEngine::new(Arc::clone(&graph));
    let pairs = edge_pairs(&graph);
    let (u, w) = pairs[0];
    // A pair with no edge: reverse of an existing one (the DAG never
    // has back edges).
    let expect_err = |batch: &[EdgeMutation]| match engine.apply_edge_mutations(batch) {
        Ok(_) => panic!("batch {batch:?} must be rejected"),
        Err(e) => e,
    };

    match expect_err(&[EdgeMutation::close(w, u)]) {
        MutationError::UnknownEdge { from, to } => {
            assert_eq!((from, to), (w, u));
        }
        other => panic!("expected UnknownEdge, got {other}"),
    }
    match expect_err(&[EdgeMutation::scale(u, w, 1.0, 0.0)]) {
        MutationError::InvalidMultiplier {
            attribute, value, ..
        } => {
            assert_eq!(attribute, "budget");
            assert_eq!(value, 0.0);
        }
        other => panic!("expected InvalidMultiplier, got {other}"),
    }
    match expect_err(&[EdgeMutation::scale(u, w, f64::NAN, 1.0)]) {
        MutationError::InvalidMultiplier { attribute, .. } => assert_eq!(attribute, "objective"),
        other => panic!("expected InvalidMultiplier, got {other}"),
    }
    match expect_err(&[EdgeMutation::reopen(u, w, 1.0, 1.0)]) {
        MutationError::EdgeExists { from, to } => assert_eq!((from, to), (u, w)),
        other => panic!("expected EdgeExists, got {other}"),
    }
    match expect_err(&[
        EdgeMutation::close(u, w),
        EdgeMutation::scale(u, w, 1.0, 1.5),
    ]) {
        MutationError::DuplicateMutation { from, to } => assert_eq!((from, to), (u, w)),
        other => panic!("expected DuplicateMutation, got {other}"),
    }
    let far = NodeId(graph.node_count() as u32);
    match expect_err(&[EdgeMutation::close(far, u)]) {
        MutationError::UnknownNode(n) => assert_eq!(n, far),
        other => panic!("expected UnknownNode, got {other}"),
    }

    // Rejected batches are atomic: the engine still answers on the
    // original graph at epoch 0 with its caches intact.
    assert_eq!(engine.graph().epoch(), 0);
    assert_eq!(engine.graph().edge_count(), graph.edge_count());
}
