//! Golden tests pinning the implementation to the paper's worked
//! examples, end to end through the facade crate.

use kor::graph::fixtures::{figure1, t, v};
use kor::prelude::*;

#[test]
fn preprocessing_section_3_1() {
    // "for the pair (v0, v7): τ0,7 = ⟨v0,v3,v4,v7⟩ with OS 4 and BS 7,
    //  σ0,7 = ⟨v0,v3,v5,v7⟩ with OS 9 and BS 5."
    let graph = figure1();
    let apsp = DenseApsp::floyd_warshall(&graph);
    let tau = apsp.tau(v(0), v(7)).unwrap();
    assert_eq!((tau.objective, tau.budget), (4.0, 7.0));
    assert_eq!(
        apsp.tau_path(v(0), v(7)).unwrap(),
        vec![v(0), v(3), v(4), v(7)]
    );
    let sigma = apsp.sigma(v(0), v(7)).unwrap();
    assert_eq!((sigma.objective, sigma.budget), (9.0, 5.0));
    assert_eq!(
        apsp.sigma_path(v(0), v(7)).unwrap(),
        vec![v(0), v(3), v(5), v(7)]
    );
}

#[test]
fn example2_full_trace() {
    // Q = ⟨v0, v7, {t1, t2}, 10⟩ with ε = 0.5 returns R1 = ⟨v0,v2,v3,v4,v7⟩
    // (OS 6, BS 10); the worse R2 = ⟨v0,v3,v5,v4,v7⟩ (OS 8, BS 8) loses.
    let graph = figure1();
    let engine = KorEngine::new(&graph);
    let query = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
    let result = engine
        .os_scaling(&query, &OsScalingParams::default())
        .unwrap();
    let route = result.route.expect("feasible");
    assert_eq!(route.route.nodes(), &[v(0), v(2), v(3), v(4), v(7)]);
    assert_eq!(route.objective, 6.0);
    assert_eq!(route.budget, 10.0);

    // R2 is feasible but strictly worse.
    let r2 = Route::new(vec![v(0), v(3), v(5), v(4), v(7)]);
    assert_eq!(r2.scores(&graph).unwrap(), (8.0, 8.0));
    assert!(r2.covers(&graph, &[t(1), t(2)]));
}

#[test]
fn example2_delta7_takes_direct_exit() {
    // The parenthetical in Example 2: with Δ = 7, R2 through v4 (BS 8)
    // stops being feasible; the algorithm extends via the edge (v5, v7)
    // instead, giving ⟨v0,v3,v5,v7⟩.
    let graph = figure1();
    let engine = KorEngine::new(&graph);
    let query = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2)], 7.0).unwrap();
    let result = engine.exact(&query).unwrap();
    let route = result.route.expect("feasible");
    assert_eq!(route.route.nodes(), &[v(0), v(3), v(5), v(7)]);
    assert_eq!(route.objective, 9.0);
    assert_eq!(route.budget, 5.0);
}

#[test]
fn definition4_delta6() {
    // Q = ⟨v0, v7, {t1, t2, t3}, 6⟩ ⇒ ⟨v0,v3,v5,v7⟩ with OS 9, BS 5.
    let graph = figure1();
    let engine = KorEngine::new(&graph);
    let query = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2), t(3)], 6.0).unwrap();
    for result in [
        engine.exact(&query).unwrap(),
        engine
            .os_scaling(&query, &OsScalingParams::default())
            .unwrap(),
        engine
            .brute_force(&query, &BruteForceParams::default())
            .unwrap(),
    ] {
        let route = result.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0), v(3), v(5), v(7)]);
        assert_eq!((route.objective, route.budget), (9.0, 5.0));
    }
}

#[test]
fn example1_label_scores() {
    // Example 1: Δ = 10, ε = 0.5 ⇒ θ = 1/20. R1 = ⟨v0,v2,v3,v4⟩ has label
    // (…, 100, 5, 7); R2 = ⟨v0,v2,v6,v5,v4⟩ has (…, 120, 6, 11).
    let graph = figure1();
    let scaler = kor::core::Scaler::new(&graph, 0.5, 10.0);
    assert!((scaler.theta() - 0.05).abs() < 1e-15);
    let r1 = Route::new(vec![v(0), v(2), v(3), v(4)]);
    let (os1, bs1) = r1.scores(&graph).unwrap();
    assert_eq!((scaler.scale(os1), os1, bs1), (100, 5.0, 7.0));
    let r2 = Route::new(vec![v(0), v(2), v(6), v(5), v(4)]);
    let (os2, bs2) = r2.scores(&graph).unwrap();
    assert_eq!((scaler.scale(os2), os2, bs2), (120, 6.0, 11.0));
    // And the coverage claimed in Example 1: {t1, t2, t4}.
    for r in [&r1, &r2] {
        assert!(r.covers(&graph, &[t(1), t(2), t(4)]));
        assert!(!r.covers(&graph, &[t(5)]));
    }
}

#[test]
fn theorem2_bound_on_every_fixture_query() {
    // OS(R_OS) ≤ OS(R_opt)/(1−ε) for all ε, over a grid of queries.
    let graph = figure1();
    let engine = KorEngine::new(&graph);
    for m in [
        vec![t(1)],
        vec![t(2)],
        vec![t(1), t(2)],
        vec![t(1), t(2), t(4)],
    ] {
        for delta in [5.0, 7.0, 9.0, 11.0, 15.0] {
            let query = KorQuery::new(&graph, v(0), v(7), m.clone(), delta).unwrap();
            let exact = engine.exact(&query).unwrap();
            for eps in [0.2, 0.5, 0.8] {
                let approx = engine
                    .os_scaling(&query, &OsScalingParams::with_epsilon(eps))
                    .unwrap();
                match (&exact.route, &approx.route) {
                    (None, None) => {}
                    (Some(opt), Some(found)) => {
                        assert!(found.objective <= opt.objective / (1.0 - eps) + 1e-9);
                    }
                    (a, b) => panic!("feasibility disagreement: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn np_hard_special_cases() {
    let graph = figure1();
    let engine = KorEngine::new(&graph);
    // Without keywords: the weight-constrained shortest path problem.
    let wcspp = KorQuery::new(&graph, v(0), v(7), vec![], 6.0).unwrap();
    let r = engine.exact(&wcspp).unwrap().route.unwrap();
    assert_eq!(r.route.nodes(), &[v(0), v(3), v(5), v(7)]);
    // With unlimited budget: generalized TSP flavour — pure objective.
    let gtsp = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2)], f64::MAX).unwrap();
    let r = engine.exact(&gtsp).unwrap().route.unwrap();
    assert_eq!(r.objective, 6.0);
}
