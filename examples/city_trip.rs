//! The paper's introduction scenario on a Flickr-like city graph:
//! "find the most popular route from my hotel and back that passes by a
//! shopping mall, a restaurant and a pub, within a travel budget" — plus
//! the §4.2.7 experiment, where shrinking Δ switches the answer to a
//! different (less popular but shorter) route.
//!
//! ```bash
//! cargo run --release --example city_trip
//! ```

use kor::prelude::*;

fn main() {
    // Synthetic New-York-like photo stream → location graph (the paper's
    // §4.1 pipeline; see kor-data docs and DESIGN.md §6).
    let (graph, stats) = generate_flickr(&FlickrConfig::small());
    println!(
        "Flickr-like city: {} photos → {} locations, {} edges, {} trips\n",
        stats.photos, stats.locations, stats.edges, stats.total_trips
    );

    let engine = KorEngine::new(&graph);

    // Pick endpoints like the paper's example (Dewitt Clinton Park →
    // United Nations Headquarters): two well-connected locations.
    let mut nodes: Vec<NodeId> = graph.nodes().collect();
    nodes.sort_by_key(|&n| std::cmp::Reverse(graph.out_degree(n) + graph.in_degree(n)));
    let source = nodes[0];
    let target = nodes[1];

    // The paper's §4.2.7 keywords are "jazz", "imax", "vegetation",
    // "cappuccino"; our tag model carries the same head terms.
    let wanted = ["jazz", "imax", "vegetation", "cappuccino"];
    let terms: Vec<&str> = wanted
        .iter()
        .copied()
        .filter(|term| graph.vocab().get(term).is_some())
        .collect();
    println!("From {source} to {target}, covering {terms:?}:\n");

    for delta in [9.0, 6.0] {
        let Ok(query) = KorQuery::from_terms(&graph, source, target, terms.clone(), delta) else {
            println!("Δ = {delta}: keywords missing from this dataset");
            continue;
        };
        let result = engine
            .os_scaling(&query, &OsScalingParams::default())
            .expect("valid parameters");
        match &result.route {
            Some(r) => {
                // Popularity of the route: OS = Σ ln(1/Pr) ⇒ the product
                // of edge probabilities is e^(−OS).
                println!(
                    "Δ = {delta} km: {} stops, {:.2} km, popularity score {:.3e} (OS {:.2})",
                    r.route.len(),
                    r.budget,
                    (-r.objective).exp(),
                    r.objective,
                );
                println!("    route: {}", r.route);
            }
            None => println!("Δ = {delta} km: no feasible route"),
        }
    }

    // Like Figures 20/21: the tighter budget must not yield a more
    // popular (lower-OS) route.
    println!("\nTighter budgets can only keep or worsen the best popularity —");
    println!("exactly the trade-off the KOR query lets users steer.");
}
