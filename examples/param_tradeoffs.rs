//! Accuracy-vs-speed trade-offs of the approximation parameters, on one
//! dataset: ε (OSScaling, Theorem 2), β (BucketBound, Theorem 3), and α /
//! beam width (Greedy). A miniature of the paper's Figures 6–13.
//!
//! ```bash
//! cargo run --release --example param_tradeoffs
//! ```

use std::time::Instant;

use kor::prelude::*;

fn main() {
    let (graph, _) = generate_flickr(&FlickrConfig::small());
    let engine = KorEngine::new(&graph);
    let workload = generate_workload(
        &graph,
        engine.index(),
        &WorkloadConfig {
            keyword_counts: vec![4],
            queries_per_set: 12,
            frequency_weighted: true,
            max_euclidean_km: Some(4.0),
            // common categories, like real map queries
            min_doc_fraction: 0.01,
            seed: 3,
        },
    );
    let delta = 8.0;
    let queries: Vec<KorQuery> = workload[0]
        .queries
        .iter()
        .filter_map(|s| KorQuery::new(&graph, s.source, s.target, s.keywords.clone(), delta).ok())
        .collect();

    // Reference: OSScaling with ε = 0.1 (the paper's accuracy baseline).
    let reference: Vec<Option<f64>> = queries
        .iter()
        .map(|q| {
            engine
                .os_scaling(q, &OsScalingParams::with_epsilon(0.1))
                .unwrap()
                .route
                .map(|r| r.objective)
        })
        .collect();

    println!(
        "ε sweep (OSScaling), {} queries, Δ = {delta}:",
        queries.len()
    );
    println!("{:>6} {:>12} {:>14}", "ε", "runtime", "relative ratio");
    for eps in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let params = OsScalingParams::with_epsilon(eps);
        let start = Instant::now();
        let mut ratio_sum = 0.0;
        let mut n = 0usize;
        for (q, base) in queries.iter().zip(&reference) {
            let got = engine.os_scaling(q, &params).unwrap().route;
            if let (Some(base), Some(r)) = (base, got) {
                ratio_sum += r.objective / base;
                n += 1;
            }
        }
        println!(
            "{eps:>6} {:>10.1?} {:>14.4}",
            start.elapsed(),
            ratio_sum / n.max(1) as f64
        );
    }

    println!("\nβ sweep (BucketBound, ε = 0.5):");
    println!("{:>6} {:>12} {:>14}", "β", "runtime", "relative ratio");
    for beta in [1.2, 1.4, 1.6, 1.8, 2.0] {
        let params = BucketBoundParams::with(0.5, beta);
        let start = Instant::now();
        let mut ratio_sum = 0.0;
        let mut n = 0usize;
        for (q, base) in queries.iter().zip(&reference) {
            let got = engine.bucket_bound(q, &params).unwrap().route;
            if let (Some(base), Some(r)) = (base, got) {
                ratio_sum += r.objective / base;
                n += 1;
            }
        }
        println!(
            "{beta:>6} {:>10.1?} {:>14.4}",
            start.elapsed(),
            ratio_sum / n.max(1) as f64
        );
    }

    // Greedy needs headroom on this small demo graph: its routes follow
    // minimum-objective legs, which are long in kilometres.
    let greedy_delta = 14.0;
    let greedy_queries: Vec<KorQuery> = workload[0]
        .queries
        .iter()
        .filter_map(|s| {
            KorQuery::new(&graph, s.source, s.target, s.keywords.clone(), greedy_delta).ok()
        })
        .collect();
    let greedy_reference: Vec<Option<f64>> = greedy_queries
        .iter()
        .map(|q| {
            engine
                .os_scaling(q, &OsScalingParams::with_epsilon(0.1))
                .unwrap()
                .route
                .map(|r| r.objective)
        })
        .collect();
    println!("\nα sweep (Greedy-1 and Greedy-2, Δ = {greedy_delta}):");
    println!(
        "{:>6} {:>16} {:>16}",
        "α", "G1 ratio (fail%)", "G2 ratio (fail%)"
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cells = Vec::new();
        for beam in [1usize, 2] {
            let params = GreedyParams {
                alpha,
                beam_width: beam,
                mode: GreedyMode::KeywordsFirst,
            };
            let mut ratio_sum = 0.0;
            let mut ok = 0usize;
            let mut failed = 0usize;
            for (q, base) in greedy_queries.iter().zip(&greedy_reference) {
                match (engine.greedy(q, &params).unwrap(), base) {
                    (Some(r), Some(base)) if r.is_feasible() => {
                        ratio_sum += r.objective / base;
                        ok += 1;
                    }
                    _ => failed += 1,
                }
            }
            cells.push(format!(
                "{:.3} ({:.0}%)",
                ratio_sum / ok.max(1) as f64,
                100.0 * failed as f64 / greedy_queries.len() as f64
            ));
        }
        println!("{alpha:>6} {:>16} {:>16}", cells[0], cells[1]);
    }
}
