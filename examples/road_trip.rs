//! KOR on a road network with top-k alternatives (KkR, §3.5): plan a
//! drive that passes a set of POI categories within a distance budget and
//! offer the driver the k best alternatives.
//!
//! ```bash
//! cargo run --release --example road_trip
//! ```

use kor::prelude::*;

fn main() {
    let config = RoadNetConfig {
        nodes: 2_000,
        area_km: 30.0,
        ..RoadNetConfig::with_nodes(2_000)
    };
    let graph = generate_roadnet(&config);
    println!("Road network:\n{}\n", graph.stats());

    let engine = KorEngine::new(&graph);

    // A workload query: endpoints + frequent categories.
    let index = engine.index();
    let workload = generate_workload(
        &graph,
        index,
        &WorkloadConfig {
            keyword_counts: vec![4],
            queries_per_set: 1,
            frequency_weighted: true,
            max_euclidean_km: Some(15.0),
            // drivers ask for categories, not one-off tags
            min_doc_fraction: 0.01,
            seed: 11,
        },
    );
    let spec = &workload[0].queries[0];
    let terms: Vec<&str> = spec
        .keywords
        .iter()
        .map(|&k| graph.vocab().resolve(k).expect("generated keywords exist"))
        .collect();
    let delta = 45.0; // km
    println!(
        "Drive {} → {} covering {terms:?} within {delta} km\n",
        spec.source, spec.target
    );

    let query = KorQuery::new(
        &graph,
        spec.source,
        spec.target,
        spec.keywords.clone(),
        delta,
    )
    .expect("valid query");

    // Top-3 alternatives via the faster BucketBound KkR.
    let topk = engine
        .top_k_bucket_bound(&query, &BucketBoundParams::default(), 3)
        .expect("valid parameters");
    if topk.routes.is_empty() {
        println!("No feasible route — raise Δ or drop a category.");
        return;
    }
    for (i, r) in topk.routes.iter().enumerate() {
        println!(
            "Alternative #{}: {:.1} km, objective {:.3}, {} stops",
            i + 1,
            r.budget,
            r.objective,
            r.route.len()
        );
    }

    // Compare against the greedy heuristic (what a naive planner does).
    match engine
        .greedy(&query, &GreedyParams::with_beam(2))
        .expect("valid parameters")
    {
        Some(gr) => {
            println!(
                "\nGreedy-2 route: {:.1} km, objective {:.3}, feasible: {}",
                gr.budget,
                gr.objective,
                gr.is_feasible()
            );
            let best = &topk.routes[0];
            println!(
                "BucketBound wins by {:.1}% on the objective",
                (gr.objective / best.objective - 1.0) * 100.0
            );
        }
        None => println!("\nGreedy-2: failed to build a route"),
    }
}
