//! Quickstart: the paper's running example (Figure 1 / Example 2),
//! end to end.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use kor::graph::fixtures::{figure1, t, v};
use kor::prelude::*;

fn main() {
    // The Figure-1 graph of the paper: 8 locations, keywords t1..t5, two
    // weights per edge (objective, budget).
    let graph = figure1();
    println!("Graph:\n{}\n", graph.stats());

    let engine = KorEngine::new(&graph);

    // Example 2 of the paper: Q = ⟨v0, v7, {t1, t2}, Δ = 10⟩, ε = 0.5.
    let query = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2)], 10.0).expect("valid query");

    println!(
        "Query: from {} to {} covering {{t1, t2}} within Δ = 10\n",
        v(0),
        v(7)
    );

    // OSScaling (Algorithm 1) — 1/(1−ε) approximation.
    let os = engine
        .os_scaling(&query, &OsScalingParams::default())
        .expect("valid parameters");
    report("OSScaling (ε = 0.5)", &os);

    // BucketBound (Algorithm 2) — β/(1−ε) approximation, faster.
    let bb = engine
        .bucket_bound(&query, &BucketBoundParams::default())
        .expect("valid parameters");
    report("BucketBound (ε = 0.5, β = 1.2)", &bb);

    // Greedy (Algorithm 3) — no guarantee, fastest.
    match engine.greedy(&query, &GreedyParams::default()).unwrap() {
        Some(r) => println!(
            "Greedy-1 (α = 0.5): {} OS = {} BS = {} feasible = {}",
            r.route,
            r.objective,
            r.budget,
            r.is_feasible()
        ),
        None => println!("Greedy-1: stuck (no route)"),
    }

    // Exact ground truth for this small instance.
    let exact = engine.exact(&query).unwrap();
    report("Exact", &exact);

    // Top-3 routes (KkR, §3.5).
    let topk = engine
        .top_k_os_scaling(&query, &OsScalingParams::default(), 3)
        .unwrap();
    println!("\nTop-3 routes (KkR):");
    for (i, r) in topk.routes.iter().enumerate() {
        println!(
            "  #{}: {} OS = {} BS = {}",
            i + 1,
            r.route,
            r.objective,
            r.budget
        );
    }
}

fn report(name: &str, result: &SearchResult) {
    match &result.route {
        Some(r) => println!(
            "{name}: {} OS = {} BS = {}  [{} labels]",
            r.route, r.objective, r.budget, result.stats.labels_created
        ),
        None => println!("{name}: no feasible route"),
    }
}
