//! Objective-score scaling (§3.2).

use kor_graph::Graph;

/// The scaling transform `ô = ⌊o/θ⌋` with `θ = ε·o_min·b_min/Δ`.
///
/// Scaling maps edge objectives to integers so that the number of
/// non-dominated labels per node is bounded (Lemma 1), at the cost of the
/// `1/(1−ε)` approximation (Theorem 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scaler {
    theta: f64,
}

impl Scaler {
    /// Builds the scaler for a graph, `ε`, and budget limit `Δ`.
    ///
    /// Degenerate inputs (edgeless graph, `Δ = 0`) fall back to `θ = 1`,
    /// which simply floors objectives; such queries are answered before
    /// any label is scaled, so the choice never matters.
    pub fn new(graph: &Graph, epsilon: f64, delta: f64) -> Self {
        Self::from_extrema(graph.o_min(), graph.b_min(), epsilon, delta)
    }

    /// [`Self::new`] from explicit edge-weight extrema instead of a
    /// graph. Shard-scoped searches use this: a shard subgraph may not
    /// contain the globally smallest edge, so the router pins the fused
    /// graph's `o_min`/`b_min` here to reproduce the exact `θ` the
    /// single-engine search would use (same degenerate fallback).
    pub fn from_extrema(o_min: f64, b_min: f64, epsilon: f64, delta: f64) -> Self {
        let theta = epsilon * o_min * b_min / delta;
        if theta.is_finite() && theta > 0.0 {
            Self { theta }
        } else {
            Self { theta: 1.0 }
        }
    }

    /// A scaler that performs no approximation-relevant rounding is not
    /// representable (θ → 0), so exact search uses a different dominance
    /// mode; this constructor exists for tests that need a fixed θ.
    pub fn with_theta(theta: f64) -> Self {
        assert!(theta.is_finite() && theta > 0.0, "θ must be positive");
        Self { theta }
    }

    /// The scaling factor `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Scales one objective value: `⌊o/θ⌋` (saturating).
    #[inline]
    pub fn scale(&self, objective: f64) -> u64 {
        let v = (objective / self.theta).floor();
        if v >= u64::MAX as f64 {
            u64::MAX
        } else if v <= 0.0 {
            0
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::figure1;
    use kor_graph::GraphBuilder;

    #[test]
    fn example1_theta_is_one_twentieth() {
        // Example 1: Δ = 10, ε = 0.5 ⇒ θ = 0.5·1·1/10 = 1/20, so objective
        // values scale to 20× their original value.
        let g = figure1();
        let s = Scaler::new(&g, 0.5, 10.0);
        assert!((s.theta() - 0.05).abs() < 1e-15);
        assert_eq!(s.scale(5.0), 100); // R1's label ÔS in Example 1
        assert_eq!(s.scale(6.0), 120); // R2's label ÔS
        assert_eq!(s.scale(1.0), 20);
        assert_eq!(s.scale(2.0), 40);
    }

    #[test]
    fn scaling_floors() {
        let s = Scaler::with_theta(0.3);
        assert_eq!(s.scale(1.0), 3); // 3.33… → 3
        assert_eq!(s.scale(0.29), 0);
        assert_eq!(s.scale(0.0), 0);
    }

    #[test]
    fn degenerate_inputs_fall_back() {
        let empty = GraphBuilder::new().build().unwrap();
        let s = Scaler::new(&empty, 0.5, 10.0);
        assert_eq!(s.theta(), 1.0);
        let g = figure1();
        let s0 = Scaler::new(&g, 0.5, 0.0);
        assert_eq!(s0.theta(), 1.0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let s = Scaler::with_theta(1e-300);
        assert_eq!(s.scale(1e300), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "θ must be positive")]
    fn with_theta_rejects_zero() {
        let _ = Scaler::with_theta(0.0);
    }
}
