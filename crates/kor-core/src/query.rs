//! The KOR query type (Definition 4).

use kor_graph::{Graph, KeywordId, NodeId, QueryKeywords};

use crate::error::KorError;

/// A keyword-aware optimal route query `Q = ⟨v_s, v_t, ψ, Δ⟩`.
///
/// The answer is the route from `source` to `target` minimizing `OS(R)`
/// subject to `ψ ⊆ ⋃_{v∈R} v.ψ` and `BS(R) ≤ Δ`.
#[derive(Debug, Clone)]
pub struct KorQuery {
    /// Source location `v_s`.
    pub source: NodeId,
    /// Target location `v_t`.
    pub target: NodeId,
    /// Query keywords `ψ` with their bit assignment.
    pub keywords: QueryKeywords,
    /// Budget limit `Δ`.
    pub budget: f64,
}

impl KorQuery {
    /// Builds and validates a query from keyword ids.
    pub fn new(
        graph: &Graph,
        source: NodeId,
        target: NodeId,
        keywords: Vec<KeywordId>,
        budget: f64,
    ) -> Result<Self, KorError> {
        if !graph.contains(source) {
            return Err(KorError::UnknownNode(source));
        }
        if !graph.contains(target) {
            return Err(KorError::UnknownNode(target));
        }
        if !budget.is_finite() || budget < 0.0 {
            return Err(KorError::InvalidBudget(budget));
        }
        Ok(Self {
            source,
            target,
            keywords: QueryKeywords::new(keywords)?,
            budget,
        })
    }

    /// Builds a query from textual keywords resolved against the graph's
    /// vocabulary.
    pub fn from_terms<I, S>(
        graph: &Graph,
        source: NodeId,
        target: NodeId,
        terms: I,
        budget: f64,
    ) -> Result<Self, KorError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        if !graph.contains(source) {
            return Err(KorError::UnknownNode(source));
        }
        if !graph.contains(target) {
            return Err(KorError::UnknownNode(target));
        }
        if !budget.is_finite() || budget < 0.0 {
            return Err(KorError::InvalidBudget(budget));
        }
        Ok(Self {
            source,
            target,
            keywords: QueryKeywords::from_terms(graph.vocab(), terms)?,
            budget,
        })
    }

    /// Number of query keywords `m`.
    pub fn keyword_count(&self) -> usize {
        self.keywords.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, t, v};

    #[test]
    fn valid_query_builds() {
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        assert_eq!(q.keyword_count(), 2);
        assert_eq!(q.keywords.full_mask(), 0b11);
    }

    #[test]
    fn from_terms_resolves() {
        let g = figure1();
        let q = KorQuery::from_terms(&g, v(0), v(7), ["t1", "t2"], 8.0).unwrap();
        assert_eq!(q.keyword_count(), 2);
        assert!(matches!(
            KorQuery::from_terms(&g, v(0), v(7), ["zzz"], 8.0),
            Err(KorError::Keywords(_))
        ));
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = figure1();
        assert!(matches!(
            KorQuery::new(&g, NodeId(99), v(7), vec![], 1.0),
            Err(KorError::UnknownNode(NodeId(99)))
        ));
        assert!(matches!(
            KorQuery::new(&g, v(0), NodeId(88), vec![], 1.0),
            Err(KorError::UnknownNode(NodeId(88)))
        ));
        assert!(matches!(
            KorQuery::new(&g, v(0), v(7), vec![], -2.0),
            Err(KorError::InvalidBudget(_))
        ));
        assert!(matches!(
            KorQuery::new(&g, v(0), v(7), vec![], f64::NAN),
            Err(KorError::InvalidBudget(_))
        ));
    }

    #[test]
    fn empty_keywords_allowed() {
        // Degenerates to the weight-constrained shortest path problem.
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        assert_eq!(q.keyword_count(), 0);
        assert!(q.keywords.is_covering(0));
    }
}
