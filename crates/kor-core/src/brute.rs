//! The exhaustive brute-force baseline (§3.2).
//!
//! Enumerates every path from the source whose budget stays within `Δ`
//! (paths need not be simple — the paper notes simple paths are not
//! enough for KOR) and keeps the best feasible route at the target.
//! Complexity `O(d^{⌊Δ/b_min⌋})`; the paper reports it at least two
//! orders of magnitude slower than `OSScaling` and often unable to finish
//! within a day. Intended for tiny graphs and ground-truth tests.

use kor_apsp::QueryContext;
use kor_graph::{Graph, NodeId, Route};

use crate::error::KorError;
use crate::query::KorQuery;
use crate::result::{RouteResult, SearchResult};
use crate::stats::SearchStats;

/// Safety limits for the exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct BruteForceParams {
    /// Abort after this many partial-path expansions.
    pub max_expansions: u64,
    /// Additionally prune partial paths that provably cannot finish
    /// within the budget (`BS + BS(σ_{v,t}) > Δ`). The paper's baseline
    /// only checks `BS ≤ Δ`; enabling this keeps the same answers while
    /// taming the search space.
    pub target_pruning: bool,
}

impl Default for BruteForceParams {
    fn default() -> Self {
        Self {
            max_expansions: 10_000_000,
            target_pruning: false,
        }
    }
}

/// Runs the exhaustive search.
///
/// # Errors
///
/// [`KorError::SearchSpaceExceeded`] if `max_expansions` is hit before
/// the space is exhausted (the result would not be trustworthy).
pub fn brute_force(
    graph: &Graph,
    query: &KorQuery,
    params: &BruteForceParams,
) -> Result<SearchResult, KorError> {
    let ctx = QueryContext::new(graph, query.target);
    let mut stats = SearchStats::default();
    let mut best: Option<(f64, f64, Vec<NodeId>)> = None;

    // DFS over partial paths; the stack stores full node sequences, which
    // is exactly the paper's queue-of-partial-paths formulation.
    let init_mask = query.keywords.mask_of(graph.keywords(query.source));
    let mut stack: Vec<(Vec<NodeId>, u64, f64, f64)> =
        vec![(vec![query.source], init_mask, 0.0, 0.0)];
    stats.labels_created += 1;
    let mut expansions = 0u64;

    while let Some((path, mask, os, bs)) = stack.pop() {
        expansions += 1;
        if expansions > params.max_expansions {
            return Err(KorError::SearchSpaceExceeded(params.max_expansions));
        }
        let node = *path.last().expect("paths are non-empty");

        if node == query.target && query.keywords.is_covering(mask) && bs <= query.budget {
            let better = match &best {
                None => true,
                Some((bos, bbs, _)) => os < *bos || (os == *bos && bs < *bbs),
            };
            if better {
                best = Some((os, bs, path.clone()));
                stats.upper_bound_updates += 1;
            }
        }

        // Objective scores only grow, so a partial path already at or
        // above the best found can never win.
        if let Some((bos, _, _)) = &best {
            if os >= *bos {
                stats.labels_pruned += 1;
                continue;
            }
        }

        stats.labels_expanded += 1;
        for e in graph.out_edges(node) {
            let nbs = bs + e.budget;
            if nbs > query.budget {
                stats.labels_pruned += 1;
                continue;
            }
            if params.target_pruning && nbs + ctx.bs_sigma(e.node) > query.budget {
                stats.labels_pruned += 1;
                continue;
            }
            let mut npath = path.clone();
            npath.push(e.node);
            let nmask = mask | query.keywords.mask_of(graph.keywords(e.node));
            stack.push((npath, nmask, os + e.objective, nbs));
            stats.labels_created += 1;
        }
    }

    Ok(SearchResult {
        route: best.map(|(objective, budget, nodes)| RouteResult {
            route: Route::new(nodes),
            objective,
            budget,
        }),
        stats,
        labels: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::exact_labeling;
    use kor_graph::fixtures::{figure1, t, v};
    use kor_index::InvertedIndex;

    #[test]
    fn finds_example2_optimum() {
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = brute_force(&g, &q, &BruteForceParams::default()).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.objective, 6.0);
        assert_eq!(route.budget, 10.0);
        assert_eq!(route.route.nodes(), &[v(0), v(2), v(3), v(4), v(7)]);
    }

    #[test]
    fn agrees_with_exact_labeling_on_fixture() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        for m in [vec![], vec![t(1)], vec![t(1), t(2)], vec![t(1), t(2), t(3)]] {
            for delta in [4.0, 5.0, 6.0, 8.0, 10.0, 15.0] {
                let q = KorQuery::new(&g, v(0), v(7), m.clone(), delta).unwrap();
                let bf = brute_force(&g, &q, &BruteForceParams::default()).unwrap();
                let ex = exact_labeling(&g, &idx, &q).unwrap();
                match (&bf.route, &ex.route) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.objective, b.objective, "m={m:?} delta={delta}");
                    }
                    (a, b) => panic!("m={m:?} delta={delta}: bf={a:?} exact={b:?}"),
                }
            }
        }
    }

    #[test]
    fn target_pruning_preserves_answers() {
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2), t(3)], 12.0).unwrap();
        let plain = brute_force(&g, &q, &BruteForceParams::default()).unwrap();
        let pruned = brute_force(
            &g,
            &q,
            &BruteForceParams {
                target_pruning: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(
            plain.route.as_ref().map(|r| r.objective),
            pruned.route.as_ref().map(|r| r.objective)
        );
        assert!(pruned.stats.labels_created <= plain.stats.labels_created);
    }

    #[test]
    fn expansion_cap_is_enforced() {
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = brute_force(
            &g,
            &q,
            &BruteForceParams {
                max_expansions: 3,
                ..Default::default()
            },
        );
        assert!(matches!(r, Err(KorError::SearchSpaceExceeded(3))));
    }

    #[test]
    fn infeasible_detected() {
        let g = figure1();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 4.0).unwrap();
        let r = brute_force(&g, &q, &BruteForceParams::default()).unwrap();
        assert!(r.route.is_none());
    }
}
