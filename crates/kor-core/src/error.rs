//! Error type for KOR queries and algorithm parameters.

use std::fmt;

use kor_graph::{NodeId, QueryKeywordsError};

/// Errors raised when validating queries or algorithm parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum KorError {
    /// A query endpoint is not a node of the graph.
    UnknownNode(NodeId),
    /// The budget limit `Δ` is negative or not finite.
    InvalidBudget(f64),
    /// The scaling parameter `ε` is outside `(0, 1)`.
    InvalidEpsilon(f64),
    /// The bucket parameter `β` is not `> 1`.
    InvalidBeta(f64),
    /// The greedy balance parameter `α` is outside `[0, 1]`.
    InvalidAlpha(f64),
    /// The beam width for the greedy algorithm is zero.
    InvalidBeamWidth,
    /// `k = 0` requested for a top-k query.
    InvalidK,
    /// The query keyword set is invalid.
    Keywords(QueryKeywordsError),
    /// Brute force aborted after the configured number of expansions.
    SearchSpaceExceeded(u64),
    /// A label search ran past its deadline and was cancelled.
    DeadlineExceeded,
}

impl fmt::Display for KorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KorError::UnknownNode(v) => write!(f, "query endpoint {v} is not in the graph"),
            KorError::InvalidBudget(d) => {
                write!(f, "budget limit Δ = {d} must be finite and non-negative")
            }
            KorError::InvalidEpsilon(e) => {
                write!(f, "scaling parameter ε = {e} must lie in (0, 1)")
            }
            KorError::InvalidBeta(b) => write!(f, "bucket parameter β = {b} must be > 1"),
            KorError::InvalidAlpha(a) => {
                write!(f, "greedy balance parameter α = {a} must lie in [0, 1]")
            }
            KorError::InvalidBeamWidth => write!(f, "greedy beam width must be ≥ 1"),
            KorError::InvalidK => write!(f, "top-k requires k ≥ 1"),
            KorError::Keywords(e) => write!(f, "{e}"),
            KorError::SearchSpaceExceeded(n) => {
                write!(f, "brute force exceeded {n} expansions")
            }
            KorError::DeadlineExceeded => write!(f, "search deadline exceeded"),
        }
    }
}

impl std::error::Error for KorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KorError::Keywords(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryKeywordsError> for KorError {
    fn from(e: QueryKeywordsError) -> Self {
        KorError::Keywords(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(KorError::UnknownNode(NodeId(4)).to_string().contains("v4"));
        assert!(KorError::InvalidBudget(-1.0).to_string().contains("-1"));
        assert!(KorError::InvalidEpsilon(1.5).to_string().contains("1.5"));
        assert!(KorError::InvalidBeta(0.9).to_string().contains("0.9"));
        assert!(KorError::InvalidAlpha(2.0).to_string().contains("2"));
        assert!(KorError::InvalidBeamWidth.to_string().contains("beam"));
        assert!(KorError::InvalidK.to_string().contains("k ≥ 1"));
        assert!(KorError::DeadlineExceeded.to_string().contains("deadline"));
    }

    #[test]
    fn keywords_error_chains() {
        use std::error::Error;
        let e = KorError::from(QueryKeywordsError::TooMany(40));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("40"));
    }
}
