//! Keyword-aware Optimal Route (KOR) search algorithms.
//!
//! Reproduction of *"Keyword-aware Optimal Route Search"* (Cao, Chen,
//! Cong, Xiao — PVLDB 5(11), 2012). Given a directed graph whose nodes
//! carry keywords and whose edges carry an objective value and a budget
//! value, a KOR query `⟨v_s, v_t, ψ, Δ⟩` asks for the route from `v_s` to
//! `v_t` minimizing the objective score subject to covering all keywords
//! in `ψ` and keeping the budget score within `Δ` — an NP-hard problem.
//!
//! Algorithms provided (all exposed through [`KorEngine`]):
//!
//! * [`os_scaling`] — Algorithm 1, the `1/(1−ε)`-approximation via
//!   objective-score scaling, with the paper's Optimization Strategies
//!   1 & 2;
//! * [`bucket_bound`] — Algorithm 2, the faster `β/(1−ε)`-approximation
//!   that organizes labels into geometric buckets;
//! * [`greedy`] — Algorithm 3, the α-weighted greedy heuristic
//!   (Greedy-1 / Greedy-2 beams, keyword-first or budget-first);
//! * [`exact_labeling`] — exact optimum via label dominance on unscaled
//!   scores (the `ε → 0` limit; ground truth for accuracy studies);
//! * [`brute_force`] — the paper's §3.2 exhaustive baseline;
//! * [`top_k_os_scaling`] / [`top_k_bucket_bound`] — the KkR top-k
//!   extension (§3.5) via k-dominance.
//!
//! # Example
//!
//! ```
//! use kor_core::{KorEngine, KorQuery, OsScalingParams};
//! use kor_graph::fixtures::{figure1, t, v};
//!
//! let graph = figure1();
//! let engine = KorEngine::new(&graph);
//! // Example 2 of the paper: Q = ⟨v0, v7, {t1, t2}, 10⟩, ε = 0.5.
//! let query = KorQuery::new(&graph, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
//! let result = engine.os_scaling(&query, &OsScalingParams::default()).unwrap();
//! let route = result.route.expect("feasible");
//! assert_eq!(route.objective, 6.0);
//! assert_eq!(route.budget, 10.0);
//! ```

#![deny(missing_docs)]

mod brute;
mod bucket;
mod cache;
mod dominance;
mod engine;
mod error;
mod greedy;
mod label;
mod labeling;
mod params;
mod query;
mod result;
mod scale;
mod stats;

pub use brute::{brute_force, BruteForceParams};
pub use bucket::{
    bucket_bound, bucket_bound_with_cache, top_k_bucket_bound, top_k_bucket_bound_with_cache,
};
pub use cache::{CacheStats, InvalidationCounts, Opt2Trees, PreprocessCache, TreeStamp};
pub use dominance::{DomMode, LabelStore};
pub use engine::{KorEngine, MutationReport};
pub use error::KorError;
pub use greedy::{greedy, greedy_with_cache, GreedyMode, GreedyParams, GreedyRoute};
pub use label::{Label, LabelArena, LabelSnapshot, NO_LABEL};
pub use labeling::{
    exact_labeling, exact_labeling_with_cache, exact_labeling_with_deadline, os_scaling,
    os_scaling_with_cache, top_k_os_scaling, top_k_os_scaling_with_cache,
};
pub use params::{BucketBoundParams, OsScalingParams, ScaleAnchor};
pub use query::KorQuery;
pub use result::{RouteResult, SearchResult, TopKResult};
pub use scale::Scaler;
pub use stats::SearchStats;
