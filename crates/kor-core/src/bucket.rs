//! `BucketBound` (Algorithm 2) and its KkR top-k extension.
//!
//! Labels are organized into geometric buckets by their best possible
//! objective score `LOW(L) = L.OS + OS(τ_{node,t})` (Lemma 3): bucket
//! `B_r` covers `[β^r·OS(τ_{s,t}), β^{r+1}·OS(τ_{s,t}))` (Definition 9).
//! Labels are always dequeued from the first non-empty bucket; when a
//! newly created label covers all query keywords, falls into that same
//! bucket, and its τ-completion fits the budget, Lemma 5 guarantees the
//! route found by `OSScaling` shares the bucket, so the search stops with
//! approximation ratio `β/(1−ε)` (Theorem 3) — typically an order of
//! magnitude faster than Algorithm 1.

use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use kor_apsp::{KeywordReach, QueryContext};
use kor_graph::{Graph, NodeId, Route};
use kor_index::InvertedIndex;

use crate::cache::PreprocessCache;
use crate::dominance::LabelStore;
use crate::error::KorError;
use crate::label::{Label, LabelArena, LabelSnapshot, NO_LABEL};
use crate::labeling::{
    acquire_context, acquire_reach, build_opt2, query_mask_table, scaler_for, AltBounds,
    DeadlineTicker, Opt2, QItem, ScoreMode,
};
use crate::params::BucketBoundParams;
use crate::query::KorQuery;
use crate::result::{RouteResult, SearchResult, TopKResult};
use crate::stats::SearchStats;

/// Runs `BucketBound` (Algorithm 2): the `β/(1−ε)`-approximation.
pub fn bucket_bound(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &BucketBoundParams,
) -> Result<SearchResult, KorError> {
    bucket_bound_with_cache(graph, index, query, params, None)
}

/// [`bucket_bound`] reusing a shared [`PreprocessCache`] for the
/// to-target trees and Opt-2 bounds. Results are byte-identical to the
/// cold path; only the setup cost changes.
pub fn bucket_bound_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &BucketBoundParams,
    cache: Option<&PreprocessCache>,
) -> Result<SearchResult, KorError> {
    params.validate()?;
    let mut engine = BucketEngine::new(graph, index, query, params, 1, cache);
    let mut routes = engine.run()?;
    Ok(SearchResult {
        route: routes.pop(),
        stats: engine.stats,
        labels: engine.snapshots,
    })
}

/// Runs the KkR extension of `BucketBound`: k-dominance, terminating once
/// `k` feasible routes have been found in current buckets (§3.5).
pub fn top_k_bucket_bound(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &BucketBoundParams,
    k: usize,
) -> Result<TopKResult, KorError> {
    top_k_bucket_bound_with_cache(graph, index, query, params, k, None)
}

/// [`top_k_bucket_bound`] reusing a shared [`PreprocessCache`].
pub fn top_k_bucket_bound_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &BucketBoundParams,
    k: usize,
    cache: Option<&PreprocessCache>,
) -> Result<TopKResult, KorError> {
    params.validate()?;
    if k == 0 {
        return Err(KorError::InvalidK);
    }
    let mut engine = BucketEngine::new(graph, index, query, params, k, cache);
    let routes = engine.run()?;
    Ok(TopKResult {
        routes,
        stats: engine.stats,
    })
}

/// Geometric label buckets (Definition 9) with lazy tombstone skipping.
struct Buckets {
    base: f64,
    log_beta: f64,
    queues: Vec<BinaryHeap<QItem>>,
    /// First bucket that may contain alive labels; monotone because
    /// `LOW` never decreases along label extensions.
    current: usize,
}

impl Buckets {
    fn new(base: f64, beta: f64) -> Self {
        Self {
            base,
            log_beta: beta.ln(),
            queues: Vec::new(),
            current: 0,
        }
    }

    /// The bucket index for a `LOW` value.
    fn index_for(&self, low: f64) -> usize {
        if low <= self.base {
            return 0;
        }
        let r = ((low / self.base).ln() / self.log_beta).floor();
        if r < 0.0 {
            0
        } else {
            r as usize
        }
    }

    fn push(&mut self, bucket: usize, item: QItem) -> bool {
        let grew = bucket >= self.queues.len();
        while self.queues.len() <= bucket {
            self.queues.push(BinaryHeap::new());
        }
        self.queues[bucket].push(item);
        grew
    }

    /// Pops the lowest-order alive item from the first non-empty bucket.
    fn pop_first(&mut self, arena: &LabelArena, skipped: &mut u64) -> Option<(usize, QItem)> {
        while self.current < self.queues.len() {
            while let Some(item) = self.queues[self.current].pop() {
                if arena.get(item.id).alive {
                    return Some((self.current, item));
                }
                *skipped += 1;
            }
            self.current += 1;
        }
        None
    }
}

struct BucketEngine<'a> {
    graph: &'a Graph,
    query: &'a KorQuery,
    mode: ScoreMode,
    k: usize,
    collect_labels: bool,
    deadline: Option<Instant>,
    ctx: Arc<QueryContext>,
    /// Per-node query-keyword masks (empty ⇒ all zero).
    masks: Vec<u64>,
    reach: Option<KeywordReach>,
    opt2: Option<Opt2>,
    /// Landmark bounds; `max`-ed with σ at the budget pruning sites.
    alt: Option<AltBounds>,
    arena: LabelArena,
    store: LabelStore,
    buckets: Buckets,
    found: Vec<RouteResult>,
    stats: SearchStats,
    snapshots: Vec<LabelSnapshot>,
}

impl<'a> BucketEngine<'a> {
    fn new(
        graph: &'a Graph,
        index: &'a InvertedIndex,
        query: &'a KorQuery,
        params: &BucketBoundParams,
        k: usize,
        cache: Option<&PreprocessCache>,
    ) -> Self {
        let mut stats = SearchStats::default();
        let ctx = acquire_context(graph, query.target, cache, &mut stats);
        let masks = query_mask_table(graph.node_count(), &query.keywords, index);
        let reach = (params.use_opt1 && !query.keywords.is_empty())
            .then(|| acquire_reach(graph, index, query, cache, &mut stats));
        let alt = AltBounds::acquire(graph, query.target, cache);
        let opt2 = if params.use_opt2 {
            build_opt2(
                graph,
                index,
                query,
                &ctx,
                params.infrequent_threshold,
                cache,
                &mut stats,
            )
        } else {
            None
        };
        let mode = ScoreMode::Scaled(scaler_for(
            graph,
            params.anchor,
            params.epsilon,
            query.budget,
        ));
        let store = LabelStore::new(
            mode.dom_mode(),
            query.keywords.full_mask(),
            k,
            graph.node_count(),
        );
        // Bucket base: OS(τ_{s,t}); when source == target that is 0, so
        // fall back to the smallest edge objective (any covering cycle
        // costs at least that), keeping the intervals well-defined. Like
        // θ above, the fallback honours a pinned anchor so shard-local
        // bucket layouts match the fused engine's.
        let tau_st = ctx.os_tau(query.source);
        let base = if tau_st > 0.0 && tau_st.is_finite() {
            tau_st
        } else {
            params
                .anchor
                .map_or_else(|| graph.o_min(), |a| a.o_min)
                .max(f64::MIN_POSITIVE)
        };
        Self {
            graph,
            query,
            mode,
            k,
            collect_labels: params.collect_labels,
            deadline: params.deadline,
            ctx,
            masks,
            reach,
            opt2,
            alt,
            arena: LabelArena::with_capacity(1024),
            store,
            buckets: Buckets::new(base, params.beta),
            found: Vec::new(),
            stats,
            snapshots: Vec::new(),
        }
    }

    /// The query-keyword mask of `node` (one indexed load).
    #[inline]
    fn node_mask(&self, node: NodeId) -> u64 {
        if self.masks.is_empty() {
            0
        } else {
            self.masks[node.index()]
        }
    }

    /// Lower bound on the remaining budget from `node` to the target:
    /// `max(BS(σ), ALT)`. Equal to `BS(σ)` — the exact distance — on
    /// every node, so pruning decisions are unchanged; see
    /// [`AltBounds`].
    #[inline]
    fn bs_lb(&self, node: NodeId) -> f64 {
        let sigma = self.ctx.bs_sigma(node);
        match &self.alt {
            Some(alt) => sigma.max(alt.budget_bound(node)),
            None => sigma,
        }
    }

    fn run(&mut self) -> Result<Vec<RouteResult>, KorError> {
        let source = self.query.source;
        if !self.ctx.reaches_target(source) {
            return Ok(Vec::new());
        }
        let init = Label {
            node: source,
            mask: self.node_mask(source),
            scaled: 0,
            objective: 0.0,
            budget: 0.0,
            parent: NO_LABEL,
            alive: true,
        };
        let init_id = self.arena.push(init);
        self.stats.labels_created += 1;
        if self.collect_labels {
            self.snapshots
                .push(LabelSnapshot::from(self.arena.get(init_id)));
        }
        self.store.try_insert(&mut self.arena, init_id);
        self.file_label(init_id);

        // One per-search ticker (see `labeling::DeadlineTicker`): the
        // first iteration always checks, and the counter spans bucket
        // transitions, so later buckets cannot starve the deadline.
        let mut ticker = DeadlineTicker::new(self.deadline);
        while !self.done() {
            ticker.tick()?;
            let Some((_, item)) = self
                .buckets
                .pop_first(&self.arena, &mut self.stats.labels_skipped)
            else {
                break;
            };
            // Lemma 5 at dequeue time: this label was popped from the
            // first non-empty bucket, so all earlier buckets are empty;
            // if it covers all keywords and its τ-completion fits the
            // budget, it is a result route (lines 19–23 generalized to
            // labels that entered a later bucket than the then-current
            // one and were reached only now).
            self.record_if_found(item.id);
            if self.done() {
                break;
            }
            self.stats.labels_expanded += 1;
            self.expand(item.id);
        }
        Ok(self.results())
    }

    /// Records the label's τ-completion as a found route if it covers all
    /// query keywords and fits the budget; dedupes identical routes —
    /// including the same label being seen at creation time and again at
    /// dequeue time.
    fn record_if_found(&mut self, id: u32) {
        let label = *self.arena.get(id);
        if !self.query.keywords.is_covering(label.mask) {
            return;
        }
        let bs = label.budget + self.ctx.bs_tau(label.node);
        // NaN-safe: an infinite/NaN completion budget must not count.
        if bs > self.query.budget || !bs.is_finite() {
            return;
        }
        let mut nodes = self.arena.path_nodes(id);
        let completion = self
            .ctx
            .tau_route(label.node)
            .expect("found labels reach the target");
        nodes.extend_from_slice(&completion.nodes()[1..]);
        if self.found.iter().any(|r| r.route.nodes() == nodes) {
            return;
        }
        self.found.push(RouteResult {
            route: Route::new(nodes),
            objective: label.objective + self.ctx.os_tau(label.node),
            budget: bs,
        });
        self.stats.upper_bound_updates += 1;
    }

    fn done(&self) -> bool {
        self.found.len() >= self.k
    }

    fn results(&mut self) -> Vec<RouteResult> {
        let mut found = std::mem::take(&mut self.found);
        found.sort_by(|a, b| {
            a.objective
                .total_cmp(&b.objective)
                .then(a.budget.total_cmp(&b.budget))
        });
        found
    }

    fn expand(&mut self, id: u32) {
        let label = *self.arena.get(id);
        // Copying the `&'a Graph` reference out lets the CSR adjacency
        // iterator borrow the graph — not `self` — so the slices are
        // walked in place with no per-expansion `Vec` allocation.
        let graph = self.graph;
        for e in graph.out_edges(label.node) {
            self.make_child(id, e.node, e.objective, e.budget);
            if self.done() {
                return;
            }
        }
        if self.reach.is_some() && !self.query.keywords.is_covering(label.mask) {
            self.opt1_jump(id);
        }
    }

    fn make_child(&mut self, parent_id: u32, node: NodeId, edge_obj: f64, edge_bud: f64) {
        let parent = *self.arena.get(parent_id);
        let objective = parent.objective + edge_obj;
        let budget = parent.budget + edge_bud;
        let child = Label {
            node,
            mask: parent.mask | self.node_mask(node),
            scaled: self.mode.child_key(&parent, edge_obj, objective),
            objective,
            budget,
            parent: parent_id,
            alive: true,
        };
        self.stats.labels_created += 1;
        if self.collect_labels {
            self.snapshots.push(LabelSnapshot {
                node: child.node,
                mask: child.mask,
                scaled: child.scaled,
                objective: child.objective,
                budget: child.budget,
            });
        }
        // Algorithm 2 line 11: budget feasibility via the min-budget
        // completion (BucketBound has no objective upper bound).
        if child.budget + self.bs_lb(child.node) > self.query.budget {
            self.stats.labels_pruned += 1;
            return;
        }
        // Optimization Strategy 2 (budget side only: there is no U).
        if let Some(opt2) = &self.opt2 {
            if child.mask & opt2.bit_mask == 0
                && child.budget + opt2.trees.bud_bound.budget(child.node) > self.query.budget
            {
                self.stats.opt2_discards += 1;
                return;
            }
        }
        let id = self.arena.push(child);
        if !self.store.try_insert(&mut self.arena, id) {
            self.arena.kill(id);
            self.sync_store_stats();
            return;
        }
        self.sync_store_stats();
        let bucket = self.file_label(id);
        // Algorithm 2 lines 19–23: a covering label created in the bucket
        // currently being drained terminates the search immediately (its
        // dequeue-time twin in `run` handles labels that land in later
        // buckets and are only reached once those become current).
        if bucket == self.buckets.current {
            self.record_if_found(id);
        }
    }

    /// Places a stored label into its bucket (lines 12–15), returning the
    /// bucket index.
    fn file_label(&mut self, id: u32) -> usize {
        let label = *self.arena.get(id);
        let low = label.objective + self.ctx.os_tau(label.node);
        let bucket = self.buckets.index_for(low);
        if self.buckets.push(
            bucket,
            QItem {
                covered: label.mask.count_ones(),
                key: label.scaled,
                budget: label.budget,
                node: label.node.0,
                id,
            },
        ) {
            self.stats.buckets_created += 1;
        }
        self.stats.queue_pushes += 1;
        bucket
    }

    fn opt1_jump(&mut self, id: u32) {
        let label = *self.arena.get(id);
        let reach = self.reach.as_ref().expect("opt1 enabled");
        let mut best: Option<(f64, u32)> = None;
        for (bit, _) in self.query.keywords.uncovered(label.mask) {
            if let Some((dist, j)) = reach.nearest(bit, label.node) {
                if label.budget + dist + self.bs_lb(j) <= self.query.budget {
                    let better = best.is_none_or(|(d, _)| dist < d);
                    if better {
                        best = Some((dist, bit));
                    }
                }
            }
        }
        let Some((_, bit)) = best else { return };
        let Some(path) = reach.path_to_nearest(bit, label.node) else {
            return;
        };
        if path.len() < 2 {
            return;
        }
        self.stats.opt1_jumps += 1;
        let mut cur = id;
        for step in path.windows(2) {
            let (from, to) = (step[0], step[1]);
            let e = self
                .graph
                .edge_between(from, to)
                .expect("reach paths follow graph edges");
            let is_last = to == *path.last().expect("non-empty");
            if is_last {
                self.make_child(cur, to, e.objective, e.budget);
            } else {
                let parent = *self.arena.get(cur);
                let objective = parent.objective + e.objective;
                let child = Label {
                    node: to,
                    mask: parent.mask | self.node_mask(to),
                    scaled: self.mode.child_key(&parent, e.objective, objective),
                    objective,
                    budget: parent.budget + e.budget,
                    parent: cur,
                    alive: true,
                };
                cur = self.arena.push(child);
            }
        }
    }

    fn sync_store_stats(&mut self) {
        self.stats.labels_dominated = self.store.dominated_count();
        self.stats.labels_evicted = self.store.evicted_count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeling::{exact_labeling, os_scaling};
    use crate::params::OsScalingParams;
    use kor_graph::fixtures::{figure1, t, v};

    fn setup() -> (Graph, InvertedIndex) {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    fn params(epsilon: f64, beta: f64) -> BucketBoundParams {
        BucketBoundParams {
            epsilon,
            beta,
            use_opt1: false,
            use_opt2: false,
            ..BucketBoundParams::default()
        }
    }

    #[test]
    fn example2_query_feasible_and_bounded() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = bucket_bound(&g, &idx, &q, &params(0.5, 1.2)).unwrap();
        let route = r.route.expect("feasible");
        // Theorem 3: within β/(1−ε) = 2.4 of the optimum (6).
        assert!(route.objective <= 6.0 * 2.4 + 1e-9);
        assert!(route.budget <= 10.0 + 1e-9);
        assert!(route.route.covers(&g, &[t(1), t(2)]));
        let (os, bs) = route.route.scores(&g).unwrap();
        assert!((os - route.objective).abs() < 1e-9);
        assert!((bs - route.budget).abs() < 1e-9);
    }

    #[test]
    fn theorem3_bound_across_parameters() {
        let (g, idx) = setup();
        for m in [vec![t(1)], vec![t(1), t(2)], vec![t(1), t(2), t(3)]] {
            for delta in [5.0, 6.0, 8.0, 10.0, 14.0] {
                let q = KorQuery::new(&g, v(0), v(7), m.clone(), delta).unwrap();
                let exact = exact_labeling(&g, &idx, &q).unwrap();
                for (eps, beta) in [(0.1, 1.2), (0.5, 1.2), (0.5, 2.0), (0.9, 1.5)] {
                    let r = bucket_bound(&g, &idx, &q, &params(eps, beta)).unwrap();
                    match (&exact.route, &r.route) {
                        (None, None) => {}
                        (Some(opt), Some(found)) => {
                            let bound = beta / (1.0 - eps);
                            assert!(
                                found.objective <= opt.objective * bound + 1e-9,
                                "eps={eps} beta={beta} delta={delta}: {} > {}·{bound}",
                                found.objective,
                                opt.objective
                            );
                            assert!(found.budget <= delta + 1e-9);
                        }
                        (a, b) => panic!("feasibility disagreement: exact={a:?} bb={b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn bucket_bound_never_worse_than_beta_times_osscaling() {
        // The defining property: OS(R_BB) ≤ β · OS(R_OS) (same bucket).
        let (g, idx) = setup();
        for delta in [6.0, 8.0, 10.0, 12.0] {
            let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], delta).unwrap();
            let os_params = OsScalingParams {
                use_opt1: false,
                use_opt2: false,
                ..OsScalingParams::default()
            };
            let ros = os_scaling(&g, &idx, &q, &os_params).unwrap();
            let rbb = bucket_bound(&g, &idx, &q, &params(0.5, 1.2)).unwrap();
            match (&ros.route, &rbb.route) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!(b.objective <= a.objective * 1.2 + 1e-9);
                }
                (a, b) => panic!("feasibility disagreement: os={a:?} bb={b:?}"),
            }
        }
    }

    #[test]
    fn infeasible_cases_detected() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 4.0).unwrap();
        assert!(bucket_bound(&g, &idx, &q, &params(0.5, 1.2))
            .unwrap()
            .route
            .is_none());
        let q2 = KorQuery::new(&g, v(0), v(7), vec![t(5)], 100.0).unwrap();
        assert!(bucket_bound(&g, &idx, &q2, &params(0.5, 1.2))
            .unwrap()
            .route
            .is_none());
        let q3 = KorQuery::new(&g, v(1), v(7), vec![], 100.0).unwrap();
        assert!(bucket_bound(&g, &idx, &q3, &params(0.5, 1.2))
            .unwrap()
            .route
            .is_none());
    }

    #[test]
    fn trivial_source_target() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(0), vec![t(3)], 5.0).unwrap();
        let r = bucket_bound(&g, &idx, &q, &params(0.5, 1.2)).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0)]);
        assert_eq!(route.objective, 0.0);
    }

    #[test]
    fn optimizations_preserve_feasibility_and_bound() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2), t(4)], 12.0).unwrap();
        let with_opts = bucket_bound(&g, &idx, &q, &BucketBoundParams::default()).unwrap();
        let without = bucket_bound(&g, &idx, &q, &params(0.5, 1.2)).unwrap();
        let exact = exact_labeling(&g, &idx, &q).unwrap();
        let opt = exact.route.unwrap().objective;
        for r in [with_opts, without] {
            let route = r.route.expect("feasible");
            assert!(route.objective <= opt * 2.4 + 1e-9);
            assert!(route.route.covers(&g, &[t(1), t(2), t(4)]));
        }
    }

    #[test]
    fn top_k_bucket_bound_returns_sorted_feasible_routes() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 12.0).unwrap();
        let r = top_k_bucket_bound(&g, &idx, &q, &params(0.2, 1.2), 3).unwrap();
        assert!(!r.routes.is_empty());
        for w in r.routes.windows(2) {
            assert!(w[0].objective <= w[1].objective);
            assert_ne!(w[0].route.nodes(), w[1].route.nodes());
        }
        for route in &r.routes {
            assert!(route.budget <= 12.0 + 1e-9);
            assert!(route.route.covers(&g, &[t(1), t(2)]));
        }
    }

    #[test]
    fn top_k_zero_rejected() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        assert!(matches!(
            top_k_bucket_bound(&g, &idx, &q, &BucketBoundParams::default(), 0),
            Err(KorError::InvalidK)
        ));
    }

    #[test]
    fn invalid_beta_rejected() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        assert!(matches!(
            bucket_bound(&g, &idx, &q, &params(0.5, 1.0)),
            Err(KorError::InvalidBeta(_))
        ));
    }

    #[test]
    fn expired_deadline_aborts_before_any_expansion() {
        // Promptness regression test for the bucket-bound path: the
        // per-search ticker checks on the first pop, so an expired
        // deadline must abort before a single label is expanded — on a
        // search far smaller than the check stride. If the ticker ever
        // counted buckets or beams separately (or incremented before
        // checking), this search would run to completion instead.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let p = BucketBoundParams {
            deadline: Some(std::time::Instant::now()),
            ..BucketBoundParams::default()
        };
        let mut engine = BucketEngine::new(&g, &idx, &q, &p, 1, None);
        assert!(matches!(engine.run(), Err(KorError::DeadlineExceeded)));
        assert_eq!(
            engine.stats.labels_expanded, 0,
            "deadline was checked only after expansion work began"
        );
    }

    #[test]
    fn bucket_index_math() {
        let b = Buckets::new(4.0, 1.2);
        assert_eq!(b.index_for(4.0), 0);
        assert_eq!(b.index_for(3.0), 0); // below base clamps to 0
        assert_eq!(b.index_for(4.7), 0); // < 4·1.2
        assert_eq!(b.index_for(4.9), 1); // ≥ 4·1.2
        assert_eq!(b.index_for(4.0 * 1.2 * 1.2 + 0.01), 2);
    }

    #[test]
    fn generates_no_more_labels_than_os_scaling() {
        // §4.2.1: BucketBound terminates early and creates fewer labels.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let os_params = OsScalingParams {
            use_opt1: false,
            use_opt2: false,
            ..OsScalingParams::default()
        };
        let ros = os_scaling(&g, &idx, &q, &os_params).unwrap();
        let rbb = bucket_bound(&g, &idx, &q, &params(0.5, 1.2)).unwrap();
        assert!(rbb.stats.labels_created <= ros.stats.labels_created);
    }
}
