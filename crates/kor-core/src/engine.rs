//! Convenience facade bundling the index and pre-processing caches.

use std::sync::Arc;
use std::time::Instant;

use kor_apsp::CachedPairCosts;
use kor_graph::{EdgeMutation, Graph, MutationError, NodeId};
use kor_index::InvertedIndex;

use crate::brute::{brute_force, BruteForceParams};
use crate::bucket::{bucket_bound_with_cache, top_k_bucket_bound_with_cache};
use crate::cache::{CacheStats, PreprocessCache};
use crate::error::KorError;
use crate::greedy::{greedy_with_cache, GreedyParams, GreedyRoute};
use crate::labeling::{
    exact_labeling_with_cache, os_scaling_with_cache, top_k_os_scaling_with_cache,
};
use crate::params::{BucketBoundParams, OsScalingParams};
use crate::query::KorQuery;
use crate::result::{SearchResult, TopKResult};

/// One-stop query engine: owns the inverted index, the forward-tree
/// cache used by the greedy algorithm, and the shared
/// [`PreprocessCache`] of to-target `τ`/`σ` trees and Opt-2 bounds,
/// mirroring the paper's setup where the index and pre-processing are
/// built once per dataset.
///
/// Every query method runs on the warm path automatically: repeat
/// queries against a cached target skip all backward Dijkstras, and the
/// per-search [`crate::SearchStats`] report the cache hits/misses and
/// trees built. Results are byte-identical to the cache-free functions.
///
/// # Sharing across threads
///
/// The engine is generic over how it holds the graph. Scoped callers
/// (tests, the batch front end) pass `&Graph` and get
/// `KorEngine<&Graph>`; long-lived services pass `Arc<Graph>` so the
/// engine owns its dataset outright and can be stored in a registry with
/// no borrow tying it to a stack frame.
///
/// Either way the engine is `Send + Sync` (asserted at compile time
/// below): the graph and index are immutable after construction, and the
/// only interior mutability — the memoized forward trees in
/// [`CachedPairCosts`] — sits behind a `Mutex`. One engine per dataset is
/// meant to be shared by reference (or `Arc`) across any number of
/// worker threads; queries never require `&mut self`.
pub struct KorEngine<G> {
    graph: G,
    index: InvertedIndex,
    pairs: CachedPairCosts<G>,
    prep: PreprocessCache,
}

/// What one [`KorEngine::apply_edge_mutations`] call did to the warm
/// state: the new graph epoch plus retain/evict counts per cache
/// family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationReport {
    /// Epoch of the mutated graph (old epoch + 1).
    pub epoch: u64,
    /// Query contexts carried over warm.
    pub contexts_retained: usize,
    /// Query contexts evicted by incremental invalidation.
    pub contexts_evicted: usize,
    /// Opt-2 tree pairs carried over warm.
    pub opt2_retained: usize,
    /// Opt-2 tree pairs evicted.
    pub opt2_evicted: usize,
    /// Keyword reach trees carried over warm.
    pub reach_retained: usize,
    /// Keyword reach trees evicted.
    pub reach_evicted: usize,
    /// Greedy forward trees carried over warm.
    pub pair_trees_retained: usize,
    /// Greedy forward trees evicted.
    pub pair_trees_evicted: usize,
}

impl MutationReport {
    /// Total entries (all families) that survived the batch warm.
    pub fn total_retained(&self) -> usize {
        self.contexts_retained + self.opt2_retained + self.reach_retained + self.pair_trees_retained
    }

    /// Total entries (all families) evicted by the batch.
    pub fn total_evicted(&self) -> usize {
        self.contexts_evicted + self.opt2_evicted + self.reach_evicted + self.pair_trees_evicted
    }
}

// The whole point of the engine is warm reuse across worker threads;
// regressions to `Send`/`Sync` (e.g. an `Rc` or un-guarded cell slipping
// into the graph, index, or tree cache) must fail the build, not bubble
// up as inference errors at distant call sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<KorEngine<std::sync::Arc<Graph>>>();
    assert_send_sync::<KorEngine<&Graph>>();
};

impl<G: AsRef<Graph> + Clone> KorEngine<G> {
    /// Builds the engine (indexes the graph's keywords) with the default
    /// pre-processing cache capacity. Only construction needs `Clone` —
    /// the handle is duplicated into the pair-cost cache; querying is
    /// bound-free beyond `AsRef<Graph>`.
    pub fn new(graph: G) -> Self {
        Self::with_cache_capacity(graph, PreprocessCache::DEFAULT_CAPACITY)
    }

    /// [`Self::new`] with an explicit pre-processing cache capacity (the
    /// number of warm targets / Opt-2 pairs kept; each entry holds two
    /// `O(|V|)` trees). Must be ≥ 1.
    pub fn with_cache_capacity(graph: G, cache_capacity: usize) -> Self {
        let index = InvertedIndex::build(graph.as_ref());
        let pairs = CachedPairCosts::new(graph.clone());
        Self {
            graph,
            index,
            pairs,
            prep: PreprocessCache::with_capacity(cache_capacity),
        }
    }
}

impl KorEngine<Arc<Graph>> {
    /// Applies a mutation batch to this warm engine, producing a new
    /// engine over the mutated graph with **incremental invalidation**:
    /// every cached tree whose invalidation stamp avoids all changed
    /// edges is carried over warm; only entries that actually scanned a
    /// changed edge are evicted. The carried state is bit-for-bit what
    /// a cold engine built from the mutated graph would compute (the
    /// oracle battery in `tests/mutate_oracle.rs` enforces this), so
    /// queries on the returned engine are byte-identical to cold
    /// answers while skipping the retained Dijkstras.
    ///
    /// `self` is untouched and keeps answering for the old graph —
    /// services swap the returned engine in and let in-flight queries
    /// drain on the old one.
    ///
    /// # Errors
    ///
    /// [`MutationError`] if the batch is invalid; nothing is changed.
    pub fn apply_edge_mutations(
        &self,
        mutations: &[EdgeMutation],
    ) -> Result<(KorEngine<Arc<Graph>>, MutationReport), MutationError> {
        let new_graph = Arc::new(self.graph().apply_mutations(mutations)?);
        // Backward (to-target) trees depend on edges whose head they
        // relaxed; forward trees on edges whose tail they reached.
        let heads: Vec<NodeId> = mutations.iter().map(|m| m.to).collect();
        let tails: Vec<NodeId> = mutations.iter().map(|m| m.from).collect();
        let (pairs, pair_trees_retained, pair_trees_evicted) =
            self.pairs.carry_over(new_graph.clone(), &tails);
        let (prep, counts) = self.prep.carry_over(&new_graph, &heads);
        // Keywords are untouched by edge mutations; rebuilding the
        // index on the new graph is deterministic and identical.
        let index = InvertedIndex::build(&new_graph);
        let report = MutationReport {
            epoch: new_graph.epoch(),
            contexts_retained: counts.contexts_retained,
            contexts_evicted: counts.contexts_evicted,
            opt2_retained: counts.opt2_retained,
            opt2_evicted: counts.opt2_evicted,
            reach_retained: counts.reach_retained,
            reach_evicted: counts.reach_evicted,
            pair_trees_retained,
            pair_trees_evicted,
        };
        Ok((
            KorEngine {
                graph: new_graph,
                index,
                pairs,
                prep,
            },
            report,
        ))
    }
}

impl<G: AsRef<Graph>> KorEngine<G> {
    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph.as_ref()
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Number of forward trees memoized so far by the greedy algorithm's
    /// pair-cost cache (instrumentation for long-lived services).
    pub fn cached_tree_count(&self) -> usize {
        self.pairs.cached_tree_count()
    }

    /// The shared pre-processing cache (to-target contexts and Opt-2
    /// bound trees) this engine's queries run against.
    pub fn preprocess_cache(&self) -> &PreprocessCache {
        &self.prep
    }

    /// Snapshot of the pre-processing cache counters (hits, misses,
    /// evictions, trees built).
    pub fn preprocess_stats(&self) -> CacheStats {
        self.prep.stats()
    }

    /// `OSScaling` (Algorithm 1).
    pub fn os_scaling(
        &self,
        query: &KorQuery,
        params: &OsScalingParams,
    ) -> Result<SearchResult, KorError> {
        os_scaling_with_cache(self.graph(), &self.index, query, params, Some(&self.prep))
    }

    /// `BucketBound` (Algorithm 2).
    pub fn bucket_bound(
        &self,
        query: &KorQuery,
        params: &BucketBoundParams,
    ) -> Result<SearchResult, KorError> {
        bucket_bound_with_cache(self.graph(), &self.index, query, params, Some(&self.prep))
    }

    /// The greedy heuristic (Algorithm 3).
    pub fn greedy(
        &self,
        query: &KorQuery,
        params: &GreedyParams,
    ) -> Result<Option<GreedyRoute>, KorError> {
        greedy_with_cache(
            self.graph(),
            &self.index,
            &self.pairs,
            query,
            params,
            Some(&self.prep),
        )
    }

    /// Exact optimum via unscaled label dominance (ground truth).
    pub fn exact(&self, query: &KorQuery) -> Result<SearchResult, KorError> {
        self.exact_with_deadline(query, None)
    }

    /// [`Self::exact`] with a deadline: aborts with
    /// [`KorError::DeadlineExceeded`] once `deadline` passes.
    pub fn exact_with_deadline(
        &self,
        query: &KorQuery,
        deadline: Option<Instant>,
    ) -> Result<SearchResult, KorError> {
        exact_labeling_with_cache(self.graph(), &self.index, query, deadline, Some(&self.prep))
    }

    /// The exhaustive §3.2 baseline (tiny graphs only).
    pub fn brute_force(
        &self,
        query: &KorQuery,
        params: &BruteForceParams,
    ) -> Result<SearchResult, KorError> {
        brute_force(self.graph(), query, params)
    }

    /// KkR top-k via `OSScaling` (§3.5).
    pub fn top_k_os_scaling(
        &self,
        query: &KorQuery,
        params: &OsScalingParams,
        k: usize,
    ) -> Result<TopKResult, KorError> {
        top_k_os_scaling_with_cache(
            self.graph(),
            &self.index,
            query,
            params,
            k,
            Some(&self.prep),
        )
    }

    /// KkR top-k via `BucketBound` (§3.5).
    pub fn top_k_bucket_bound(
        &self,
        query: &KorQuery,
        params: &BucketBoundParams,
        k: usize,
    ) -> Result<TopKResult, KorError> {
        top_k_bucket_bound_with_cache(
            self.graph(),
            &self.index,
            query,
            params,
            k,
            Some(&self.prep),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyMode;
    use kor_graph::fixtures::{figure1, t, v};
    use std::sync::Arc;

    #[test]
    fn all_algorithms_run_through_the_facade() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();

        let os = engine.os_scaling(&q, &OsScalingParams::default()).unwrap();
        let bb = engine
            .bucket_bound(&q, &BucketBoundParams::default())
            .unwrap();
        let ex = engine.exact(&q).unwrap();
        let bf = engine
            .brute_force(&q, &BruteForceParams::default())
            .unwrap();
        let gr = engine.greedy(&q, &GreedyParams::default()).unwrap();
        let tk = engine
            .top_k_os_scaling(&q, &OsScalingParams::default(), 2)
            .unwrap();
        let tb = engine
            .top_k_bucket_bound(&q, &BucketBoundParams::default(), 2)
            .unwrap();

        assert_eq!(ex.route.as_ref().unwrap().objective, 6.0);
        assert_eq!(bf.route.as_ref().unwrap().objective, 6.0);
        assert_eq!(os.route.as_ref().unwrap().objective, 6.0);
        assert!(bb.route.as_ref().unwrap().objective <= 6.0 * 2.4);
        assert!(gr.is_some());
        assert!(!tk.routes.is_empty());
        assert!(!tb.routes.is_empty());
        assert_eq!(engine.index().node_count(), 8);
        assert_eq!(engine.graph().node_count(), 8);
    }

    #[test]
    fn greedy_modes_through_facade() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 5.0).unwrap();
        let kw_first = engine.greedy(&q, &GreedyParams::default()).unwrap();
        let budget_first = engine
            .greedy(
                &q,
                &GreedyParams {
                    mode: GreedyMode::BudgetFirst,
                    ..GreedyParams::default()
                },
            )
            .unwrap();
        if let Some(r) = kw_first {
            assert!(r.covers_keywords);
        }
        if let Some(r) = budget_first {
            assert!(r.within_budget);
        }
    }

    #[test]
    fn arc_engine_owns_its_graph_and_shares_across_threads() {
        // The `Arc<Graph>` instantiation outlives the stack frame that
        // built the graph — the shape a serve-style registry stores.
        let engine = {
            let g = Arc::new(figure1());
            KorEngine::new(g)
        };
        let q = KorQuery::new(engine.graph(), v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let engine = Arc::new(engine);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                let r = engine.os_scaling(&q, &OsScalingParams::default()).unwrap();
                r.route.unwrap().objective
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 6.0);
        }
        // The greedy tree cache is shared engine-wide.
        let gp = GreedyParams::default();
        engine.greedy(&q, &gp).unwrap();
        assert!(engine.cached_tree_count() > 0);
    }

    #[test]
    fn mutations_carry_warm_state_and_match_cold() {
        use kor_graph::{EdgeMutation, MutationError};

        let engine = KorEngine::new(Arc::new(figure1()));
        let q = KorQuery::new(engine.graph(), v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        engine.os_scaling(&q, &OsScalingParams::default()).unwrap();
        engine.greedy(&q, &GreedyParams::default()).unwrap();
        // A second warm target the mutation below cannot touch: only
        // {v0..v3} reach v1, and the changed edge's head is v7.
        engine.preprocess_cache().context(engine.graph(), v(1));

        let batch = [EdgeMutation::scale(v(4), v(7), 1.0, 2.0)];
        let (warm, report) = engine.apply_edge_mutations(&batch).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(warm.graph().epoch(), 1);
        // ctx(v7) scanned edge 4->7 (head v7 stamped) -> evicted;
        // ctx(v1) never did -> carried.
        assert_eq!(report.contexts_evicted, 1);
        assert_eq!(report.contexts_retained, 1);
        // Greedy's forward tree from v0 reaches tail v4 -> evicted.
        assert!(report.pair_trees_evicted >= 1);
        // The prep-cache counters cover contexts + Opt-2 + reach trees
        // (the greedy forward trees live in CachedPairCosts, not here).
        let stats = warm.preprocess_stats();
        assert_eq!(
            stats.retained,
            (report.contexts_retained + report.opt2_retained + report.reach_retained) as u64
        );
        assert_eq!(
            stats.invalidated,
            (report.contexts_evicted + report.opt2_evicted + report.reach_evicted) as u64
        );

        // Warm answers are bit-identical to a cold engine on the
        // mutated graph; the carried ctx(v1) answers without a rebuild.
        let cold = KorEngine::new(Arc::new(warm.graph().clone()));
        let q2 = KorQuery::new(warm.graph(), v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let w = warm.os_scaling(&q2, &OsScalingParams::default()).unwrap();
        let c = cold.os_scaling(&q2, &OsScalingParams::default()).unwrap();
        let (wr, cr) = (w.route.unwrap(), c.route.unwrap());
        assert_eq!(wr.route, cr.route);
        assert_eq!(wr.objective.to_bits(), cr.objective.to_bits());
        assert_eq!(wr.budget.to_bits(), cr.budget.to_bits());
        let before = warm.preprocess_stats().trees_built;
        let (_, hit) = warm.preprocess_cache().context(warm.graph(), v(1));
        assert!(hit, "untouched target must stay warm");
        assert_eq!(warm.preprocess_stats().trees_built, before);

        // The old engine is untouched and still answers on epoch 0.
        assert_eq!(engine.graph().epoch(), 0);
        assert_eq!(engine.graph().edge_count(), warm.graph().edge_count());

        // Typed rejection surfaces unchanged through the facade.
        let err = match engine.apply_edge_mutations(&[EdgeMutation::close(v(1), v(0))]) {
            Err(e) => e,
            Ok(_) => panic!("closing a nonexistent edge must be rejected"),
        };
        assert_eq!(
            err,
            MutationError::UnknownEdge {
                from: v(1),
                to: v(0)
            }
        );
    }

    #[test]
    fn expired_deadline_aborts_searches() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let past = Some(Instant::now());
        let os = OsScalingParams {
            deadline: past,
            ..OsScalingParams::default()
        };
        let bb = BucketBoundParams {
            deadline: past,
            ..BucketBoundParams::default()
        };
        assert!(matches!(
            engine.os_scaling(&q, &os),
            Err(KorError::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.bucket_bound(&q, &bb),
            Err(KorError::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.exact_with_deadline(&q, past),
            Err(KorError::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.top_k_os_scaling(&q, &os, 2),
            Err(KorError::DeadlineExceeded)
        ));
        assert!(matches!(
            engine.top_k_bucket_bound(&q, &bb, 2),
            Err(KorError::DeadlineExceeded)
        ));
    }

    #[test]
    fn generous_deadline_changes_nothing() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let params = OsScalingParams {
            deadline: Some(Instant::now() + std::time::Duration::from_secs(3600)),
            ..OsScalingParams::default()
        };
        let r = engine.os_scaling(&q, &params).unwrap();
        assert_eq!(r.route.unwrap().objective, 6.0);
    }
}
