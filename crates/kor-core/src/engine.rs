//! Convenience facade bundling the index and pre-processing caches.

use kor_apsp::CachedPairCosts;
use kor_graph::Graph;
use kor_index::InvertedIndex;

use crate::brute::{brute_force, BruteForceParams};
use crate::bucket::{bucket_bound, top_k_bucket_bound};
use crate::error::KorError;
use crate::greedy::{greedy, GreedyParams, GreedyRoute};
use crate::labeling::{exact_labeling, os_scaling, top_k_os_scaling};
use crate::params::{BucketBoundParams, OsScalingParams};
use crate::query::KorQuery;
use crate::result::{SearchResult, TopKResult};

/// One-stop query engine: owns the inverted index and the forward-tree
/// cache used by the greedy algorithm, mirroring the paper's setup where
/// the index and pre-processing are built once per dataset.
pub struct KorEngine<'g> {
    graph: &'g Graph,
    index: InvertedIndex,
    pairs: CachedPairCosts<'g>,
}

impl<'g> KorEngine<'g> {
    /// Builds the engine (indexes the graph's keywords).
    pub fn new(graph: &'g Graph) -> Self {
        Self {
            graph,
            index: InvertedIndex::build(graph),
            pairs: CachedPairCosts::new(graph),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// `OSScaling` (Algorithm 1).
    pub fn os_scaling(
        &self,
        query: &KorQuery,
        params: &OsScalingParams,
    ) -> Result<SearchResult, KorError> {
        os_scaling(self.graph, &self.index, query, params)
    }

    /// `BucketBound` (Algorithm 2).
    pub fn bucket_bound(
        &self,
        query: &KorQuery,
        params: &BucketBoundParams,
    ) -> Result<SearchResult, KorError> {
        bucket_bound(self.graph, &self.index, query, params)
    }

    /// The greedy heuristic (Algorithm 3).
    pub fn greedy(
        &self,
        query: &KorQuery,
        params: &GreedyParams,
    ) -> Result<Option<GreedyRoute>, KorError> {
        greedy(self.graph, &self.index, &self.pairs, query, params)
    }

    /// Exact optimum via unscaled label dominance (ground truth).
    pub fn exact(&self, query: &KorQuery) -> Result<SearchResult, KorError> {
        exact_labeling(self.graph, &self.index, query)
    }

    /// The exhaustive §3.2 baseline (tiny graphs only).
    pub fn brute_force(
        &self,
        query: &KorQuery,
        params: &BruteForceParams,
    ) -> Result<SearchResult, KorError> {
        brute_force(self.graph, query, params)
    }

    /// KkR top-k via `OSScaling` (§3.5).
    pub fn top_k_os_scaling(
        &self,
        query: &KorQuery,
        params: &OsScalingParams,
        k: usize,
    ) -> Result<TopKResult, KorError> {
        top_k_os_scaling(self.graph, &self.index, query, params, k)
    }

    /// KkR top-k via `BucketBound` (§3.5).
    pub fn top_k_bucket_bound(
        &self,
        query: &KorQuery,
        params: &BucketBoundParams,
        k: usize,
    ) -> Result<TopKResult, KorError> {
        top_k_bucket_bound(self.graph, &self.index, query, params, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyMode;
    use kor_graph::fixtures::{figure1, t, v};

    #[test]
    fn all_algorithms_run_through_the_facade() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();

        let os = engine.os_scaling(&q, &OsScalingParams::default()).unwrap();
        let bb = engine
            .bucket_bound(&q, &BucketBoundParams::default())
            .unwrap();
        let ex = engine.exact(&q).unwrap();
        let bf = engine
            .brute_force(&q, &BruteForceParams::default())
            .unwrap();
        let gr = engine.greedy(&q, &GreedyParams::default()).unwrap();
        let tk = engine
            .top_k_os_scaling(&q, &OsScalingParams::default(), 2)
            .unwrap();
        let tb = engine
            .top_k_bucket_bound(&q, &BucketBoundParams::default(), 2)
            .unwrap();

        assert_eq!(ex.route.as_ref().unwrap().objective, 6.0);
        assert_eq!(bf.route.as_ref().unwrap().objective, 6.0);
        assert_eq!(os.route.as_ref().unwrap().objective, 6.0);
        assert!(bb.route.as_ref().unwrap().objective <= 6.0 * 2.4);
        assert!(gr.is_some());
        assert!(!tk.routes.is_empty());
        assert!(!tb.routes.is_empty());
        assert_eq!(engine.index().node_count(), 8);
        assert_eq!(engine.graph().node_count(), 8);
    }

    #[test]
    fn greedy_modes_through_facade() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 5.0).unwrap();
        let kw_first = engine.greedy(&q, &GreedyParams::default()).unwrap();
        let budget_first = engine
            .greedy(
                &q,
                &GreedyParams {
                    mode: GreedyMode::BudgetFirst,
                    ..GreedyParams::default()
                },
            )
            .unwrap();
        if let Some(r) = kw_first {
            assert!(r.covers_keywords);
        }
        if let Some(r) = budget_first {
            assert!(r.within_budget);
        }
    }
}
