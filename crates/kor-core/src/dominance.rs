//! Label dominance store (Definition 6 and the KkR k-dominance of §3.5).

use crate::label::{Label, LabelArena};

/// Which objective representation dominance compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomMode {
    /// Compare scaled objective scores `ÔS` — the paper's `OSScaling` /
    /// `BucketBound` behaviour (approximate, bounded label count).
    Scaled,
    /// Compare exact objective scores `OS` — yields the exact optimum
    /// (the `ε → 0` limit) at the cost of more labels.
    Exact,
}

impl DomMode {
    /// A monotone `u64` ordering key for the objective under this mode.
    ///
    /// Exact mode uses the IEEE-754 bit pattern, which orders identically
    /// to the value for non-negative floats — including `+inf`, whose bit
    /// pattern sorts above every finite objective, so searches whose
    /// objectives overflow to infinity (e.g. after extreme `update_edges`
    /// scale multipliers) keep a total, monotone order instead of
    /// misbehaving. Edge objectives are validated positive, so negative
    /// values cannot occur.
    #[inline]
    fn key(self, label: &Label) -> u64 {
        match self {
            DomMode::Scaled => label.scaled,
            DomMode::Exact => label.objective.to_bits(),
        }
    }
}

/// One stored label: `(objective key, budget, arena id)`.
type Entry = (u64, f64, u32);

/// The mask groups of one touched node: a short list of
/// `(λ, Pareto frontier)` pairs scanned linearly.
type MaskGroups = Vec<(u64, Vec<Entry>)>;

/// Slot-table sentinel: node not touched yet.
const NO_SLOT: u32 = u32::MAX;

/// Per-node label store with (k-)dominance checks.
///
/// A label `L_a` dominates `L_b` iff `L_a.λ ⊇ L_b.λ`, `ÔS_a ≤ ÔS_b`, and
/// `BS_a ≤ BS_b` (Definition 6). A label is rejected when at least `k`
/// alive labels dominate it (`k = 1` for plain KOR); inserting a label
/// evicts stored labels that become k-dominated.
///
/// Labels are grouped by `(node, λ)`. The node level is a dense
/// `node → slot` table (one indexed load — no hashing in the hottest
/// lookup of the engine); the mask level is a short linear list per
/// node, because a search rarely sees more than a handful of distinct
/// coverage masks on one node. Cross-mask dominance is then one
/// branchless `u64` test per group (`μ & λ == λ` for supersets,
/// `μ & λ == μ` for subsets) instead of enumerating the `2^(m−|λ|)`
/// possible masks. For `k = 1` each group is a **Pareto frontier**:
/// sorted by ascending objective key with strictly decreasing budgets, so
/// a dominance test is one binary search and evictions splice a
/// contiguous range — the steady insert path allocates nothing. For
/// `k > 1` groups are plain lists scanned linearly (top-k workloads are
/// small); the victim scratch buffer is reused across inserts.
///
/// The slot table costs `O(|V|)` per search — the same shape as the
/// per-query keyword-mask table, and far cheaper than the per-label
/// hashing it replaces.
#[derive(Debug)]
pub struct LabelStore {
    mode: DomMode,
    k: usize,
    full_mask: u64,
    /// Dense `node → index into groups` table (`NO_SLOT` = untouched).
    slots: Vec<u32>,
    /// Mask groups of touched nodes, in first-touch order.
    groups: Vec<MaskGroups>,
    /// Victim ids reused across `try_insert_k` calls.
    scratch: Vec<u32>,
    dominated: u64,
    evicted: u64,
}

impl LabelStore {
    /// Creates a store for query mask universe `full_mask`, dominance
    /// threshold `k ≥ 1`, and a graph of `node_count` nodes. Nodes
    /// acquire mask-group storage on first touch.
    pub fn new(mode: DomMode, full_mask: u64, k: usize, node_count: usize) -> Self {
        assert!(k >= 1, "dominance threshold must be ≥ 1");
        Self {
            mode,
            k,
            full_mask,
            slots: vec![NO_SLOT; node_count],
            groups: Vec::new(),
            scratch: Vec::new(),
            dominated: 0,
            evicted: 0,
        }
    }

    /// Labels rejected at insert time so far.
    pub fn dominated_count(&self) -> u64 {
        self.dominated
    }

    /// Stored labels evicted by newer labels so far.
    pub fn evicted_count(&self) -> u64 {
        self.evicted
    }

    /// The mask groups of `node`, if it was ever touched.
    #[inline]
    fn node_groups(&self, node: u32) -> Option<&MaskGroups> {
        match self.slots.get(node as usize) {
            Some(&slot) if slot != NO_SLOT => Some(&self.groups[slot as usize]),
            _ => None,
        }
    }

    /// The mask groups of `node`, allocating its slot on first touch.
    #[inline]
    fn node_groups_mut(&mut self, node: u32) -> &mut MaskGroups {
        let idx = node as usize;
        if idx >= self.slots.len() {
            // Defensive: labels never carry out-of-range ids, but a grow
            // beats an index panic if that invariant ever slips.
            self.slots.resize(idx + 1, NO_SLOT);
        }
        if self.slots[idx] == NO_SLOT {
            self.slots[idx] = self.groups.len() as u32;
            self.groups.push(Vec::new());
        }
        &mut self.groups[self.slots[idx] as usize]
    }

    /// Number of alive labels currently stored on `node`.
    pub fn alive_on(&self, arena: &LabelArena, node: usize) -> usize {
        self.node_groups(node as u32)
            .into_iter()
            .flat_map(|groups| groups.iter())
            .flat_map(|(_, group)| group.iter())
            .filter(|&&(_, _, id)| arena.get(id).alive)
            .count()
    }

    /// Attempts to insert label `id`. Returns `false` (and records a
    /// domination) if `k` alive labels already dominate it; otherwise
    /// inserts it and evicts labels it k-dominates.
    pub fn try_insert(&mut self, arena: &mut LabelArena, id: u32) -> bool {
        let label = *arena.get(id);
        debug_assert_eq!(
            label.mask & !self.full_mask,
            0,
            "label mask outside the query universe"
        );
        let key = self.mode.key(&label);
        if self.k == 1 {
            self.try_insert_frontier(arena, id, &label, key)
        } else {
            self.try_insert_k(arena, id, &label, key)
        }
    }

    /// Fast path (`k = 1`): Pareto frontiers per `(node, mask)`.
    fn try_insert_frontier(
        &mut self,
        arena: &mut LabelArena,
        id: u32,
        label: &Label,
        key: u64,
    ) -> bool {
        let node = label.node.0;

        if let Some(groups) = self.node_groups(node) {
            // Dominance test: in every superset-mask frontier, the
            // candidate is dominated iff the entry with the largest key ≤
            // `key` has budget ≤ `label.budget` (budgets fall as keys
            // grow). One branchless mask test per present group.
            for (mask, group) in groups {
                if mask & label.mask == label.mask {
                    let pos = group.partition_point(|e| e.0 <= key);
                    if pos > 0 && group[pos - 1].1 <= label.budget {
                        self.dominated += 1;
                        return false;
                    }
                }
            }
        }

        // Eviction: in every subset-mask frontier, entries with key ≥
        // `key` and budget ≥ `label.budget` form a contiguous run,
        // spliced in place (no collected mask list).
        if let Some(&slot) = self.slots.get(node as usize) {
            if slot != NO_SLOT {
                let mut evicted = 0u64;
                for (mask, group) in self.groups[slot as usize].iter_mut() {
                    if *mask & label.mask == *mask {
                        let start = group.partition_point(|e| e.0 < key);
                        let mut end = start;
                        while end < group.len() && group[end].1 >= label.budget {
                            end += 1;
                        }
                        if end > start {
                            for &(_, _, victim) in &group[start..end] {
                                arena.kill(victim);
                            }
                            evicted += (end - start) as u64;
                            group.drain(start..end);
                        }
                    }
                }
                self.evicted += evicted;
            }
        }

        let groups = self.node_groups_mut(node);
        let group = match groups.iter_mut().position(|(m, _)| *m == label.mask) {
            Some(i) => &mut groups[i].1,
            None => {
                groups.push((label.mask, Vec::new()));
                &mut groups.last_mut().expect("just pushed").1
            }
        };
        let pos = group.partition_point(|e| e.0 < key);
        group.insert(pos, (key, label.budget, id));
        debug_assert!(
            group.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 > w[1].1),
            "frontier invariant broken"
        );
        true
    }

    /// General path (`k ≥ 2`): linear scans with k-dominance counting.
    fn try_insert_k(&mut self, arena: &mut LabelArena, id: u32, label: &Label, key: u64) -> bool {
        let node = label.node.0;
        if self.count_dominators(arena, node, label.mask, key, label.budget, self.k, id) >= self.k {
            self.dominated += 1;
            return false;
        }

        // Evict stored labels now k-dominated by the newcomer. The victim
        // buffer is owned scratch, cleared (not freed) per insert.
        let mut victims = std::mem::take(&mut self.scratch);
        victims.clear();
        if let Some(groups) = self.node_groups(node) {
            for (mask, group) in groups {
                if mask & label.mask != *mask {
                    continue;
                }
                for &(okey, obud, other) in group {
                    if other == id {
                        continue;
                    }
                    if arena.get(other).alive && key <= okey && label.budget <= obud {
                        victims.push(other);
                    }
                }
            }
        }
        for &victim in &victims {
            let v = *arena.get(victim);
            // The newcomer counts as one dominator and is not yet in the
            // store, hence limit k-1 over stored labels.
            let dooms = 1 + self.count_dominators(
                arena,
                node,
                v.mask,
                self.mode.key(&v),
                v.budget,
                self.k - 1,
                victim,
            ) >= self.k;
            if dooms {
                arena.kill(victim);
                self.evicted += 1;
            }
        }
        self.scratch = victims;

        // Insert and lazily compact dead ids in the target group.
        let groups = self.node_groups_mut(node);
        let group = match groups.iter_mut().position(|(m, _)| *m == label.mask) {
            Some(i) => &mut groups[i].1,
            None => {
                groups.push((label.mask, Vec::new()));
                &mut groups.last_mut().expect("just pushed").1
            }
        };
        group.retain(|&(_, _, other)| arena.get(other).alive);
        group.push((key, label.budget, id));
        true
    }

    /// Counts alive labels dominating a hypothetical label with the given
    /// coordinates, stopping at `limit`.
    #[allow(clippy::too_many_arguments)]
    fn count_dominators(
        &self,
        arena: &LabelArena,
        node: u32,
        mask: u64,
        key: u64,
        budget: f64,
        limit: usize,
        exclude: u32,
    ) -> usize {
        let mut count = 0;
        let Some(groups) = self.node_groups(node) else {
            return 0;
        };
        for (gmask, group) in groups {
            if gmask & mask != mask {
                continue;
            }
            for &(okey, obud, other) in group {
                if other == exclude {
                    continue;
                }
                if arena.get(other).alive && okey <= key && obud <= budget {
                    count += 1;
                    if count >= limit {
                        return count;
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::NO_LABEL;
    use kor_graph::NodeId;

    fn mk(arena: &mut LabelArena, node: u32, mask: u64, scaled: u64, budget: f64) -> u32 {
        arena.push(Label {
            node: NodeId(node),
            mask,
            scaled,
            objective: scaled as f64,
            budget,
            parent: NO_LABEL,
            alive: true,
        })
    }

    fn store(k: usize) -> LabelStore {
        LabelStore::new(DomMode::Scaled, 0b111, k, 16)
    }

    #[test]
    fn paper_example_l04_dominates_l14() {
        // Example 1: L04 = ({t1,t2,t4}, 100, 5, 7) dominates
        // L14 = ({t1,t2,t4}, 120, 6, 11) on the same node.
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let l04 = mk(&mut arena, 0, 0b111, 100, 7.0);
        assert!(s.try_insert(&mut arena, l04));
        let l14 = mk(&mut arena, 0, 0b111, 120, 11.0);
        assert!(!s.try_insert(&mut arena, l14));
        assert_eq!(s.dominated_count(), 1);
    }

    #[test]
    fn superset_mask_dominates_subset() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let big = mk(&mut arena, 1, 0b011, 10, 5.0);
        assert!(s.try_insert(&mut arena, big));
        // Same scores, smaller coverage → dominated.
        let small = mk(&mut arena, 1, 0b001, 10, 5.0);
        assert!(!s.try_insert(&mut arena, small));
    }

    #[test]
    fn subset_mask_does_not_dominate() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let small = mk(&mut arena, 1, 0b001, 1, 1.0);
        assert!(s.try_insert(&mut arena, small));
        // Better coverage, worse scores → incomparable, kept.
        let big = mk(&mut arena, 1, 0b011, 5, 5.0);
        assert!(s.try_insert(&mut arena, big));
    }

    #[test]
    fn incomparable_scores_coexist() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let a = mk(&mut arena, 2, 0b1, 10, 1.0);
        let b = mk(&mut arena, 2, 0b1, 1, 10.0);
        assert!(s.try_insert(&mut arena, a));
        assert!(s.try_insert(&mut arena, b));
        assert_eq!(s.alive_on(&arena, 2), 2);
    }

    #[test]
    fn newcomer_evicts_dominated() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let old = mk(&mut arena, 0, 0b001, 100, 9.0);
        assert!(s.try_insert(&mut arena, old));
        let newer = mk(&mut arena, 0, 0b011, 50, 3.0);
        assert!(s.try_insert(&mut arena, newer));
        assert!(!arena.get(old).alive, "old label must be tombstoned");
        assert_eq!(s.evicted_count(), 1);
        assert_eq!(s.alive_on(&arena, 0), 1);
    }

    #[test]
    fn eviction_removes_contiguous_run_only() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        // Frontier: (10, 9.0), (20, 7.0), (30, 5.0), (40, 3.0)
        let ids: Vec<u32> = [(10u64, 9.0f64), (20, 7.0), (30, 5.0), (40, 3.0)]
            .iter()
            .map(|&(k, b)| {
                let id = mk(&mut arena, 0, 0b1, k, b);
                assert!(s.try_insert(&mut arena, id));
                id
            })
            .collect();
        // (25, 4.0) evicts (30, 5.0) but not (40, 3.0) or the cheaper keys.
        let newcomer = mk(&mut arena, 0, 0b1, 25, 4.0);
        assert!(s.try_insert(&mut arena, newcomer));
        assert!(arena.get(ids[0]).alive);
        assert!(arena.get(ids[1]).alive);
        assert!(!arena.get(ids[2]).alive);
        assert!(arena.get(ids[3]).alive);
        assert_eq!(s.alive_on(&arena, 0), 4);
    }

    #[test]
    fn different_nodes_never_interact() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let a = mk(&mut arena, 0, 0b111, 1, 1.0);
        let b = mk(&mut arena, 1, 0b001, 100, 100.0);
        assert!(s.try_insert(&mut arena, a));
        assert!(s.try_insert(&mut arena, b));
        assert!(arena.get(b).alive);
    }

    #[test]
    fn identical_label_is_dominated() {
        let mut arena = LabelArena::new();
        let mut s = store(1);
        let a = mk(&mut arena, 3, 0b010, 7, 2.0);
        assert!(s.try_insert(&mut arena, a));
        let twin = mk(&mut arena, 3, 0b010, 7, 2.0);
        assert!(!s.try_insert(&mut arena, twin));
        // ...and the original survives (non-strict dominance only rejects
        // the newcomer, never evicts an equal incumbent).
        assert!(arena.get(a).alive);
    }

    #[test]
    fn k2_needs_two_dominators() {
        let mut arena = LabelArena::new();
        let mut s = store(2);
        let a = mk(&mut arena, 0, 0b11, 10, 2.0);
        let b = mk(&mut arena, 0, 0b11, 12, 2.5);
        let c = mk(&mut arena, 0, 0b11, 15, 3.0);
        assert!(s.try_insert(&mut arena, a)); // no dominators
        assert!(s.try_insert(&mut arena, b)); // 1 dominator (a) < k
        assert!(!s.try_insert(&mut arena, c)); // dominated by a and b
        assert_eq!(s.dominated_count(), 1);
        // both incumbents stay alive under k = 2
        assert!(arena.get(a).alive && arena.get(b).alive);
    }

    #[test]
    fn k2_eviction_requires_two_dominators() {
        let mut arena = LabelArena::new();
        let mut s = store(2);
        let worst = mk(&mut arena, 0, 0b01, 20, 9.0);
        assert!(s.try_insert(&mut arena, worst));
        // One better label arrives: worst has only 1 dominator, survives.
        let better = mk(&mut arena, 0, 0b01, 10, 5.0);
        assert!(s.try_insert(&mut arena, better));
        assert!(arena.get(worst).alive);
        // A second better label: now worst has 2 dominators and dies.
        let best = mk(&mut arena, 0, 0b11, 5, 1.0);
        assert!(s.try_insert(&mut arena, best));
        assert!(!arena.get(worst).alive);
        assert_eq!(s.evicted_count(), 1);
    }

    #[test]
    fn exact_mode_compares_objectives() {
        let mut arena = LabelArena::new();
        let mut s = LabelStore::new(DomMode::Exact, 0b1, 1, 16);
        // Same scaled score but different exact objective: in Exact mode
        // the cheaper objective dominates.
        let a = arena.push(Label {
            node: NodeId(0),
            mask: 0b1,
            scaled: 5,
            objective: 1.0,
            budget: 1.0,
            parent: NO_LABEL,
            alive: true,
        });
        let b = arena.push(Label {
            node: NodeId(0),
            mask: 0b1,
            scaled: 5,
            objective: 2.0,
            budget: 1.0,
            parent: NO_LABEL,
            alive: true,
        });
        assert!(s.try_insert(&mut arena, a));
        assert!(!s.try_insert(&mut arena, b));
    }

    #[test]
    fn wide_masks_above_bit_31_group_correctly() {
        // Coverage bits past the old u32 width must still drive
        // dominance: bit 40 ⊃ bit 40∩0 etc.
        let full = (1u64 << 41) | (1u64 << 40) | 1;
        let mut arena = LabelArena::new();
        let mut s = LabelStore::new(DomMode::Scaled, full, 1, 16);
        let big = mk(&mut arena, 0, (1u64 << 40) | 1, 10, 5.0);
        assert!(s.try_insert(&mut arena, big));
        let small = mk(&mut arena, 0, 1u64 << 40, 10, 5.0);
        assert!(!s.try_insert(&mut arena, small), "superset must dominate");
        let other = mk(&mut arena, 0, 1u64 << 41, 10, 5.0);
        assert!(s.try_insert(&mut arena, other), "disjoint mask coexists");
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn zero_k_panics() {
        let _ = LabelStore::new(DomMode::Scaled, 0, 0, 16);
    }

    /// Brute-force reference check of the frontier path on a random
    /// label stream.
    #[test]
    fn frontier_agrees_with_naive_reference() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut arena = LabelArena::new();
        let mut s = LabelStore::new(DomMode::Scaled, 0b11, 1, 16);
        // naive mirror: Vec of alive (mask, key, budget)
        let mut naive: Vec<(u64, u64, f64, u32)> = Vec::new();
        for _ in 0..500 {
            let mask = rng.gen_range(0..4u64);
            let key = rng.gen_range(0..30u64);
            let budget = rng.gen_range(0..30) as f64;
            let id = mk(&mut arena, 0, mask, key, budget);
            let dominated = naive.iter().any(|&(m, k, b, nid)| {
                arena.get(nid).alive && m & mask == mask && k <= key && b <= budget
            });
            let inserted = s.try_insert(&mut arena, id);
            assert_eq!(
                inserted, !dominated,
                "divergence at mask={mask} key={key} b={budget}"
            );
            if inserted {
                // every stored label the newcomer dominates must be dead
                for &(m, k, b, nid) in naive.iter() {
                    if mask & m == m && key <= k && budget <= b && nid != id {
                        assert!(
                            !arena.get(nid).alive,
                            "frontier failed to evict ({m:#b},{k},{b})"
                        );
                    }
                }
                naive.push((mask, key, budget, id));
            }
            naive.retain(|&(_, _, _, nid)| arena.get(nid).alive);
        }
    }

    /// Dominance ordering keys stay monotone — and nothing panics — when
    /// objectives are driven to `+inf` (the core-layer mirror of the
    /// serve fuzz family where `update_edges` scale multipliers overflow
    /// edge weights).
    #[test]
    fn exact_keys_stay_monotone_under_infinite_objectives() {
        let values = [0.0, 1.0, 1e100, 1e308, f64::MAX, f64::INFINITY];
        for w in values.windows(2) {
            let (a, b) = (w[0], w[1]);
            let la = Label {
                node: NodeId(0),
                mask: 0,
                scaled: 0,
                objective: a,
                budget: 0.0,
                parent: NO_LABEL,
                alive: true,
            };
            let lb = Label { objective: b, ..la };
            assert!(
                DomMode::Exact.key(&la) < DomMode::Exact.key(&lb),
                "key order broke between {a} and {b}"
            );
        }
    }

    /// Property test: a random label stream with non-finite objectives
    /// and budgets mixed in neither panics nor diverges from the naive
    /// dominance reference (Exact mode, where `inf` objectives actually
    /// reach the ordering key).
    #[test]
    fn frontier_survives_non_finite_costs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1999);
        let mut arena = LabelArena::new();
        let mut s = LabelStore::new(DomMode::Exact, 0b11, 1, 4);
        let mut naive: Vec<(u64, f64, f64, u32)> = Vec::new();
        for step in 0..400 {
            let mask = rng.gen_range(0..4u64);
            let objective = match rng.gen_range(0..4u32) {
                0 => f64::INFINITY,
                1 => 1e308 + 1e308 * rng.gen_range(0..2) as f64, // 1e308 or inf
                _ => rng.gen_range(0..30) as f64,
            };
            let budget = match rng.gen_range(0..5u32) {
                0 => f64::INFINITY,
                _ => rng.gen_range(0..30) as f64,
            };
            let id = arena.push(Label {
                node: NodeId(0),
                mask,
                scaled: 0,
                objective,
                budget,
                parent: NO_LABEL,
                alive: true,
            });
            let key = objective.to_bits();
            let dominated = naive.iter().any(|&(m, k, b, nid)| {
                arena.get(nid).alive && m & mask == mask && k.to_bits() <= key && b <= budget
            });
            let inserted = s.try_insert(&mut arena, id);
            assert_eq!(inserted, !dominated, "divergence at step {step}");
            if inserted {
                naive.push((mask, objective, budget, id));
            }
            naive.retain(|&(_, _, _, nid)| arena.get(nid).alive);
        }
    }
}
