//! The label-search engine: `OSScaling` (Algorithm 1), its exact-dominance
//! variant, and the KkR top-k extension (§3.5).
//!
//! One engine implements all three because they share every mechanism —
//! label creation (Definition 7), dominance (Definition 6 / k-dominance),
//! the priority order (Definition 8), the feasibility and upper-bound
//! pruning of Algorithm 1, and the two optimization strategies — and
//! differ only in the dominance key (scaled vs. exact objective) and in
//! how many result routes are tracked.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

use kor_apsp::{KeywordReach, Landmarks, QueryContext, TargetBounds};
use kor_graph::{Graph, NodeId, QueryKeywords, Route};
use kor_index::InvertedIndex;

use crate::cache::{build_opt2_trees, Opt2Trees, PreprocessCache};
use crate::dominance::{DomMode, LabelStore};
use crate::error::KorError;
use crate::label::{Label, LabelArena, LabelSnapshot, NO_LABEL};
use crate::params::{OsScalingParams, ScaleAnchor};
use crate::query::KorQuery;
use crate::result::{RouteResult, SearchResult, TopKResult};
use crate::scale::Scaler;
use crate::stats::SearchStats;

/// How many queue pops pass between two deadline checks. Calling
/// `Instant::now()` per pop costs a syscall-ish vDSO hit in the hottest
/// loop of the engine; a stride this size keeps deadline latency well
/// under a millisecond while making the check free in the aggregate.
/// The first pop always checks, so an already-expired deadline aborts
/// before any work happens.
pub(crate) const DEADLINE_STRIDE: u64 = 1024;

/// Strided deadline checker shared by every search loop.
///
/// The counter is **per search** — one ticker lives for the whole engine
/// run, never reset per bucket or beam — so a deadline can be starved by
/// at most `DEADLINE_STRIDE − 1` pops no matter how the queue is
/// structured. The first call always checks, so an already-expired
/// deadline aborts before any expansion work happens.
pub(crate) struct DeadlineTicker {
    deadline: Option<Instant>,
    pops: u64,
}

impl DeadlineTicker {
    pub(crate) fn new(deadline: Option<Instant>) -> Self {
        Self { deadline, pops: 0 }
    }

    /// Counts one queue pop; errors with
    /// [`KorError::DeadlineExceeded`] when a configured deadline has
    /// passed at a checked pop (the first, then every
    /// `DEADLINE_STRIDE`-th).
    #[inline]
    pub(crate) fn tick(&mut self) -> Result<(), KorError> {
        if self.pops % DEADLINE_STRIDE == 0 {
            if let Some(deadline) = self.deadline {
                if Instant::now() >= deadline {
                    return Err(KorError::DeadlineExceeded);
                }
            }
        }
        self.pops += 1;
        Ok(())
    }
}

/// The scaler for a search: anchored to pinned reference extrema when
/// the params carry a [`ScaleAnchor`], otherwise read from `graph`.
pub(crate) fn scaler_for(
    graph: &Graph,
    anchor: Option<ScaleAnchor>,
    epsilon: f64,
    delta: f64,
) -> Scaler {
    match anchor {
        Some(a) => Scaler::from_extrema(a.o_min, a.b_min, epsilon, delta),
        None => Scaler::new(graph, epsilon, delta),
    }
}

/// Runs `OSScaling` (Algorithm 1): the `1/(1−ε)`-approximation.
pub fn os_scaling(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &OsScalingParams,
) -> Result<SearchResult, KorError> {
    os_scaling_with_cache(graph, index, query, params, None)
}

/// [`os_scaling`] reusing a shared [`PreprocessCache`] for the to-target
/// trees and Opt-2 bounds. Results are byte-identical to the cold path;
/// only the setup cost changes. `None` builds everything per call.
pub fn os_scaling_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &OsScalingParams,
    cache: Option<&PreprocessCache>,
) -> Result<SearchResult, KorError> {
    params.validate()?;
    let cfg = EngineConfig {
        mode: ScoreMode::Scaled(scaler_for(
            graph,
            params.anchor,
            params.epsilon,
            query.budget,
        )),
        k: 1,
        use_opt1: params.use_opt1,
        use_opt2: params.use_opt2,
        infrequent_threshold: params.infrequent_threshold,
        collect_labels: params.collect_labels,
        deadline: params.deadline,
    };
    let mut engine = Engine::new(graph, index, query, cfg, cache);
    let mut routes = engine.run()?;
    Ok(SearchResult {
        route: routes.pop(),
        stats: engine.stats,
        labels: engine.snapshots,
    })
}

/// Runs the exact variant: label dominance on unscaled objective scores,
/// which preserves at least one optimal label chain and therefore returns
/// the true optimum (the `ε → 0` limit of `OSScaling`). Exponentially
/// more labels in the worst case — intended as the accuracy ground truth.
pub fn exact_labeling(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
) -> Result<SearchResult, KorError> {
    exact_labeling_with_deadline(graph, index, query, None)
}

/// [`exact_labeling`] with an optional deadline: the search aborts with
/// [`KorError::DeadlineExceeded`] once `deadline` passes. Long-lived
/// services use this to bound the (worst-case exponential) exact search.
pub fn exact_labeling_with_deadline(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    deadline: Option<Instant>,
) -> Result<SearchResult, KorError> {
    exact_labeling_with_cache(graph, index, query, deadline, None)
}

/// [`exact_labeling_with_deadline`] reusing a shared [`PreprocessCache`].
pub fn exact_labeling_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    deadline: Option<Instant>,
    cache: Option<&PreprocessCache>,
) -> Result<SearchResult, KorError> {
    let cfg = EngineConfig {
        mode: ScoreMode::Exact,
        k: 1,
        use_opt1: true,
        use_opt2: true,
        infrequent_threshold: 0.01,
        collect_labels: false,
        deadline,
    };
    let mut engine = Engine::new(graph, index, query, cfg, cache);
    let mut routes = engine.run()?;
    Ok(SearchResult {
        route: routes.pop(),
        stats: engine.stats,
        labels: engine.snapshots,
    })
}

/// Runs the KkR extension of `OSScaling`: k-dominance plus a top-k result
/// set whose k-th objective serves as the pruning bound `U`.
pub fn top_k_os_scaling(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &OsScalingParams,
    k: usize,
) -> Result<TopKResult, KorError> {
    top_k_os_scaling_with_cache(graph, index, query, params, k, None)
}

/// [`top_k_os_scaling`] reusing a shared [`PreprocessCache`].
pub fn top_k_os_scaling_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    params: &OsScalingParams,
    k: usize,
    cache: Option<&PreprocessCache>,
) -> Result<TopKResult, KorError> {
    params.validate()?;
    if k == 0 {
        return Err(KorError::InvalidK);
    }
    let cfg = EngineConfig {
        mode: ScoreMode::Scaled(scaler_for(
            graph,
            params.anchor,
            params.epsilon,
            query.budget,
        )),
        k,
        use_opt1: params.use_opt1,
        use_opt2: params.use_opt2,
        infrequent_threshold: params.infrequent_threshold,
        collect_labels: params.collect_labels,
        deadline: params.deadline,
    };
    let mut engine = Engine::new(graph, index, query, cfg, cache);
    let routes = engine.run()?;
    Ok(TopKResult {
        routes,
        stats: engine.stats,
    })
}

/// Acquires the to-target [`QueryContext`] for `query`, from the cache
/// when one is supplied, recording hit/miss/build counters in `stats`.
pub(crate) fn acquire_context(
    graph: &Graph,
    target: NodeId,
    cache: Option<&PreprocessCache>,
    stats: &mut SearchStats,
) -> Arc<QueryContext> {
    match cache {
        Some(cache) => {
            let (ctx, hit) = cache.context(graph, target);
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
                stats.trees_built += 2;
            }
            ctx
        }
        None => {
            stats.trees_built += 2;
            Arc::new(QueryContext::new(graph, target))
        }
    }
}

/// The Optimization-Strategy-1 keyword reach for `query`, assembled from
/// cached per-keyword trees when a cache is supplied (each tree depends
/// only on the keyword's postings, so one build serves every query
/// mentioning the keyword), built cold otherwise. Identical either way.
pub(crate) fn acquire_reach(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    cache: Option<&PreprocessCache>,
    stats: &mut SearchStats,
) -> KeywordReach {
    match cache {
        Some(cache) => {
            let trees = query
                .keywords
                .ids()
                .iter()
                .map(|&kw| {
                    let (tree, hit) = cache.reach_tree(graph, kw, index.postings(kw));
                    if hit {
                        stats.cache_hits += 1;
                    } else {
                        stats.cache_misses += 1;
                        stats.trees_built += 1;
                    }
                    tree
                })
                .collect();
            KeywordReach::from_trees(trees)
        }
        None => KeywordReach::new(
            graph,
            &query.keywords,
            &index.query_postings(&query.keywords),
        ),
    }
}

/// Landmark (ALT) lower bounds fixed to one query's target.
///
/// Only built from a cache (the vectors are a per-dataset product; a
/// cold one-shot search has nothing to amortize them over). The combined
/// prune bound `max(τ/σ, ALT)` equals the exact τ/σ bound on every node
/// — ALT is admissible, the context distances are exact — so warm and
/// cold searches stay bit-identical; the property tests in
/// `tests/property.rs` pin the admissibility inequality itself.
pub(crate) struct AltBounds {
    lm: Arc<Landmarks>,
    target: TargetBounds,
}

impl AltBounds {
    /// Acquires the dataset landmarks from `cache` and fixes them to
    /// `target`. `None` when there is no cache or no landmark could be
    /// selected (empty graph).
    pub(crate) fn acquire(
        graph: &Graph,
        target: NodeId,
        cache: Option<&PreprocessCache>,
    ) -> Option<Self> {
        let cache = cache?;
        let (lm, _) = cache.landmarks(graph);
        if lm.is_empty() {
            return None;
        }
        let target = lm.for_target(target);
        Some(Self { lm, target })
    }

    /// Triangle lower bound on the remaining objective `d(v → target)`.
    #[inline]
    pub(crate) fn objective_bound(&self, v: NodeId) -> f64 {
        self.lm.objective_bound(v, &self.target)
    }

    /// Triangle lower bound on the remaining budget `d(v → target)`.
    #[inline]
    pub(crate) fn budget_bound(&self, v: NodeId) -> f64 {
        self.lm.budget_bound(v, &self.target)
    }
}

/// The query-keyword coverage mask for every node, as one flat table.
///
/// The hot loop previously called `keywords.mask_of(graph.keywords(v))`
/// once per child label — a sorted-slice intersection per label. The
/// table is built once per query from the inverted index's postings, so
/// only nodes actually holding a query keyword are touched (plus one
/// zeroed allocation); lookups become a single indexed load. Empty for
/// keyword-less queries, where every mask is zero.
pub(crate) fn query_mask_table(
    node_count: usize,
    keywords: &QueryKeywords,
    index: &InvertedIndex,
) -> Vec<u64> {
    if keywords.is_empty() {
        return Vec::new();
    }
    let mut masks = vec![0u64; node_count];
    for (bit, &kw) in keywords.ids().iter().enumerate() {
        for &node in index.postings(kw) {
            masks[node.index()] |= 1u64 << bit;
        }
    }
    masks
}

/// Objective representation used for dominance and ordering.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ScoreMode {
    Scaled(Scaler),
    Exact,
}

impl ScoreMode {
    #[inline]
    pub(crate) fn dom_mode(&self) -> DomMode {
        match self {
            ScoreMode::Scaled(_) => DomMode::Scaled,
            ScoreMode::Exact => DomMode::Exact,
        }
    }

    /// The child's ordering/dominance key after traversing an edge with
    /// objective `edge_obj` from `parent`, where the child's exact
    /// objective is `child_obj`.
    #[inline]
    pub(crate) fn child_key(&self, parent: &Label, edge_obj: f64, child_obj: f64) -> u64 {
        match self {
            // `scale` saturates at `u64::MAX` for overflowing objectives
            // (e.g. after extreme `update_edges` multipliers), so the sum
            // must saturate too — a wrapping add here would panic in
            // debug builds and break key monotonicity in release.
            ScoreMode::Scaled(s) => parent.scaled.saturating_add(s.scale(edge_obj)),
            ScoreMode::Exact => child_obj.to_bits(),
        }
    }
}

struct EngineConfig {
    mode: ScoreMode,
    k: usize,
    use_opt1: bool,
    use_opt2: bool,
    infrequent_threshold: f64,
    collect_labels: bool,
    deadline: Option<Instant>,
}

/// Priority-queue item implementing the label order of Definition 8:
/// more covered keywords first, then smaller scaled objective, then
/// smaller budget, then node id, then creation sequence.
#[derive(PartialEq)]
pub(crate) struct QItem {
    pub(crate) covered: u32,
    pub(crate) key: u64,
    pub(crate) budget: f64,
    pub(crate) node: u32,
    pub(crate) id: u32,
}

impl Eq for QItem {}

impl Ord for QItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum, so "pops first" must be "greater".
        self.covered
            .cmp(&other.covered)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.budget.total_cmp(&self.budget))
            .then_with(|| other.node.cmp(&self.node))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for QItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A completed (label + τ-completion) candidate route.
#[derive(Debug, Clone)]
pub(crate) struct Candidate {
    pub(crate) nodes: Vec<NodeId>,
    pub(crate) objective: f64,
    pub(crate) budget: f64,
}

/// Sorted top-k candidate set; its k-th objective is the bound `U`.
struct TopSet {
    k: usize,
    items: Vec<Candidate>,
}

impl TopSet {
    fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    /// Current upper bound `U`: the k-th best objective, `+inf` while
    /// fewer than `k` candidates exist.
    fn bound(&self) -> f64 {
        if self.items.len() < self.k {
            f64::INFINITY
        } else {
            self.items.last().expect("k ≥ 1").objective
        }
    }

    /// Inserts if the candidate improves the set; returns whether it did.
    /// Candidates describing a route already in the set are ignored: a
    /// label and its extensions along the τ-completion materialize the
    /// same final route.
    fn insert(&mut self, c: Candidate) -> bool {
        if c.objective >= self.bound() {
            return false;
        }
        if self.items.iter().any(|x| x.nodes == c.nodes) {
            return false;
        }
        let at = self
            .items
            .partition_point(|x| (x.objective, x.budget) <= (c.objective, c.budget));
        self.items.insert(at, c);
        self.items.truncate(self.k);
        true
    }
}

/// Optimization Strategy 2 state: the infrequent query keyword bit plus
/// the two "through an infrequent-keyword node" lower-bound trees
/// (shared with the pre-processing cache when one is in use).
pub(crate) struct Opt2 {
    pub(crate) bit_mask: u64,
    pub(crate) trees: Arc<Opt2Trees>,
}

struct Engine<'a> {
    graph: &'a Graph,
    query: &'a KorQuery,
    cfg: EngineConfig,
    ctx: Arc<QueryContext>,
    /// Per-node query-keyword masks (empty ⇒ all zero).
    masks: Vec<u64>,
    reach: Option<KeywordReach>,
    opt2: Option<Opt2>,
    /// Landmark bounds; `max`-ed with τ/σ at every pruning site.
    alt: Option<AltBounds>,
    arena: LabelArena,
    store: LabelStore,
    heap: BinaryHeap<QItem>,
    top: TopSet,
    pub stats: SearchStats,
    pub snapshots: Vec<LabelSnapshot>,
}

impl<'a> Engine<'a> {
    fn new(
        graph: &'a Graph,
        index: &'a InvertedIndex,
        query: &'a KorQuery,
        cfg: EngineConfig,
        cache: Option<&PreprocessCache>,
    ) -> Self {
        let mut stats = SearchStats::default();
        let ctx = acquire_context(graph, query.target, cache, &mut stats);
        let masks = query_mask_table(graph.node_count(), &query.keywords, index);
        let reach = (cfg.use_opt1 && !query.keywords.is_empty())
            .then(|| acquire_reach(graph, index, query, cache, &mut stats));
        let alt = AltBounds::acquire(graph, query.target, cache);
        let opt2 = if cfg.use_opt2 {
            build_opt2(
                graph,
                index,
                query,
                &ctx,
                cfg.infrequent_threshold,
                cache,
                &mut stats,
            )
        } else {
            None
        };
        let store = LabelStore::new(
            cfg.mode.dom_mode(),
            query.keywords.full_mask(),
            cfg.k,
            graph.node_count(),
        );
        let k = cfg.k;
        Self {
            graph,
            query,
            cfg,
            ctx,
            masks,
            reach,
            opt2,
            alt,
            arena: LabelArena::with_capacity(1024),
            store,
            heap: BinaryHeap::with_capacity(1024),
            top: TopSet::new(k),
            stats,
            snapshots: Vec::new(),
        }
    }

    /// The query-keyword mask of `node` (one indexed load).
    #[inline]
    fn node_mask(&self, node: NodeId) -> u64 {
        if self.masks.is_empty() {
            0
        } else {
            self.masks[node.index()]
        }
    }

    /// Lower bound on the remaining objective from `node` to the target:
    /// `max(OS(τ), ALT)`. Equal to `OS(τ)` — the exact distance — on
    /// every node, so pruning decisions are unchanged; see [`AltBounds`].
    #[inline]
    fn os_lb(&self, node: NodeId) -> f64 {
        let tau = self.ctx.os_tau(node);
        match &self.alt {
            Some(alt) => tau.max(alt.objective_bound(node)),
            None => tau,
        }
    }

    /// Lower bound on the remaining budget from `node` to the target:
    /// `max(BS(σ), ALT)`.
    #[inline]
    fn bs_lb(&self, node: NodeId) -> f64 {
        let sigma = self.ctx.bs_sigma(node);
        match &self.alt {
            Some(alt) => sigma.max(alt.budget_bound(node)),
            None => sigma,
        }
    }

    /// Runs the search to exhaustion and materializes the result routes in
    /// ascending objective order. Aborts with
    /// [`KorError::DeadlineExceeded`] if a configured deadline passes
    /// before the search drains its queue.
    fn run(&mut self) -> Result<Vec<RouteResult>, KorError> {
        let source = self.query.source;
        if !self.ctx.reaches_target(source) {
            return Ok(Vec::new());
        }

        // Initial label (Algorithm 1 lines 2–4).
        let init = Label {
            node: source,
            mask: self.node_mask(source),
            scaled: 0,
            objective: 0.0,
            budget: 0.0,
            parent: NO_LABEL,
            alive: true,
        };
        let init_id = self.arena.push(init);
        self.record(init_id);
        self.store.try_insert(&mut self.arena, init_id);
        // The initial label may already cover everything (then its best
        // completion is τ(s,t) — handled by the same completion check the
        // children go through).
        self.try_complete(init_id);
        self.push_queue(init_id);

        // Stride-based deadline check: `Instant::now()` per pop is
        // measurable in this loop; checking every DEADLINE_STRIDE pops
        // (including the very first) bounds both the overhead and the
        // firing latency.
        let mut ticker = DeadlineTicker::new(self.cfg.deadline);
        while let Some(item) = self.heap.pop() {
            ticker.tick()?;
            let label = *self.arena.get(item.id);
            if !label.alive {
                self.stats.labels_skipped += 1;
                continue;
            }
            // Algorithm 1 line 7: the best completion cannot beat U.
            if label.objective + self.os_lb(label.node) > self.top.bound() {
                self.stats.labels_skipped += 1;
                continue;
            }
            self.stats.labels_expanded += 1;
            self.expand(item.id);
        }

        let candidates = std::mem::take(&mut self.top.items);
        Ok(candidates
            .into_iter()
            .map(|c| RouteResult {
                route: Route::new(c.nodes),
                objective: c.objective,
                budget: c.budget,
            })
            .collect())
    }

    /// Label treatment (Definition 7) over all outgoing edges, plus the
    /// Optimization-Strategy-1 jump.
    fn expand(&mut self, id: u32) {
        let label = *self.arena.get(id);
        // `self.graph` is a plain `&'a Graph`, so copying the reference
        // out lets the adjacency iterator borrow the graph — not `self` —
        // and the CSR slices are walked in place with no per-expansion
        // `Vec` allocation.
        let graph = self.graph;
        for e in graph.out_edges(label.node) {
            self.make_child(id, e.node, e.objective, e.budget);
        }
        if self.reach.is_some() && !self.query.keywords.is_covering(label.mask) {
            self.opt1_jump(id);
        }
    }

    /// Creates, checks, and files one child label; returns its id if it
    /// survived all checks.
    fn make_child(
        &mut self,
        parent_id: u32,
        node: NodeId,
        edge_obj: f64,
        edge_bud: f64,
    ) -> Option<u32> {
        let parent = *self.arena.get(parent_id);
        let objective = parent.objective + edge_obj;
        let budget = parent.budget + edge_bud;
        let child = Label {
            node,
            mask: parent.mask | self.node_mask(node),
            scaled: self.cfg.mode.child_key(&parent, edge_obj, objective),
            objective,
            budget,
            parent: parent_id,
            alive: true,
        };
        self.stats.labels_created += 1;
        if self.cfg.collect_labels {
            self.snapshots.push(LabelSnapshot {
                node: child.node,
                mask: child.mask,
                scaled: child.scaled,
                objective: child.objective,
                budget: child.budget,
            });
        }

        // Algorithm 1 line 10, first two filters: the label must still be
        // able to produce a feasible route (budget via the min-budget
        // completion σ) that beats the bound (objective via the
        // min-objective completion τ).
        if child.budget + self.bs_lb(child.node) > self.query.budget {
            self.stats.labels_pruned += 1;
            return None;
        }
        if child.objective + self.os_lb(child.node) >= self.top.bound() {
            self.stats.labels_pruned += 1;
            return None;
        }
        // Optimization Strategy 2.
        if let Some(opt2) = &self.opt2 {
            if child.mask & opt2.bit_mask == 0 {
                let through_obj = opt2.trees.obj_bound.objective(child.node);
                let through_bud = opt2.trees.bud_bound.budget(child.node);
                if child.objective + through_obj > self.top.bound()
                    || child.budget + through_bud > self.query.budget
                {
                    self.stats.opt2_discards += 1;
                    return None;
                }
            }
        }

        let id = self.arena.push(child);
        if !self.store.try_insert(&mut self.arena, id) {
            self.arena.kill(id);
            self.sync_store_stats();
            return None;
        }
        self.sync_store_stats();

        // Algorithm 1 lines 16–20: completion handling for covering
        // labels; non-covering labels are enqueued.
        if self.query.keywords.is_covering(self.arena.get(id).mask) {
            let completed = self.try_complete(id);
            // k = 1: a feasible completion is the best this label can do
            // (τ is the min-objective completion), so it is not enqueued.
            // For k > 1 further extensions may yield additional routes.
            if !completed || self.cfg.k > 1 {
                self.push_queue(id);
            }
        } else {
            self.push_queue(id);
        }
        Some(id)
    }

    /// Optimization Strategy 1: jump to the nearest (by budget) node
    /// holding an uncovered query keyword, materializing the actual
    /// `σ_{i,j}` path so scores and coverage stay exact.
    fn opt1_jump(&mut self, id: u32) {
        let label = *self.arena.get(id);
        let reach = self.reach.as_ref().expect("opt1 enabled");
        let mut best: Option<(f64, u32)> = None;
        for (bit, _) in self.query.keywords.uncovered(label.mask) {
            if let Some((dist, j)) = reach.nearest(bit, label.node) {
                // Feasibility: jump there and still finish within budget.
                if label.budget + dist + self.bs_lb(j) <= self.query.budget {
                    let better = match best {
                        None => true,
                        Some((d, _)) => dist < d,
                    };
                    if better {
                        best = Some((dist, bit));
                    }
                }
            }
        }
        let Some((_, bit)) = best else { return };
        let Some(path) = reach.path_to_nearest(bit, label.node) else {
            return;
        };
        if path.len() < 2 {
            return;
        }
        self.stats.opt1_jumps += 1;
        // Fold the jump path into chained labels; only the terminal label
        // enters the store/queue, intermediates exist for reconstruction.
        let mut cur = id;
        for step in path.windows(2) {
            let (from, to) = (step[0], step[1]);
            let e = self
                .graph
                .edge_between(from, to)
                .expect("reach paths follow graph edges");
            let is_last = to == *path.last().expect("non-empty");
            if is_last {
                self.make_child(cur, to, e.objective, e.budget);
            } else {
                let parent = *self.arena.get(cur);
                let objective = parent.objective + e.objective;
                let child = Label {
                    node: to,
                    mask: parent.mask | self.node_mask(to),
                    scaled: self.cfg.mode.child_key(&parent, e.objective, objective),
                    objective,
                    budget: parent.budget + e.budget,
                    parent: cur,
                    alive: true,
                };
                cur = self.arena.push(child);
            }
        }
    }

    /// Lines 16–19: if the label covers all keywords and its τ-completion
    /// fits the budget, record the candidate route. Returns whether a
    /// feasible completion existed.
    fn try_complete(&mut self, id: u32) -> bool {
        let label = *self.arena.get(id);
        if !self.query.keywords.is_covering(label.mask) {
            return false;
        }
        let tau = self.ctx.os_tau(label.node);
        if !tau.is_finite() {
            return false;
        }
        if label.budget + self.ctx.bs_tau(label.node) <= self.query.budget {
            let objective = label.objective + tau;
            if objective < self.top.bound() {
                let cand = Candidate {
                    nodes: self.route_nodes(id),
                    objective,
                    budget: label.budget + self.ctx.bs_tau(label.node),
                };
                if self.top.insert(cand) {
                    self.stats.upper_bound_updates += 1;
                }
            }
            true
        } else {
            false
        }
    }

    /// The node sequence `path(label) + τ(label.node, t)`.
    fn route_nodes(&self, id: u32) -> Vec<NodeId> {
        let label = self.arena.get(id);
        let mut nodes = self.arena.path_nodes(id);
        let completion = self
            .ctx
            .tau_route(label.node)
            .expect("candidates reach the target");
        nodes.extend_from_slice(&completion.nodes()[1..]);
        nodes
    }

    fn push_queue(&mut self, id: u32) {
        let label = self.arena.get(id);
        self.heap.push(QItem {
            covered: label.mask.count_ones(),
            key: label.scaled,
            budget: label.budget,
            node: label.node.0,
            id,
        });
        self.stats.queue_pushes += 1;
    }

    fn record(&mut self, id: u32) {
        self.stats.labels_created += 1;
        if self.cfg.collect_labels {
            self.snapshots.push(LabelSnapshot::from(self.arena.get(id)));
        }
    }

    fn sync_store_stats(&mut self) {
        self.stats.labels_dominated = self.store.dominated_count();
        self.stats.labels_evicted = self.store.evicted_count();
    }
}

/// Builds Optimization-Strategy-2 state when the least frequent query
/// keyword is rare enough. The bound trees are pulled from the
/// pre-processing cache when one is supplied (keyed by `(target, kw)` —
/// the bit position is query-local and recomputed per call); the rarity
/// gate itself is a cheap index lookup and always runs.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_opt2(
    graph: &Graph,
    index: &InvertedIndex,
    query: &KorQuery,
    ctx: &QueryContext,
    threshold: f64,
    cache: Option<&PreprocessCache>,
    stats: &mut SearchStats,
) -> Option<Opt2> {
    let (kw, df) = index.least_frequent(query.keywords.ids())?;
    if graph.node_count() == 0 || df as f64 / graph.node_count() as f64 >= threshold {
        return None;
    }
    let bit = query.keywords.bit(kw)?;
    let trees = match cache {
        Some(cache) => {
            let (trees, hit) = cache.opt2_trees(graph, index, ctx, kw);
            if hit {
                stats.cache_hits += 1;
            } else {
                stats.cache_misses += 1;
                stats.trees_built += 2;
            }
            trees
        }
        None => {
            stats.trees_built += 2;
            Arc::new(build_opt2_trees(graph, index, ctx, kw))
        }
    };
    Some(Opt2 {
        bit_mask: 1u64 << bit,
        trees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, t, v};

    fn setup() -> (Graph, InvertedIndex) {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn ticker_first_tick_always_checks() {
        // Promptness invariant: an already-expired deadline must abort
        // on the very first pop — searches with fewer than
        // DEADLINE_STRIDE pops would otherwise never check at all.
        let mut ticker = DeadlineTicker::new(Some(Instant::now()));
        assert!(matches!(ticker.tick(), Err(KorError::DeadlineExceeded)));
    }

    #[test]
    fn ticker_without_deadline_never_errors() {
        let mut ticker = DeadlineTicker::new(None);
        for _ in 0..(3 * DEADLINE_STRIDE) {
            ticker.tick().expect("no deadline configured");
        }
    }

    #[test]
    fn ticker_rechecks_within_one_stride() {
        // A deadline that expires mid-search is noticed after at most
        // DEADLINE_STRIDE further pops: the first tick passes (the
        // deadline is still ahead), then once it lapses, some tick in
        // the next stride window must error.
        let mut ticker =
            DeadlineTicker::new(Some(Instant::now() + std::time::Duration::from_millis(30)));
        ticker.tick().expect("deadline still ahead");
        std::thread::sleep(std::time::Duration::from_millis(40));
        let erred = (0..DEADLINE_STRIDE).any(|_| ticker.tick().is_err());
        assert!(erred, "expired deadline survived a full stride window");
    }

    fn plain_params(epsilon: f64) -> OsScalingParams {
        OsScalingParams {
            epsilon,
            use_opt1: false,
            use_opt2: false,
            collect_labels: true,
            ..OsScalingParams::default()
        }
    }

    #[test]
    fn example2_returns_r1() {
        // Q = ⟨v0, v7, {t1, t2}, 10⟩, ε = 0.5 ⇒ R1 = ⟨v0,v2,v3,v4,v7⟩,
        // OS 6, BS 10.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0), v(2), v(3), v(4), v(7)]);
        assert_eq!(route.objective, 6.0);
        assert_eq!(route.budget, 10.0);
    }

    #[test]
    fn example2_table1_labels() {
        // The nine labels of Table 1 (ÔS at θ = 1/20) must all be created.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        // (node, mask {t1=bit0, t2=bit1}, ÔS, OS, BS)
        let expected: [(u32, u64, u64, f64, f64); 9] = [
            (0, 0b00, 0, 0.0, 0.0),   // L00
            (1, 0b00, 80, 4.0, 1.0),  // L01
            (1, 0b01, 60, 3.0, 4.0),  // L11
            (2, 0b10, 20, 1.0, 3.0),  // L02
            (3, 0b01, 40, 2.0, 2.0),  // L03
            (3, 0b11, 80, 4.0, 5.0),  // L13
            (4, 0b01, 60, 3.0, 4.0),  // L04
            (5, 0b11, 100, 5.0, 4.0), // L05
            (6, 0b11, 40, 2.0, 4.0),  // L06 (created, then budget-pruned)
        ];
        for (node, mask, scaled, os, bs) in expected {
            assert!(
                r.labels.iter().any(|l| l.node == v(node)
                    && l.mask == mask
                    && l.scaled == scaled
                    && l.objective == os
                    && l.budget == bs),
                "missing label ({node}, {mask:#b}, {scaled}, {os}, {bs})\nhave: {:?}",
                r.labels
            );
        }
    }

    #[test]
    fn example2_with_optimizations_same_answer() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &OsScalingParams::default()).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.objective, 6.0);
        assert_eq!(route.budget, 10.0);
    }

    #[test]
    fn definition4_delta6() {
        // Q = ⟨v0, v7, {t1,t2,t3}, 6⟩ ⇒ ⟨v0,v3,v5,v7⟩ with OS 9, BS 5.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2), t(3)], 6.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0), v(3), v(5), v(7)]);
        assert_eq!(route.objective, 9.0);
        assert_eq!(route.budget, 5.0);
    }

    #[test]
    fn infeasible_when_budget_too_small() {
        let (g, idx) = setup();
        // The cheapest-budget covering route for {t1,t2} needs BS ≥ 5.
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 4.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        assert!(r.route.is_none());
    }

    #[test]
    fn infeasible_when_keyword_unreachable() {
        let (g, idx) = setup();
        // t5 lives only at v1, which has no outgoing edges: covering t5
        // strands the route.
        let q = KorQuery::new(&g, v(0), v(7), vec![t(5)], 100.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        assert!(r.route.is_none());
    }

    #[test]
    fn empty_keywords_degenerate_to_wcspp() {
        // Without keywords the answer is the min-objective path meeting Δ.
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0), v(3), v(4), v(7)]);
        assert_eq!(route.objective, 4.0);
        // With Δ = 6 the τ path (BS 7) is out; σ (OS 9, BS 5) wins.
        let q6 = KorQuery::new(&g, v(0), v(7), vec![], 6.0).unwrap();
        let r6 = os_scaling(&g, &idx, &q6, &plain_params(0.5)).unwrap();
        assert_eq!(r6.route.unwrap().objective, 9.0);
    }

    #[test]
    fn source_equals_target_trivial() {
        let (g, idx) = setup();
        // v0 holds t3; querying t3 from v0 to v0 is satisfied by standing
        // still.
        let q = KorQuery::new(&g, v(0), v(0), vec![t(3)], 5.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        let route = r.route.expect("feasible");
        assert_eq!(route.route.nodes(), &[v(0)]);
        assert_eq!(route.objective, 0.0);
        assert_eq!(route.budget, 0.0);
    }

    #[test]
    fn source_equals_target_requires_cycle() {
        let (g, idx) = setup();
        // From v5 back to v5 covering t4 (at v4): needs a cycle, but v5
        // is unreachable from v4's continuations ⇒ infeasible.
        let q = KorQuery::new(&g, v(5), v(5), vec![t(4)], 100.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        assert!(r.route.is_none());
    }

    #[test]
    fn unreachable_target_is_infeasible() {
        let (g, idx) = setup();
        // v1 has no outgoing edges; nothing reaches v0 either.
        let q = KorQuery::new(&g, v(1), v(7), vec![], 100.0).unwrap();
        assert!(os_scaling(&g, &idx, &q, &plain_params(0.5))
            .unwrap()
            .route
            .is_none());
        let q2 = KorQuery::new(&g, v(7), v(0), vec![], 100.0).unwrap();
        assert!(os_scaling(&g, &idx, &q2, &plain_params(0.5))
            .unwrap()
            .route
            .is_none());
    }

    #[test]
    fn exact_labeling_matches_os_scaling_small_eps() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let exact = exact_labeling(&g, &idx, &q).unwrap();
        let approx = os_scaling(&g, &idx, &q, &plain_params(0.01)).unwrap();
        assert_eq!(exact.route.as_ref().unwrap().objective, 6.0);
        assert_eq!(
            exact.route.unwrap().objective,
            approx.route.unwrap().objective
        );
    }

    #[test]
    fn approximation_bound_holds_on_fixture() {
        let (g, idx) = setup();
        for m in [vec![t(1)], vec![t(1), t(2)], vec![t(1), t(2), t(3)]] {
            for delta in [5.0, 6.0, 8.0, 10.0, 14.0] {
                let q = KorQuery::new(&g, v(0), v(7), m.clone(), delta).unwrap();
                let exact = exact_labeling(&g, &idx, &q).unwrap();
                for eps in [0.1, 0.5, 0.9] {
                    let r = os_scaling(&g, &idx, &q, &plain_params(eps)).unwrap();
                    match (&exact.route, &r.route) {
                        (None, None) => {}
                        (Some(opt), Some(found)) => {
                            assert!(
                                found.objective <= opt.objective / (1.0 - eps) + 1e-9,
                                "eps={eps} delta={delta}: {} > {}/(1-{eps})",
                                found.objective,
                                opt.objective
                            );
                            assert!(found.budget <= delta + 1e-9);
                        }
                        (a, b) => panic!("feasibility disagreement: exact={a:?} approx={b:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn top_k_returns_distinct_sorted_routes() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 12.0).unwrap();
        let r = top_k_os_scaling(&g, &idx, &q, &plain_params(0.2), 3).unwrap();
        assert!(!r.routes.is_empty());
        for w in r.routes.windows(2) {
            assert!(w[0].objective <= w[1].objective);
            assert_ne!(w[0].route.nodes(), w[1].route.nodes());
        }
        for route in &r.routes {
            assert!(route.budget <= 12.0 + 1e-9);
            let (os, bs) = route.route.scores(&g).unwrap();
            assert!((os - route.objective).abs() < 1e-9);
            assert!((bs - route.budget).abs() < 1e-9);
            assert!(route.route.covers(&g, &[t(1), t(2)]));
        }
        // k = 1 must agree with the single-route search.
        let single = os_scaling(&g, &idx, &q, &plain_params(0.2)).unwrap();
        let top1 = top_k_os_scaling(&g, &idx, &q, &plain_params(0.2), 1).unwrap();
        assert_eq!(single.route.unwrap().objective, top1.routes[0].objective);
    }

    #[test]
    fn top_k_zero_is_error() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        assert!(matches!(
            top_k_os_scaling(&g, &idx, &q, &OsScalingParams::default(), 0),
            Err(KorError::InvalidK)
        ));
    }

    #[test]
    fn invalid_epsilon_rejected() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![], 10.0).unwrap();
        assert!(matches!(
            os_scaling(&g, &idx, &q, &plain_params(0.0)),
            Err(KorError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn returned_route_scores_verify_against_graph() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2), t(4)], 12.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &OsScalingParams::default()).unwrap();
        let route = r.route.expect("feasible");
        let (os, bs) = route.route.scores(&g).unwrap();
        assert!((os - route.objective).abs() < 1e-9);
        assert!((bs - route.budget).abs() < 1e-9);
        assert!(route.route.covers(&g, &[t(1), t(2), t(4)]));
        assert_eq!(route.route.nodes().first(), Some(&v(0)));
        assert_eq!(route.route.nodes().last(), Some(&v(7)));
    }

    #[test]
    fn stats_are_populated() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = os_scaling(&g, &idx, &q, &plain_params(0.5)).unwrap();
        assert!(r.stats.labels_created >= 9);
        assert!(r.stats.labels_expanded > 0);
        assert!(r.stats.queue_pushes > 0);
        assert!(r.stats.upper_bound_updates >= 1);
    }
}
