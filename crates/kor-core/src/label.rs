//! Node labels and the label arena (Definition 5).

use kor_graph::NodeId;

/// Sentinel for "no parent label".
pub const NO_LABEL: u32 = u32::MAX;

/// A node label `(λ, ÔS, OS, BS)` plus the node it sits on and the parent
/// link used to reconstruct the partial route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Label {
    /// The node this label belongs to.
    pub node: NodeId,
    /// Covered query keywords `λ` as a query-local bitmask.
    pub mask: u64,
    /// Scaled objective score `ÔS` (dominance key for `OSScaling`).
    pub scaled: u64,
    /// Exact objective score `OS`.
    pub objective: f64,
    /// Budget score `BS`.
    pub budget: f64,
    /// Arena index of the predecessor label ([`NO_LABEL`] at the source).
    pub parent: u32,
    /// Tombstone flag: dead labels are skipped at dequeue time (lazy
    /// priority-queue deletion after dominance evictions).
    pub alive: bool,
}

/// A snapshot of a label for golden-trace tests (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelSnapshot {
    /// Node the label was created on.
    pub node: NodeId,
    /// Covered query keyword mask.
    pub mask: u64,
    /// Scaled objective score.
    pub scaled: u64,
    /// Objective score.
    pub objective: f64,
    /// Budget score.
    pub budget: f64,
}

impl From<&Label> for LabelSnapshot {
    fn from(l: &Label) -> Self {
        Self {
            node: l.node,
            mask: l.mask,
            scaled: l.scaled,
            objective: l.objective,
            budget: l.budget,
        }
    }
}

/// Append-only arena of labels; parent links index into it.
#[derive(Debug, Default)]
pub struct LabelArena {
    labels: Vec<Label>,
}

impl LabelArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// An arena with room for `capacity` labels before the first grow.
    ///
    /// Labels are bump-allocated into one contiguous `Vec`; searches
    /// pre-reserve a block so the steady expansion path appends without
    /// reallocating (label structs are `Copy` — no per-label `Box`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            labels: Vec::with_capacity(capacity),
        }
    }

    /// Appends a label, returning its id.
    pub fn push(&mut self, label: Label) -> u32 {
        let id = self.labels.len() as u32;
        self.labels.push(label);
        id
    }

    /// The label with id `id`.
    #[inline]
    pub fn get(&self, id: u32) -> &Label {
        &self.labels[id as usize]
    }

    /// Mutable access (tombstoning).
    #[inline]
    pub fn get_mut(&mut self, id: u32) -> &mut Label {
        &mut self.labels[id as usize]
    }

    /// Marks a label dead.
    pub fn kill(&mut self, id: u32) {
        self.labels[id as usize].alive = false;
    }

    /// Number of labels ever created.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The node sequence of the partial route ending at `id`
    /// (source first).
    pub fn path_nodes(&self, id: u32) -> Vec<NodeId> {
        let mut nodes = Vec::new();
        let mut cur = id;
        while cur != NO_LABEL {
            let l = &self.labels[cur as usize];
            nodes.push(l.node);
            cur = l.parent;
        }
        nodes.reverse();
        nodes
    }

    /// Iterates all labels (including dead ones) in creation order.
    pub fn iter(&self) -> impl Iterator<Item = &Label> {
        self.labels.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(node: u32, parent: u32) -> Label {
        Label {
            node: NodeId(node),
            mask: 0,
            scaled: 0,
            objective: 0.0,
            budget: 0.0,
            parent,
            alive: true,
        }
    }

    #[test]
    fn path_reconstruction_walks_parents() {
        let mut arena = LabelArena::new();
        let a = arena.push(label(0, NO_LABEL));
        let b = arena.push(label(2, a));
        let c = arena.push(label(3, b));
        assert_eq!(arena.path_nodes(c), vec![NodeId(0), NodeId(2), NodeId(3)]);
        assert_eq!(arena.path_nodes(a), vec![NodeId(0)]);
    }

    #[test]
    fn kill_tombstones() {
        let mut arena = LabelArena::new();
        let a = arena.push(label(0, NO_LABEL));
        assert!(arena.get(a).alive);
        arena.kill(a);
        assert!(!arena.get(a).alive);
    }

    #[test]
    fn snapshot_copies_scores() {
        let l = Label {
            node: NodeId(4),
            mask: 0b11,
            scaled: 100,
            objective: 5.0,
            budget: 7.0,
            parent: NO_LABEL,
            alive: true,
        };
        let s = LabelSnapshot::from(&l);
        assert_eq!(s.node, NodeId(4));
        assert_eq!(s.mask, 0b11);
        assert_eq!(s.scaled, 100);
        assert_eq!(s.objective, 5.0);
        assert_eq!(s.budget, 7.0);
    }

    #[test]
    fn len_tracks_pushes() {
        let mut arena = LabelArena::new();
        assert!(arena.is_empty());
        arena.push(label(0, NO_LABEL));
        arena.push(label(1, 0));
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.iter().count(), 2);
    }
}
