//! The shared per-query pre-processing cache.
//!
//! The paper's cost model assumes the `τ`/`σ` pre-processing is amortized
//! across queries, but a naive engine rebuilds it per call: every label
//! search starts with two full backward Dijkstras ([`QueryContext`]) and
//! Optimization Strategy 2 runs two more. Under serve/batch traffic many
//! queries share popular targets and keyword sets, so those trees are
//! pure recomputation.
//!
//! [`PreprocessCache`] memoizes both products behind `Arc`-cloned
//! entries:
//!
//! * **query contexts** — the to-target `τ`/`σ` tree pair, keyed by the
//!   target node (identical for every query ending at that target);
//! * **Opt-2 bound trees** — the "through an infrequent-keyword node,
//!   then finish" lower-bound tree pair, keyed by `(target, keyword)`
//!   (the seed set is exactly the keyword's postings weighted by the
//!   target context, so the pair pins the trees down completely);
//! * **keyword reach trees** — the Optimization-Strategy-1 "nearest node
//!   holding this keyword" tree, keyed by the keyword alone (the seed
//!   set is the keyword's postings with zero potential — independent of
//!   the query's source, target, and budget, so one build serves every
//!   query mentioning the keyword);
//! * **landmark vectors** — the per-dataset ALT distance vectors
//!   ([`kor_apsp::Landmarks`]), one singleton entry built lazily on
//!   first use and shared by every query.
//!
//! Entries are evicted least-recently-used once a map exceeds its
//! capacity, bounding memory at roughly
//! `capacity × 4 trees × node_count × sizeof(SptNode)`. The design
//! mirrors [`kor_apsp::CachedPairCosts`]: one `Mutex` around a memo
//! table, shared by any number of worker threads, with the expensive
//! tree construction performed *outside* the lock so concurrent misses
//! on different keys never serialize on Dijkstra.
//!
//! Cached and cold searches are byte-identical by construction: a cache
//! hit returns the same deterministic `Tree` values a fresh build would
//! produce (pinned down by the equivalence tests in
//! `tests/cache_equivalence.rs`).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kor_apsp::{backward_tree, KeywordReach, Landmarks, Metric, QueryContext, Tree};
use kor_graph::{Graph, KeywordId, NodeId};
use kor_index::InvertedIndex;

/// The two Optimization-Strategy-2 lower-bound trees for one
/// `(target, infrequent keyword)` pair.
///
/// Seeds carry the to-target completion as initial potential, so each
/// tree bounds "reach an infrequent-keyword node, then finish at the
/// target" (objective-side and budget-side respectively).
#[derive(Debug)]
pub struct Opt2Trees {
    /// Objective lower bound through an infrequent-keyword node.
    pub obj_bound: Tree,
    /// Budget lower bound through an infrequent-keyword node.
    pub bud_bound: Tree,
}

/// Builds the Opt-2 tree pair for `kw` under `ctx`'s target.
pub(crate) fn build_opt2_trees(
    graph: &Graph,
    index: &InvertedIndex,
    ctx: &QueryContext,
    kw: KeywordId,
) -> Opt2Trees {
    let mut obj_seeds = Vec::new();
    let mut bud_seeds = Vec::new();
    for &l in index.postings(kw) {
        if let Some(tau) = ctx.tau_to_target(l) {
            obj_seeds.push((l, tau.objective, tau.budget));
        }
        if let Some(sigma) = ctx.sigma_to_target(l) {
            bud_seeds.push((l, sigma.objective, sigma.budget));
        }
    }
    Opt2Trees {
        obj_bound: backward_tree(graph, Metric::Objective, &obj_seeds),
        bud_bound: backward_tree(graph, Metric::Budget, &bud_seeds),
    }
}

/// Compact invalidation stamp for one cached tree family: the set of
/// nodes the family's backward Dijkstras relaxed (one bit per node).
///
/// A mutation of edge `u → v` can change a backward tree only if the
/// edge's *head* `v` is in the tree's relaxed set — otherwise the edge
/// was never scanned, and (because mutation rebuilds preserve the
/// relative CSR order of surviving edges) the tree a cold engine would
/// build on the mutated graph scans the exact same edge sequence and is
/// bit-for-bit identical. One stamp per target covers every cache
/// family keyed by that target: the `τ`/`σ` context trees directly, and
/// the Opt-2 bound trees because their reachable sets *and* their seed
/// potentials both live inside the context's relaxed set (any node that
/// reaches a seeded posting also reaches the target). The Opt-2 stamp
/// still unions its own trees' reachability as a belt-and-braces check.
#[derive(Debug)]
pub struct TreeStamp {
    words: Vec<u64>,
}

impl TreeStamp {
    fn for_nodes(n: usize) -> Self {
        Self {
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    fn set(&mut self, v: NodeId) {
        self.words[v.index() / 64] |= 1u64 << (v.index() % 64);
    }

    /// Whether node `v` is in the stamped (relaxed) set. Out-of-range
    /// ids are never in the set.
    pub fn contains(&self, v: NodeId) -> bool {
        self.words
            .get(v.index() / 64)
            .is_some_and(|w| w & (1u64 << (v.index() % 64)) != 0)
    }

    /// Whether any of `nodes` is in the stamped set.
    pub fn touches_any(&self, nodes: &[NodeId]) -> bool {
        nodes.iter().any(|&v| self.contains(v))
    }

    /// Number of stamped nodes.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no node is stamped.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Stamp of a query context: the union of its `τ` and `σ` trees'
    /// relaxed sets (in practice identical — reachability does not
    /// depend on the metric — but unioned rather than assumed).
    fn from_context(ctx: &QueryContext, n: usize) -> Self {
        let mut s = Self::for_nodes(n);
        for i in 0..n as u32 {
            let v = NodeId(i);
            if ctx.reaches_target(v) || ctx.sigma_to_target(v).is_some() {
                s.set(v);
            }
        }
        s
    }

    fn union_tree(&mut self, tree: &Tree, n: usize) {
        for i in 0..n as u32 {
            let v = NodeId(i);
            if tree.is_reachable(v) {
                self.set(v);
            }
        }
    }
}

/// Per-family retain/evict counts reported by
/// [`PreprocessCache::carry_over`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidationCounts {
    /// Query contexts whose stamp avoided every changed edge head.
    pub contexts_retained: usize,
    /// Query contexts evicted because a changed edge head was stamped.
    pub contexts_evicted: usize,
    /// Opt-2 tree pairs carried over warm.
    pub opt2_retained: usize,
    /// Opt-2 tree pairs evicted.
    pub opt2_evicted: usize,
    /// Keyword reach trees carried over warm.
    pub reach_retained: usize,
    /// Keyword reach trees evicted.
    pub reach_evicted: usize,
}

/// Point-in-time counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Query-context lookups answered from the cache.
    pub ctx_hits: u64,
    /// Query-context lookups that had to build trees.
    pub ctx_misses: u64,
    /// Opt-2 tree lookups answered from the cache.
    pub opt2_hits: u64,
    /// Opt-2 tree lookups that had to build trees.
    pub opt2_misses: u64,
    /// Keyword reach-tree lookups answered from the cache.
    pub reach_hits: u64,
    /// Keyword reach-tree lookups that had to build a tree.
    pub reach_misses: u64,
    /// Entries removed by the LRU cap (all families alike).
    ///
    /// **Exclusive** with `invalidated`: one removed entry increments
    /// exactly one of the two counters. [`PreprocessCache::carry_over`]
    /// filters by invalidation stamp first — stamped entries count only
    /// here-under `invalidated` — and applies the LRU cap only to the
    /// survivors, so an entry that is both stale and over-cap is counted
    /// once, as invalidated.
    pub evictions: u64,
    /// Dijkstra trees built on behalf of this cache (two per context
    /// miss, two per Opt-2 miss, one per reach miss — including builds
    /// that lost a concurrent race and were discarded). Landmark builds
    /// are tracked separately in `landmark_trees_built`: query-serving
    /// trees and dataset-level ALT vectors have different lifecycles,
    /// and conflating them would make "no per-query rebuild happened"
    /// unobservable.
    pub trees_built: u64,
    /// Dijkstra trees built for the landmark (ALT) singleton: four per
    /// landmark (forward + backward × objective + budget), rebuilt from
    /// scratch after every mutation batch.
    pub landmark_trees_built: u64,
    /// Entries evicted by mutation-driven incremental invalidation
    /// ([`PreprocessCache::carry_over`]), all families alike. Distinct
    /// from — and exclusive with — `evictions`, which counts the LRU
    /// cap (see `evictions`).
    pub invalidated: u64,
    /// Entries that survived mutation-driven invalidation warm.
    pub retained: u64,
}

impl CacheStats {
    /// Fraction of all lookups answered from the cache (`0.0` when no
    /// lookup has happened yet).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.ctx_hits + self.opt2_hits + self.reach_hits;
        let total = hits + self.ctx_misses + self.opt2_misses + self.reach_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// One memoized entry plus its LRU clock value and invalidation stamp.
struct Slot<T> {
    value: Arc<T>,
    stamp: Arc<TreeStamp>,
    last_used: u64,
}

struct Inner {
    /// Monotone logical clock for LRU ordering.
    tick: u64,
    /// `(node_count, edge_count)` of the graph this cache serves, pinned
    /// on first use. Keys are plain `NodeId`s, so trees from one graph
    /// would silently answer queries on another — a shape mismatch is a
    /// caller bug and panics instead.
    graph_shape: Option<(usize, usize)>,
    contexts: HashMap<NodeId, Slot<QueryContext>>,
    opt2: HashMap<(NodeId, KeywordId), Slot<Opt2Trees>>,
    reach: HashMap<KeywordId, Slot<Tree>>,
    /// Per-dataset landmark (ALT) vectors: a singleton, so no LRU slot.
    landmarks: Option<Arc<Landmarks>>,
    stats: CacheStats,
}

impl Inner {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Pins the cache to `graph` on first use; panics if a later lookup
    /// arrives with a different graph shape.
    fn check_graph(&mut self, graph: &Graph) {
        let shape = (graph.node_count(), graph.edge_count());
        match self.graph_shape {
            None => self.graph_shape = Some(shape),
            Some(bound) => assert_eq!(
                bound, shape,
                "PreprocessCache is bound to one graph: cached trees for a \
                 {bound:?} (nodes, edges) graph cannot answer queries on a \
                 {shape:?} graph — use one cache per dataset"
            ),
        }
    }
}

/// Thread-safe, LRU-capped cache of per-query pre-processing products.
///
/// See the module documentation for the design. One cache per
/// dataset is meant to be shared by reference across worker threads;
/// [`crate::KorEngine`] owns one and threads it through every label
/// search automatically.
pub struct PreprocessCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for PreprocessCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("PreprocessCache")
            .field("capacity", &self.capacity)
            .field("contexts", &inner.contexts.len())
            .field("opt2", &inner.opt2.len())
            .field("reach", &inner.reach.len())
            .field("landmarks", &inner.landmarks.is_some())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl Default for PreprocessCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PreprocessCache {
    /// Default number of targets (and Opt-2 pairs) kept warm.
    pub const DEFAULT_CAPACITY: usize = 128;

    /// A cache with [`Self::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` query contexts and `capacity`
    /// Opt-2 tree pairs (each map is capped independently).
    ///
    /// # Panics
    ///
    /// If `capacity` is zero — a zero-capacity cache would thrash on
    /// every lookup; pass no cache instead.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be ≥ 1");
        Self {
            capacity,
            inner: Mutex::new(Inner {
                tick: 0,
                graph_shape: None,
                contexts: HashMap::new(),
                opt2: HashMap::new(),
                reach: HashMap::new(),
                landmarks: None,
                stats: CacheStats::default(),
            }),
        }
    }

    /// The configured per-map entry cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The to-target context for `target`, built on first use.
    ///
    /// Returns the shared context and whether this lookup was a hit.
    /// Tree construction happens outside the cache lock; when two
    /// threads miss the same target concurrently, the first insert wins
    /// and the loser's build is discarded (both count as misses).
    ///
    /// # Panics
    ///
    /// If `graph` differs in shape from the graph this cache served
    /// first — one cache serves exactly one dataset.
    pub fn context(&self, graph: &Graph, target: NodeId) -> (Arc<QueryContext>, bool) {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.check_graph(graph);
            let tick = inner.next_tick();
            if let Some(slot) = inner.contexts.get_mut(&target) {
                slot.last_used = tick;
                let value = slot.value.clone();
                inner.stats.ctx_hits += 1;
                return (value, true);
            }
        }
        let built = Arc::new(QueryContext::new(graph, target));
        let stamp = Arc::new(TreeStamp::from_context(&built, graph.node_count()));
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        inner.stats.ctx_misses += 1;
        inner.stats.trees_built += 2;
        let value = match inner.contexts.entry(target) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                // A concurrent miss inserted first; converge on its trees
                // so every holder shares one allocation.
                e.get_mut().last_used = tick;
                e.get().value.clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Slot {
                    value: built.clone(),
                    stamp,
                    last_used: tick,
                });
                built
            }
        };
        let evicted = evict_lru(&mut inner.contexts, self.capacity);
        inner.stats.evictions += evicted;
        (value, false)
    }

    /// The Opt-2 bound-tree pair for `(target, kw)`, built on first use
    /// from `ctx` (which must be the context for the same target).
    ///
    /// # Panics
    ///
    /// If `graph` differs in shape from the graph this cache served
    /// first — one cache serves exactly one dataset.
    pub fn opt2_trees(
        &self,
        graph: &Graph,
        index: &InvertedIndex,
        ctx: &QueryContext,
        kw: KeywordId,
    ) -> (Arc<Opt2Trees>, bool) {
        let key = (ctx.target(), kw);
        {
            let mut inner = self.inner.lock().unwrap();
            inner.check_graph(graph);
            let tick = inner.next_tick();
            if let Some(slot) = inner.opt2.get_mut(&key) {
                slot.last_used = tick;
                let value = slot.value.clone();
                inner.stats.opt2_hits += 1;
                return (value, true);
            }
        }
        let built = Arc::new(build_opt2_trees(graph, index, ctx, kw));
        let n = graph.node_count();
        // The context stamp provably covers the Opt-2 dependencies (see
        // `TreeStamp`); union the pair's own reachability anyway.
        let mut stamp = TreeStamp::from_context(ctx, n);
        stamp.union_tree(&built.obj_bound, n);
        stamp.union_tree(&built.bud_bound, n);
        let stamp = Arc::new(stamp);
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        inner.stats.opt2_misses += 1;
        inner.stats.trees_built += 2;
        let value = match inner.opt2.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().last_used = tick;
                e.get().value.clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Slot {
                    value: built.clone(),
                    stamp,
                    last_used: tick,
                });
                built
            }
        };
        let evicted = evict_lru(&mut inner.opt2, self.capacity);
        inner.stats.evictions += evicted;
        (value, false)
    }

    /// The Optimization-Strategy-1 reach tree for `kw`, built on first
    /// use from `postings` (which must be `kw`'s posting list from the
    /// inverted index — the tree is fully determined by it).
    ///
    /// # Panics
    ///
    /// If `graph` differs in shape from the graph this cache served
    /// first — one cache serves exactly one dataset.
    pub fn reach_tree(
        &self,
        graph: &Graph,
        kw: KeywordId,
        postings: &[NodeId],
    ) -> (Arc<Tree>, bool) {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.check_graph(graph);
            let tick = inner.next_tick();
            if let Some(slot) = inner.reach.get_mut(&kw) {
                slot.last_used = tick;
                let value = slot.value.clone();
                inner.stats.reach_hits += 1;
                return (value, true);
            }
        }
        let built = Arc::new(KeywordReach::build_tree(graph, postings));
        let n = graph.node_count();
        let mut stamp = TreeStamp::for_nodes(n);
        stamp.union_tree(&built, n);
        let stamp = Arc::new(stamp);
        let mut inner = self.inner.lock().unwrap();
        let tick = inner.next_tick();
        inner.stats.reach_misses += 1;
        inner.stats.trees_built += 1;
        let value = match inner.reach.entry(kw) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().last_used = tick;
                e.get().value.clone()
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Slot {
                    value: built.clone(),
                    stamp,
                    last_used: tick,
                });
                built
            }
        };
        let evicted = evict_lru(&mut inner.reach, self.capacity);
        inner.stats.evictions += evicted;
        (value, false)
    }

    /// The per-dataset landmark (ALT) distance vectors, built lazily on
    /// first use (`4 × DEFAULT_LANDMARKS` Dijkstras) and shared by every
    /// query thereafter.
    ///
    /// # Panics
    ///
    /// If `graph` differs in shape from the graph this cache served
    /// first — one cache serves exactly one dataset.
    pub fn landmarks(&self, graph: &Graph) -> (Arc<Landmarks>, bool) {
        {
            let mut inner = self.inner.lock().unwrap();
            inner.check_graph(graph);
            if let Some(lm) = &inner.landmarks {
                return (lm.clone(), true);
            }
        }
        let built = Arc::new(Landmarks::build(graph, kor_apsp::DEFAULT_LANDMARKS));
        let mut inner = self.inner.lock().unwrap();
        inner.stats.landmark_trees_built += 4 * built.len() as u64;
        // Converge on a concurrent build if one landed first.
        let value = inner.landmarks.get_or_insert(built).clone();
        (value, false)
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().unwrap().stats
    }

    /// Number of query contexts currently cached.
    pub fn context_entries(&self) -> usize {
        self.inner.lock().unwrap().contexts.len()
    }

    /// Number of Opt-2 tree pairs currently cached.
    pub fn opt2_entries(&self) -> usize {
        self.inner.lock().unwrap().opt2.len()
    }

    /// Targets of the currently cached query contexts, sorted (for
    /// instrumentation and the mutation property tests).
    pub fn cached_context_targets(&self) -> Vec<NodeId> {
        let inner = self.inner.lock().unwrap();
        let mut out: Vec<NodeId> = inner.contexts.keys().copied().collect();
        out.sort_by_key(|v| v.0);
        out
    }

    /// Incremental invalidation: rebinds the cache to a mutated graph,
    /// carrying over every entry whose stamp avoids all changed edge
    /// heads and evicting the rest.
    ///
    /// `changed_heads` must hold the `to` node of every mutation in the
    /// batch. Soundness: a backward tree changes only if a mutated edge
    /// was scanned, i.e. only if that edge's head is in the tree
    /// family's stamp — including *reopened* edges, whose head cannot
    /// create new paths to the target unless it already reached it.
    /// Carried entries are bit-for-bit what a cold build on the mutated
    /// graph would produce (see [`TreeStamp`]).
    ///
    /// The returned cache is pinned to the mutated graph's shape and
    /// carries the cumulative counters forward, with `invalidated` /
    /// `retained` updated. `self` is left untouched, still answering
    /// for the old graph.
    pub fn carry_over(
        &self,
        new_graph: &Graph,
        changed_heads: &[NodeId],
    ) -> (PreprocessCache, InvalidationCounts) {
        let inner = self.inner.lock().unwrap();
        let mut counts = InvalidationCounts::default();
        let mut contexts = HashMap::with_capacity(inner.contexts.len());
        for (&target, slot) in &inner.contexts {
            if slot.stamp.touches_any(changed_heads) {
                counts.contexts_evicted += 1;
            } else {
                counts.contexts_retained += 1;
                contexts.insert(
                    target,
                    Slot {
                        value: slot.value.clone(),
                        stamp: slot.stamp.clone(),
                        last_used: slot.last_used,
                    },
                );
            }
        }
        let mut opt2 = HashMap::with_capacity(inner.opt2.len());
        for (&key, slot) in &inner.opt2 {
            if slot.stamp.touches_any(changed_heads) {
                counts.opt2_evicted += 1;
            } else {
                counts.opt2_retained += 1;
                opt2.insert(
                    key,
                    Slot {
                        value: slot.value.clone(),
                        stamp: slot.stamp.clone(),
                        last_used: slot.last_used,
                    },
                );
            }
        }
        let mut reach = HashMap::with_capacity(inner.reach.len());
        for (&key, slot) in &inner.reach {
            if slot.stamp.touches_any(changed_heads) {
                counts.reach_evicted += 1;
            } else {
                counts.reach_retained += 1;
                reach.insert(
                    key,
                    Slot {
                        value: slot.value.clone(),
                        stamp: slot.stamp.clone(),
                        last_used: slot.last_used,
                    },
                );
            }
        }
        let mut stats = inner.stats;
        stats.invalidated +=
            (counts.contexts_evicted + counts.opt2_evicted + counts.reach_evicted) as u64;
        stats.retained +=
            (counts.contexts_retained + counts.opt2_retained + counts.reach_retained) as u64;
        // Counter exclusivity (`evictions` vs `invalidated`): stamped
        // entries were dropped above and counted once, as invalidated;
        // the LRU cap runs only over the surviving entries, so a
        // stale-and-over-cap entry can never be counted twice. The maps
        // cannot normally exceed the cap here (carry-over only shrinks
        // them), but enforcing it keeps the invariant local rather than
        // depending on every caller's history.
        for e in [
            evict_lru(&mut contexts, self.capacity),
            evict_lru(&mut opt2, self.capacity),
            evict_lru(&mut reach, self.capacity),
        ] {
            stats.evictions += e;
        }
        // Landmark vectors are distance tables over the *old* weights:
        // any carried entry could overestimate a shortened distance and
        // silently break admissibility, so the singleton is always
        // dropped and lazily rebuilt on the mutated graph.
        let cache = PreprocessCache {
            capacity: self.capacity,
            inner: Mutex::new(Inner {
                tick: inner.tick,
                graph_shape: Some((new_graph.node_count(), new_graph.edge_count())),
                contexts,
                opt2,
                reach,
                landmarks: None,
                stats,
            }),
        };
        (cache, counts)
    }

    /// Drops every cached entry (counters are kept). The graph binding
    /// is released too: with no stale trees left, the cache may serve a
    /// different dataset afterwards.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.contexts.clear();
        inner.opt2.clear();
        inner.reach.clear();
        inner.landmarks = None;
        inner.graph_shape = None;
    }
}

/// Removes least-recently-used slots until `map` fits `capacity`;
/// returns how many were evicted.
fn evict_lru<K: std::hash::Hash + Eq + Copy, T>(
    map: &mut HashMap<K, Slot<T>>,
    capacity: usize,
) -> u64 {
    let mut evicted = 0;
    while map.len() > capacity {
        let oldest = map
            .iter()
            .min_by_key(|(_, slot)| slot.last_used)
            .map(|(&k, _)| k)
            .expect("map is non-empty");
        map.remove(&oldest);
        evicted += 1;
    }
    evicted
}

// Worker threads share one cache per dataset; a regression to
// `Send`/`Sync` must fail the build here, not at distant call sites.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PreprocessCache>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, v};

    #[test]
    fn context_is_memoized_and_shared() {
        let g = figure1();
        let cache = PreprocessCache::new();
        let (a, hit_a) = cache.context(&g, v(7));
        let (b, hit_b) = cache.context(&g, v(7));
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the same allocation");
        let s = cache.stats();
        assert_eq!((s.ctx_hits, s.ctx_misses, s.trees_built), (1, 1, 2));
        assert_eq!(cache.context_entries(), 1);
    }

    #[test]
    fn cached_context_matches_cold_build() {
        let g = figure1();
        let cache = PreprocessCache::new();
        let (warm, _) = cache.context(&g, v(7));
        let cold = QueryContext::new(&g, v(7));
        for n in g.nodes() {
            assert_eq!(warm.os_tau(n).to_bits(), cold.os_tau(n).to_bits());
            assert_eq!(warm.bs_tau(n).to_bits(), cold.bs_tau(n).to_bits());
            assert_eq!(warm.bs_sigma(n).to_bits(), cold.bs_sigma(n).to_bits());
            assert_eq!(warm.os_sigma(n).to_bits(), cold.os_sigma(n).to_bits());
        }
    }

    #[test]
    fn lru_evicts_oldest_target() {
        let g = figure1();
        let cache = PreprocessCache::with_capacity(2);
        cache.context(&g, v(5));
        cache.context(&g, v(6));
        // Touch v5 so v6 becomes the LRU entry.
        cache.context(&g, v(5));
        cache.context(&g, v(7));
        assert_eq!(cache.context_entries(), 2);
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        // v5 and v7 survive: v5 hits, v6 re-misses.
        assert!(cache.context(&g, v(5)).1);
        assert!(!cache.context(&g, v(6)).1);
    }

    #[test]
    fn opt2_trees_memoized_per_target_and_keyword() {
        use kor_graph::fixtures::t;
        let g = figure1();
        let index = kor_index::InvertedIndex::build(&g);
        let cache = PreprocessCache::new();
        let (ctx, _) = cache.context(&g, v(7));
        let (a, hit_a) = cache.opt2_trees(&g, &index, &ctx, t(1));
        let (b, hit_b) = cache.opt2_trees(&g, &index, &ctx, t(1));
        let (_, hit_c) = cache.opt2_trees(&g, &index, &ctx, t(2));
        assert!(!hit_a && hit_b && !hit_c);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.opt2_entries(), 2);
        let s = cache.stats();
        assert_eq!((s.opt2_hits, s.opt2_misses), (1, 2));
        // 1 ctx miss + 2 opt2 misses = 6 trees.
        assert_eq!(s.trees_built, 6);
    }

    #[test]
    fn hit_rate_counts_both_kinds() {
        let g = figure1();
        let cache = PreprocessCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
        cache.context(&g, v(7));
        cache.context(&g, v(7));
        cache.context(&g, v(7));
        assert!((cache.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_keeps_counters() {
        let g = figure1();
        let cache = PreprocessCache::new();
        cache.context(&g, v(7));
        cache.clear();
        assert_eq!(cache.context_entries(), 0);
        assert_eq!(cache.stats().ctx_misses, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be ≥ 1")]
    fn zero_capacity_panics() {
        let _ = PreprocessCache::with_capacity(0);
    }

    #[test]
    #[should_panic(expected = "bound to one graph")]
    fn sharing_across_graphs_panics() {
        use kor_graph::GraphBuilder;
        let a = figure1();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["a"]);
        let y = b.add_node(["b"]);
        b.add_edge(x, y, 1.0, 1.0).unwrap();
        let b = b.build().unwrap();
        let cache = PreprocessCache::new();
        cache.context(&a, v(7));
        // Same NodeId namespace, different graph: must panic, not
        // silently answer with figure1's trees.
        cache.context(&b, x);
    }

    #[test]
    fn reach_tree_memoized_per_keyword() {
        use kor_graph::fixtures::t;
        let g = figure1();
        let index = kor_index::InvertedIndex::build(&g);
        let cache = PreprocessCache::new();
        let (a, hit_a) = cache.reach_tree(&g, t(1), index.postings(t(1)));
        let (b, hit_b) = cache.reach_tree(&g, t(1), index.postings(t(1)));
        let (_, hit_c) = cache.reach_tree(&g, t(2), index.postings(t(2)));
        assert!(!hit_a && hit_b && !hit_c);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.reach_hits, s.reach_misses, s.trees_built), (1, 2, 2));
    }

    #[test]
    fn cached_reach_tree_matches_cold_build() {
        use kor_apsp::KeywordReach;
        use kor_graph::fixtures::t;
        let g = figure1();
        let index = kor_index::InvertedIndex::build(&g);
        let cache = PreprocessCache::new();
        let (warm, _) = cache.reach_tree(&g, t(1), index.postings(t(1)));
        let cold = KeywordReach::build_tree(&g, index.postings(t(1)));
        for n in g.nodes() {
            assert_eq!(warm.budget(n).to_bits(), cold.budget(n).to_bits());
            assert_eq!(warm.objective(n).to_bits(), cold.objective(n).to_bits());
        }
    }

    #[test]
    fn landmarks_are_a_shared_singleton() {
        let g = figure1();
        let cache = PreprocessCache::new();
        let (a, hit_a) = cache.landmarks(&g);
        let (b, hit_b) = cache.landmarks(&g);
        assert!(!hit_a && hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
        // 4 Dijkstras per landmark were accounted for — in their own
        // counter, not the query-tree one.
        assert_eq!(cache.stats().landmark_trees_built, 4 * a.len() as u64);
        assert_eq!(cache.stats().trees_built, 0);
    }

    /// Satellite: mutation-driven invalidation and the LRU cap must be
    /// **exclusive** counters — one removed entry bumps exactly one.
    #[test]
    fn invalidation_and_lru_counters_are_exclusive() {
        let g = figure1();
        let cache = PreprocessCache::with_capacity(8);
        cache.context(&g, v(7)); // stamp covers v0..v7 minus dead ends
        cache.context(&g, v(4));
        // Mutation touching v7's tree only: v7 reaches v7, v4's τ tree
        // does not relax head v7 (no path v7 → v4).
        let (warm, counts) = cache.carry_over(&g, &[v(7)]);
        assert_eq!(counts.contexts_evicted, 1);
        assert_eq!(counts.contexts_retained, 1);
        let s = warm.stats();
        assert_eq!(s.invalidated, 1, "stamped entry counts as invalidated");
        assert_eq!(s.evictions, 0, "…and never also as an LRU eviction");
        assert_eq!(s.retained, 1);
    }

    /// Satellite: an entry that is both stamped *and* over the cap is
    /// counted once — as invalidated. Survivors over the cap (possible
    /// only if the capacity shrank between builds) count as evictions.
    #[test]
    fn carry_over_applies_cap_to_survivors_only() {
        let g = figure1();
        let cache = PreprocessCache::with_capacity(3);
        cache.context(&g, v(5));
        cache.context(&g, v(6));
        cache.context(&g, v(7));
        // Shrink the cap in place: the maps now exceed it, which is the
        // only way the defensive cap path can fire.
        let cache = PreprocessCache {
            capacity: 1,
            inner: cache.inner,
        };
        let (warm, counts) = cache.carry_over(&g, &[v(7)]);
        // v7 is in a context's stamp iff v7 reaches that context's
        // target; v7 reaches only itself, so exactly the v7 context is
        // invalidated and the v5/v6 contexts survive the stamp filter.
        assert_eq!(counts.contexts_evicted, 1);
        assert_eq!(counts.contexts_retained, 2);
        let s = warm.stats();
        assert_eq!(s.invalidated, 1);
        // Two survivors over a cap of 1: exactly one LRU eviction, and
        // the invalidated entry was NOT double-counted here.
        assert_eq!(s.evictions, 1);
        assert_eq!(warm.context_entries(), 1);
    }

    #[test]
    fn lru_pressure_bumps_only_evictions() {
        let g = figure1();
        let cache = PreprocessCache::with_capacity(1);
        cache.context(&g, v(6));
        cache.context(&g, v(7)); // evicts v6 by cap
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.invalidated, 0);
        assert_eq!(s.retained, 0);
    }

    #[test]
    fn carry_over_drops_landmarks_and_keeps_clean_reach_trees() {
        use kor_graph::fixtures::t;
        let g = figure1();
        let index = kor_index::InvertedIndex::build(&g);
        let cache = PreprocessCache::new();
        cache.landmarks(&g);
        cache.reach_tree(&g, t(1), index.postings(t(1)));
        // t1's reach tree relaxes nodes that reach {v3, v6}; v1 reaches
        // neither (no out-edges), so a change at head v1 keeps it warm.
        let (warm, counts) = cache.carry_over(&g, &[v(1)]);
        assert_eq!((counts.reach_retained, counts.reach_evicted), (1, 0));
        let (_, reach_hit) = warm.reach_tree(&g, t(1), index.postings(t(1)));
        assert!(reach_hit, "clean reach tree carried over warm");
        let (_, lm_hit) = warm.landmarks(&g);
        assert!(!lm_hit, "landmarks must always rebuild after mutations");
    }

    #[test]
    fn clear_releases_graph_binding() {
        use kor_graph::GraphBuilder;
        let a = figure1();
        let mut b = GraphBuilder::new();
        let x = b.add_node(["a"]);
        let b = b.build().unwrap();
        let cache = PreprocessCache::new();
        cache.context(&a, v(7));
        cache.clear();
        // No stale trees remain, so a new dataset is fine.
        let (_, hit) = cache.context(&b, x);
        assert!(!hit);
    }
}
