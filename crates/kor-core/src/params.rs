//! Algorithm parameters with the paper's defaults.

use std::time::Instant;

use kor_graph::Graph;

use crate::error::KorError;

/// Edge-weight extrema pinned from a *reference* graph, overriding the
/// search graph's own extrema in every place a scaled search consults
/// them (the scaling factor `θ = ε·o_min·b_min/Δ` and the bucket base
/// fallback).
///
/// This is the shard-scoped search entry point: a shard subgraph holds
/// only its own edges, so its extrema can differ from the full
/// dataset's, which would silently change `θ` and with it every scaled
/// label key. A router answering a query on one shard anchors the
/// search to the fused graph's extrema so the shard-local result is
/// bit-compatible with what the single fused engine computes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleAnchor {
    /// The reference graph's smallest edge objective.
    pub o_min: f64,
    /// The reference graph's smallest edge budget.
    pub b_min: f64,
}

impl ScaleAnchor {
    /// Captures the extrema of `graph` (typically the fused full
    /// dataset, not the shard subgraph the search will run on).
    pub fn of(graph: &Graph) -> Self {
        Self {
            o_min: graph.o_min(),
            b_min: graph.b_min(),
        }
    }
}

/// Parameters for `OSScaling` (Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct OsScalingParams {
    /// Scaling parameter `ε ∈ (0, 1)`; approximation ratio is `1/(1−ε)`.
    /// Larger values run faster but degrade accuracy (paper Figures 6–7).
    pub epsilon: f64,
    /// Enable Optimization Strategy 1 (jump to the nearest node holding an
    /// uncovered keyword to find a feasible route early).
    pub use_opt1: bool,
    /// Enable Optimization Strategy 2 (prune via the least frequent query
    /// keyword when it is rare enough).
    pub use_opt2: bool,
    /// Document-frequency fraction below which a keyword counts as
    /// infrequent for Optimization Strategy 2 (the paper suggests 1 %).
    pub infrequent_threshold: f64,
    /// Record a snapshot of every label created (golden-trace tests and
    /// debugging; costs memory).
    pub collect_labels: bool,
    /// Abort the label search with [`KorError::DeadlineExceeded`] once
    /// this instant passes (checked at every queue pop). `None` runs to
    /// exhaustion — online services set this from per-request deadlines.
    pub deadline: Option<Instant>,
    /// Pin the scaling extrema to a reference graph's instead of the
    /// search graph's (see [`ScaleAnchor`]). `None` — the default —
    /// reads them from the graph being searched.
    pub anchor: Option<ScaleAnchor>,
}

impl Default for OsScalingParams {
    /// The paper's default: `ε = 0.5`, both optimizations on, 1 %
    /// infrequency threshold.
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            use_opt1: true,
            use_opt2: true,
            infrequent_threshold: 0.01,
            collect_labels: false,
            deadline: None,
            anchor: None,
        }
    }
}

impl OsScalingParams {
    /// Convenience constructor with a custom `ε`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        Self {
            epsilon,
            ..Self::default()
        }
    }

    /// The paper's plain Algorithm 1 without optimization strategies
    /// (used by the optimization-ablation experiment).
    pub fn without_optimizations(epsilon: f64) -> Self {
        Self {
            epsilon,
            use_opt1: false,
            use_opt2: false,
            ..Self::default()
        }
    }

    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), KorError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 || self.epsilon >= 1.0 {
            return Err(KorError::InvalidEpsilon(self.epsilon));
        }
        Ok(())
    }

    /// The theoretical approximation ratio `1/(1−ε)`.
    pub fn approximation_ratio(&self) -> f64 {
        1.0 / (1.0 - self.epsilon)
    }

    /// The `ε` achieving a desired `1/(1−ε)` approximation ratio
    /// (used by the equal-bound comparison, paper §4.2.3).
    pub fn epsilon_for_ratio(ratio: f64) -> f64 {
        1.0 - 1.0 / ratio
    }
}

/// Parameters for `BucketBound` (Algorithm 2).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketBoundParams {
    /// Scaling parameter `ε ∈ (0, 1)` (shared with `OSScaling`).
    pub epsilon: f64,
    /// Bucket growth factor `β > 1`; approximation ratio is `β/(1−ε)`.
    /// Larger values run faster but degrade accuracy (paper Figures 8–9).
    pub beta: f64,
    /// Optimization Strategy 1 (see [`OsScalingParams::use_opt1`]).
    pub use_opt1: bool,
    /// Optimization Strategy 2 (see [`OsScalingParams::use_opt2`]).
    pub use_opt2: bool,
    /// Infrequency threshold for Optimization Strategy 2.
    pub infrequent_threshold: f64,
    /// Record label snapshots.
    pub collect_labels: bool,
    /// Abort the label search with [`KorError::DeadlineExceeded`] once
    /// this instant passes (see [`OsScalingParams::deadline`]).
    pub deadline: Option<Instant>,
    /// Pin the scaling extrema to a reference graph's (see
    /// [`ScaleAnchor`] and [`OsScalingParams::anchor`]).
    pub anchor: Option<ScaleAnchor>,
}

impl Default for BucketBoundParams {
    /// The paper's default: `ε = 0.5`, `β = 1.2`.
    fn default() -> Self {
        Self {
            epsilon: 0.5,
            beta: 1.2,
            use_opt1: true,
            use_opt2: true,
            infrequent_threshold: 0.01,
            collect_labels: false,
            deadline: None,
            anchor: None,
        }
    }
}

impl BucketBoundParams {
    /// Convenience constructor with custom `ε` and `β`.
    pub fn with(epsilon: f64, beta: f64) -> Self {
        Self {
            epsilon,
            beta,
            ..Self::default()
        }
    }

    /// Validates the parameter ranges.
    pub fn validate(&self) -> Result<(), KorError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 || self.epsilon >= 1.0 {
            return Err(KorError::InvalidEpsilon(self.epsilon));
        }
        if !self.beta.is_finite() || self.beta <= 1.0 {
            return Err(KorError::InvalidBeta(self.beta));
        }
        Ok(())
    }

    /// The theoretical approximation ratio `β/(1−ε)`.
    pub fn approximation_ratio(&self) -> f64 {
        self.beta / (1.0 - self.epsilon)
    }

    /// The `ε` achieving a desired `β/(1−ε)` ratio at this `β`
    /// (equal-bound comparison, §4.2.3).
    pub fn epsilon_for_ratio(ratio: f64, beta: f64) -> f64 {
        1.0 - beta / ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = OsScalingParams::default();
        assert_eq!(p.epsilon, 0.5);
        assert!(p.use_opt1 && p.use_opt2);
        assert_eq!(p.infrequent_threshold, 0.01);
        let b = BucketBoundParams::default();
        assert_eq!(b.epsilon, 0.5);
        assert_eq!(b.beta, 1.2);
    }

    #[test]
    fn validation_ranges() {
        assert!(OsScalingParams::with_epsilon(0.5).validate().is_ok());
        for eps in [0.0, 1.0, -0.1, 1.5, f64::NAN] {
            assert!(OsScalingParams::with_epsilon(eps).validate().is_err());
        }
        assert!(BucketBoundParams::with(0.5, 1.2).validate().is_ok());
        for beta in [1.0, 0.5, f64::INFINITY] {
            assert!(BucketBoundParams::with(0.5, beta).validate().is_err());
        }
    }

    #[test]
    fn approximation_ratios() {
        assert!((OsScalingParams::with_epsilon(0.5).approximation_ratio() - 2.0).abs() < 1e-12);
        assert!((BucketBoundParams::with(0.5, 1.2).approximation_ratio() - 2.4).abs() < 1e-12);
    }

    #[test]
    fn epsilon_for_ratio_round_trips() {
        let eps = OsScalingParams::epsilon_for_ratio(4.0);
        assert!((OsScalingParams::with_epsilon(eps).approximation_ratio() - 4.0).abs() < 1e-9);
        let eps2 = BucketBoundParams::epsilon_for_ratio(4.0, 1.2);
        assert!((BucketBoundParams::with(eps2, 1.2).approximation_ratio() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn without_optimizations_disables_both() {
        let p = OsScalingParams::without_optimizations(0.3);
        assert!(!p.use_opt1 && !p.use_opt2);
        assert_eq!(p.epsilon, 0.3);
    }
}
