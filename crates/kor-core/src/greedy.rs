//! The greedy heuristic (Algorithm 3).
//!
//! From the source, repeatedly pick the next node holding an uncovered
//! query keyword that minimizes Equation 1:
//!
//! ```text
//! score(v_j, R_i) = α·(R_i.OS + OS(τ_{i,j}) + OS(τ_{j,t}))
//!                 + (1−α)·(R_i.BS + BS(τ_{i,j}) + BS(τ_{j,t}))
//! ```
//!
//! until all keywords are selected, then finish with `τ` to the target.
//! `Greedy-b` explores a beam of the `b` best candidates per step (the
//! paper evaluates `b ∈ {1, 2}`). The default **keywords-first** variant
//! always covers the query keywords but may overrun the budget; the
//! **budget-first** variant (end of §3.4) never overruns the budget but
//! may leave keywords uncovered. Neither carries a performance guarantee.

use kor_apsp::{PairCosts, QueryContext};
use kor_graph::{Graph, NodeId, Route};
use kor_index::InvertedIndex;

use crate::cache::PreprocessCache;
use crate::error::KorError;
use crate::query::KorQuery;

/// Which hard constraint the greedy heuristic refuses to violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyMode {
    /// Always cover all query keywords; the budget may be exceeded
    /// (Algorithm 3 as printed).
    KeywordsFirst,
    /// Never exceed the budget; keywords may remain uncovered (the §3.4
    /// modification).
    BudgetFirst,
}

/// Parameters for the greedy heuristic.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyParams {
    /// Balance `α ∈ [0, 1]` between objective (α→1) and budget (α→0) in
    /// Equation 1.
    ///
    /// Note: the paper's prose description of the extremes is swapped
    /// relative to Equation 1; we follow the equation, where `α = 1`
    /// scores by objective only.
    pub alpha: f64,
    /// Beam width `b ≥ 1` (`Greedy-1`, `Greedy-2`, …).
    pub beam_width: usize,
    /// Hard-constraint priority.
    pub mode: GreedyMode,
}

impl Default for GreedyParams {
    /// The paper's default: `α = 0.5`, `Greedy-1`, keywords-first.
    fn default() -> Self {
        Self {
            alpha: 0.5,
            beam_width: 1,
            mode: GreedyMode::KeywordsFirst,
        }
    }
}

impl GreedyParams {
    /// `Greedy-b` with the default α.
    pub fn with_beam(beam_width: usize) -> Self {
        Self {
            beam_width,
            ..Self::default()
        }
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<(), KorError> {
        if !self.alpha.is_finite() || !(0.0..=1.0).contains(&self.alpha) {
            return Err(KorError::InvalidAlpha(self.alpha));
        }
        if self.beam_width == 0 {
            return Err(KorError::InvalidBeamWidth);
        }
        Ok(())
    }
}

/// A route produced by the greedy heuristic, which — unlike the
/// approximation algorithms — may violate either hard constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyRoute {
    /// The materialized route.
    pub route: Route,
    /// Objective score `OS(R)`.
    pub objective: f64,
    /// Budget score `BS(R)`.
    pub budget: f64,
    /// Whether the route covers all query keywords.
    pub covers_keywords: bool,
    /// Whether `BS(R) ≤ Δ`.
    pub within_budget: bool,
}

impl GreedyRoute {
    /// Whether both hard constraints hold.
    pub fn is_feasible(&self) -> bool {
        self.covers_keywords && self.within_budget
    }
}

/// One beam-search state: the chain of selected waypoints.
#[derive(Debug, Clone)]
struct State {
    waypoints: Vec<NodeId>,
    mask: u64,
    objective: f64,
    budget: f64,
}

/// Runs the greedy heuristic. Returns `Ok(None)` when the heuristic gets
/// stuck (target unreachable or no admissible candidate), which the paper
/// reports as a failed query.
pub fn greedy(
    graph: &Graph,
    index: &InvertedIndex,
    pairs: &impl PairCosts,
    query: &KorQuery,
    params: &GreedyParams,
) -> Result<Option<GreedyRoute>, KorError> {
    greedy_with_cache(graph, index, pairs, query, params, None)
}

/// [`greedy`] reusing a shared [`PreprocessCache`] for the to-target
/// backward tree pair.
pub fn greedy_with_cache(
    graph: &Graph,
    index: &InvertedIndex,
    pairs: &impl PairCosts,
    query: &KorQuery,
    params: &GreedyParams,
    cache: Option<&PreprocessCache>,
) -> Result<Option<GreedyRoute>, KorError> {
    params.validate()?;
    // All "to target" τ costs come from one backward tree; `pairs` only
    // answers the source-repeating "from the current node" legs. A
    // supplied cache makes repeat targets skip the two Dijkstras.
    let ctx = match cache {
        Some(cache) => cache.context(graph, query.target).0,
        None => std::sync::Arc::new(QueryContext::new(graph, query.target)),
    };
    if !ctx.reaches_target(query.source) {
        return Ok(None);
    }
    let init = State {
        waypoints: vec![query.source],
        mask: query.keywords.mask_of(graph.keywords(query.source)),
        objective: 0.0,
        budget: 0.0,
    };
    let mut complete: Vec<State> = Vec::new();
    explore(
        graph,
        index,
        pairs,
        &ctx,
        query,
        params,
        init,
        &mut complete,
    );
    // Prefer feasible routes, then covering ones, then lowest objective.
    let best = complete.into_iter().min_by(|a, b| {
        let fa = rank(query, a);
        let fb = rank(query, b);
        fa.cmp(&fb)
            .then_with(|| a.objective.total_cmp(&b.objective))
            .then_with(|| a.budget.total_cmp(&b.budget))
    });
    Ok(best.and_then(|s| materialize(graph, pairs, &ctx, query, &s)))
}

/// Rank 0: feasible; 1: covers keywords only; 2: within budget only;
/// 3: neither.
fn rank(query: &KorQuery, s: &State) -> u8 {
    let covers = query.keywords.is_covering(s.mask);
    let within = s.budget <= query.budget;
    match (covers, within) {
        (true, true) => 0,
        (true, false) => 1,
        (false, true) => 2,
        (false, false) => 3,
    }
}

#[allow(clippy::too_many_arguments)]
fn explore(
    graph: &Graph,
    index: &InvertedIndex,
    pairs: &impl PairCosts,
    ctx: &QueryContext,
    query: &KorQuery,
    params: &GreedyParams,
    state: State,
    complete: &mut Vec<State>,
) {
    let cur = *state.waypoints.last().expect("states start at the source");
    if query.keywords.is_covering(state.mask) {
        finalize(ctx, query, params, state, cur, complete);
        return;
    }
    // Candidate nodes: all locations holding an uncovered query keyword
    // (Algorithm 3 lines 3–5), scored by Equation 1.
    let mut scored: Vec<(f64, NodeId, f64, f64)> = Vec::new();
    for (_, kw) in query.keywords.uncovered(state.mask) {
        for &j in index.postings(kw) {
            if scored.iter().any(|&(_, n, _, _)| n == j) {
                continue;
            }
            let Some(leg) = pairs.tau(cur, j) else {
                continue;
            };
            let Some(finish) = ctx.tau_to_target(j) else {
                continue;
            };
            let total_bud = state.budget + leg.budget + finish.budget;
            if params.mode == GreedyMode::BudgetFirst && total_bud > query.budget {
                continue;
            }
            let total_obj = state.objective + leg.objective + finish.objective;
            let score = params.alpha * total_obj + (1.0 - params.alpha) * total_bud;
            scored.push((score, j, leg.objective, leg.budget));
        }
    }
    if scored.is_empty() {
        // Stuck (keywords-first) or budget exhausted (budget-first): head
        // straight to the target with what we have.
        finalize(ctx, query, params, state, cur, complete);
        return;
    }
    scored.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    for &(_, j, leg_obj, leg_bud) in scored.iter().take(params.beam_width) {
        let mut next = state.clone();
        next.waypoints.push(j);
        next.mask |= query.keywords.mask_of(graph.keywords(j));
        next.objective += leg_obj;
        next.budget += leg_bud;
        explore(graph, index, pairs, ctx, query, params, next, complete);
    }
}

/// Appends the final `τ(cur, t)` leg (lines 12–13) and records the state;
/// drops the branch if the target is unreachable. In budget-first mode a
/// completion that overruns `Δ` is dropped too — that mode's contract is
/// to never exceed the budget.
fn finalize(
    ctx: &QueryContext,
    query: &KorQuery,
    params: &GreedyParams,
    mut state: State,
    cur: NodeId,
    complete: &mut Vec<State>,
) {
    let Some(finish) = ctx.tau_to_target(cur) else {
        return;
    };
    state.objective += finish.objective;
    state.budget += finish.budget;
    if params.mode == GreedyMode::BudgetFirst && state.budget > query.budget {
        return;
    }
    state.waypoints.push(query.target);
    complete.push(state);
}

/// Concatenates the `τ` legs between consecutive waypoints into the full
/// route and re-derives exact scores and coverage from the graph.
fn materialize(
    graph: &Graph,
    pairs: &impl PairCosts,
    ctx: &QueryContext,
    query: &KorQuery,
    state: &State,
) -> Option<GreedyRoute> {
    let mut route = Route::trivial(state.waypoints[0]);
    let n = state.waypoints.len();
    for (i, w) in state.waypoints.windows(2).enumerate() {
        // The final leg always ends at the target: reuse the backward
        // tree instead of building a forward tree from the last waypoint.
        let leg = if i + 2 == n {
            ctx.tau_route(w[0])?.nodes().to_vec()
        } else {
            pairs.tau_path(w[0], w[1])?
        };
        route.extend_with(&Route::new(leg));
    }
    let (objective, budget) = route.scores(graph).expect("τ legs follow graph edges");
    // Coverage from the actual route: intermediate nodes may cover extra
    // keywords beyond the selected waypoints.
    let covers_keywords = route.covers(graph, query.keywords.ids());
    Some(GreedyRoute {
        within_budget: budget <= query.budget,
        covers_keywords,
        objective,
        budget,
        route,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_apsp::CachedPairCosts;
    use kor_graph::fixtures::{figure1, t, v};

    fn setup() -> (Graph, InvertedIndex) {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    fn run(
        g: &Graph,
        idx: &InvertedIndex,
        q: &KorQuery,
        params: &GreedyParams,
    ) -> Option<GreedyRoute> {
        let pairs = CachedPairCosts::new(g);
        greedy(g, idx, &pairs, q, params).unwrap()
    }

    #[test]
    fn covers_keywords_on_example_query() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        let r = run(&g, &idx, &q, &GreedyParams::default()).expect("completes");
        assert!(r.covers_keywords);
        assert_eq!(r.route.nodes().first(), Some(&v(0)));
        assert_eq!(r.route.nodes().last(), Some(&v(7)));
        // scores must be the true route scores
        let (os, bs) = r.route.scores(&g).unwrap();
        assert_eq!((os, bs), (r.objective, r.budget));
    }

    #[test]
    fn greedy2_no_worse_than_greedy1() {
        let (g, idx) = setup();
        for delta in [6.0, 8.0, 10.0, 12.0] {
            let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], delta).unwrap();
            let g1 = run(&g, &idx, &q, &GreedyParams::with_beam(1));
            let g2 = run(&g, &idx, &q, &GreedyParams::with_beam(2));
            if let (Some(a), Some(b)) = (&g1, &g2) {
                if a.is_feasible() && b.is_feasible() {
                    assert!(b.objective <= a.objective + 1e-9, "delta={delta}");
                }
            }
        }
    }

    #[test]
    fn keywords_first_may_overrun_budget() {
        let (g, idx) = setup();
        // Δ = 5 is too tight for covering {t1, t2} (min feasible BS is 5
        // via ⟨v0,v3,v5,v7⟩ — greedy may or may not find it but must
        // still cover the keywords in KeywordsFirst mode).
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 5.0).unwrap();
        if let Some(r) = run(&g, &idx, &q, &GreedyParams::default()) {
            assert!(r.covers_keywords);
        }
    }

    #[test]
    fn budget_first_never_overruns() {
        let (g, idx) = setup();
        for delta in [4.0, 5.0, 7.0, 10.0] {
            let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], delta).unwrap();
            let params = GreedyParams {
                mode: GreedyMode::BudgetFirst,
                ..GreedyParams::default()
            };
            if let Some(r) = run(&g, &idx, &q, &params) {
                assert!(r.within_budget, "delta={delta}: budget {}", r.budget);
            }
        }
    }

    #[test]
    fn source_covering_all_goes_straight() {
        let (g, idx) = setup();
        // t3 is covered by v0 itself.
        let q = KorQuery::new(&g, v(0), v(7), vec![t(3)], 10.0).unwrap();
        let r = run(&g, &idx, &q, &GreedyParams::default()).expect("completes");
        assert_eq!(r.route.nodes(), &[v(0), v(3), v(4), v(7)]);
        assert_eq!(r.objective, 4.0);
        assert!(r.is_feasible());
    }

    #[test]
    fn unreachable_target_returns_none() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(1), v(7), vec![t(1)], 10.0).unwrap();
        assert!(run(&g, &idx, &q, &GreedyParams::default()).is_none());
    }

    #[test]
    fn unreachable_keyword_falls_back_to_partial_cover() {
        let (g, idx) = setup();
        // t5 (only at the sink v1) cannot be covered en route to v7;
        // greedy gets stuck and heads to the target without it.
        let q = KorQuery::new(&g, v(0), v(7), vec![t(5)], 10.0).unwrap();
        let r = run(&g, &idx, &q, &GreedyParams::default()).expect("reaches target");
        assert!(!r.covers_keywords);
        assert_eq!(r.route.nodes().last(), Some(&v(7)));
    }

    #[test]
    fn alpha_zero_prefers_cheap_budget() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 12.0).unwrap();
        let budget_led = run(
            &g,
            &idx,
            &q,
            &GreedyParams {
                alpha: 0.0,
                ..GreedyParams::default()
            },
        )
        .unwrap();
        let objective_led = run(
            &g,
            &idx,
            &q,
            &GreedyParams {
                alpha: 1.0,
                ..GreedyParams::default()
            },
        )
        .unwrap();
        assert!(budget_led.budget <= objective_led.budget + 1e-9);
    }

    #[test]
    fn invalid_params_rejected() {
        let (g, idx) = setup();
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1)], 10.0).unwrap();
        let pairs = CachedPairCosts::new(&g);
        assert!(matches!(
            greedy(
                &g,
                &idx,
                &pairs,
                &q,
                &GreedyParams {
                    alpha: 1.5,
                    ..GreedyParams::default()
                }
            ),
            Err(KorError::InvalidAlpha(_))
        ));
        assert!(matches!(
            greedy(
                &g,
                &idx,
                &pairs,
                &q,
                &GreedyParams {
                    beam_width: 0,
                    ..GreedyParams::default()
                }
            ),
            Err(KorError::InvalidBeamWidth)
        ));
    }
}
