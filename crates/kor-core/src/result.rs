//! Result types for the search algorithms.

use kor_graph::Route;

use crate::label::LabelSnapshot;
use crate::stats::SearchStats;

/// A feasible route with its scores.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    /// The full route `⟨v_s, …, v_t⟩`.
    pub route: Route,
    /// Objective score `OS(R)`.
    pub objective: f64,
    /// Budget score `BS(R)`.
    pub budget: f64,
}

/// Outcome of a single-route search (`OSScaling`, `BucketBound`, exact,
/// brute force).
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// The best route found, or `None` when no feasible route exists.
    pub route: Option<RouteResult>,
    /// Instrumentation counters.
    pub stats: SearchStats,
    /// Snapshots of every label created, in creation order (only when
    /// `collect_labels` was requested).
    pub labels: Vec<LabelSnapshot>,
}

impl SearchResult {
    /// Whether a feasible route was found.
    pub fn is_feasible(&self) -> bool {
        self.route.is_some()
    }

    /// The objective score of the found route (`+inf` when infeasible),
    /// convenient for ratio computations.
    pub fn objective_or_inf(&self) -> f64 {
        self.route.as_ref().map_or(f64::INFINITY, |r| r.objective)
    }
}

/// Outcome of a KkR top-k search (§3.5).
#[derive(Debug, Clone, Default)]
pub struct TopKResult {
    /// Up to `k` feasible routes in ascending objective order.
    pub routes: Vec<RouteResult>,
    /// Instrumentation counters.
    pub stats: SearchStats,
}

impl TopKResult {
    /// Whether at least one feasible route was found.
    pub fn is_feasible(&self) -> bool {
        !self.routes.is_empty()
    }

    /// The best route, if any.
    pub fn best(&self) -> Option<&RouteResult> {
        self.routes.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::NodeId;

    fn rr(objective: f64) -> RouteResult {
        RouteResult {
            route: Route::new(vec![NodeId(0), NodeId(1)]),
            objective,
            budget: 1.0,
        }
    }

    #[test]
    fn search_result_accessors() {
        let empty = SearchResult::default();
        assert!(!empty.is_feasible());
        assert!(empty.objective_or_inf().is_infinite());
        let found = SearchResult {
            route: Some(rr(3.5)),
            ..Default::default()
        };
        assert!(found.is_feasible());
        assert_eq!(found.objective_or_inf(), 3.5);
    }

    #[test]
    fn topk_accessors() {
        let mut r = TopKResult::default();
        assert!(!r.is_feasible());
        assert!(r.best().is_none());
        r.routes = vec![rr(1.0), rr(2.0)];
        assert!(r.is_feasible());
        assert_eq!(r.best().unwrap().objective, 1.0);
    }
}
