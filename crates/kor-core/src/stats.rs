//! Search instrumentation counters.

use std::fmt;

/// Counters describing one search run; used by the experiment harness to
/// report label volumes (e.g. the paper's observation that `BucketBound`
/// "generates much fewer labels" than `OSScaling`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Labels materialized (including ones later rejected).
    pub labels_created: u64,
    /// Labels rejected because existing labels (k-)dominate them.
    pub labels_dominated: u64,
    /// Labels rejected by budget/objective bound checks.
    pub labels_pruned: u64,
    /// Labels removed after being dominated by a newer label.
    pub labels_evicted: u64,
    /// Labels dequeued and expanded.
    pub labels_expanded: u64,
    /// Labels skipped at dequeue time (tombstoned or bound-pruned).
    pub labels_skipped: u64,
    /// Queue/bucket insertions.
    pub queue_pushes: u64,
    /// Times the upper bound `U` (or the top-k set) improved.
    pub upper_bound_updates: u64,
    /// Labels discarded by Optimization Strategy 2.
    pub opt2_discards: u64,
    /// Jump labels created by Optimization Strategy 1.
    pub opt1_jumps: u64,
    /// Buckets created (`BucketBound` only).
    pub buckets_created: u64,
    /// Pre-processing cache hits while setting up this search (query
    /// context and Opt-2 trees; `0` when no cache was supplied).
    pub cache_hits: u64,
    /// Pre-processing cache misses while setting up this search.
    pub cache_misses: u64,
    /// Backward Dijkstra trees built for this search (0 when every
    /// lookup hit the cache; 2 for a cold context, +2 when Optimization
    /// Strategy 2 built its bound trees).
    pub trees_built: u64,
}

impl SearchStats {
    /// Sum of all rejected labels.
    pub fn total_rejections(&self) -> u64 {
        self.labels_dominated + self.labels_pruned + self.opt2_discards
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "created {} | expanded {} | dominated {} | pruned {} | evicted {} | \
             skipped {} | pushes {} | bound-updates {} | opt1 {} | opt2 {} | buckets {} | \
             cache {}/{} | trees {}",
            self.labels_created,
            self.labels_expanded,
            self.labels_dominated,
            self.labels_pruned,
            self.labels_evicted,
            self.labels_skipped,
            self.queue_pushes,
            self.upper_bound_updates,
            self.opt1_jumps,
            self.opt2_discards,
            self.buckets_created,
            self.cache_hits,
            self.cache_misses,
            self.trees_built,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_display() {
        let s = SearchStats {
            labels_dominated: 3,
            labels_pruned: 4,
            opt2_discards: 5,
            ..Default::default()
        };
        assert_eq!(s.total_rejections(), 12);
        let text = s.to_string();
        assert!(text.contains("dominated 3"));
        assert!(text.contains("pruned 4"));
        assert!(text.contains("opt2 5"));
    }
}
