//! In-memory inverted index.

use kor_graph::{Graph, KeywordId, NodeId, QueryKeywords};

/// In-memory inverted file: one sorted posting list per keyword.
///
/// Built once per graph; the KOR algorithms use it to seed
/// keyword-reachability trees (Optimization Strategy 1), to select the
/// least frequent query keyword (Optimization Strategy 2), and to collect
/// candidate nodes in the greedy algorithm.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    postings: Vec<Vec<NodeId>>,
    node_count: usize,
}

impl InvertedIndex {
    /// Builds postings by scanning every node's keyword set.
    pub fn build(graph: &Graph) -> Self {
        let mut postings = vec![Vec::new(); graph.vocab().len()];
        for (node, kw) in graph.keyword_postings() {
            postings[kw.index()].push(node);
        }
        // keyword_postings iterates nodes in ascending id order, so each
        // list is already sorted; assert in debug builds.
        debug_assert!(postings.iter().all(|p| p.windows(2).all(|w| w[0] < w[1])));
        Self {
            postings,
            node_count: graph.node_count(),
        }
    }

    /// Nodes whose keyword sets contain `kw` (ascending id order).
    pub fn postings(&self, kw: KeywordId) -> &[NodeId] {
        self.postings
            .get(kw.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of nodes containing `kw`.
    pub fn doc_frequency(&self, kw: KeywordId) -> usize {
        self.postings(kw).len()
    }

    /// Fraction of nodes containing `kw` (0 for unknown keywords).
    pub fn doc_fraction(&self, kw: KeywordId) -> f64 {
        if self.node_count == 0 {
            0.0
        } else {
            self.doc_frequency(kw) as f64 / self.node_count as f64
        }
    }

    /// The least frequent keyword among `keywords` with its frequency
    /// (ties broken by keyword id for determinism). `None` if empty.
    pub fn least_frequent(&self, keywords: &[KeywordId]) -> Option<(KeywordId, usize)> {
        keywords
            .iter()
            .map(|&k| (k, self.doc_frequency(k)))
            .min_by_key(|&(k, df)| (df, k))
    }

    /// Posting lists for each query keyword bit, in bit order — the seed
    /// layout expected by `kor_apsp::KeywordReach`.
    pub fn query_postings(&self, query: &QueryKeywords) -> Vec<Vec<NodeId>> {
        query
            .ids()
            .iter()
            .map(|&k| self.postings(k).to_vec())
            .collect()
    }

    /// Number of distinct keywords with at least one posting.
    pub fn term_count(&self) -> usize {
        self.postings.iter().filter(|p| !p.is_empty()).count()
    }

    /// Total number of `(keyword, node)` pairs.
    pub fn posting_count(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Number of nodes in the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Iterates `(keyword, postings)` for all keywords with non-empty
    /// postings, in keyword-id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &[NodeId])> {
        self.postings
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_empty())
            .map(|(i, p)| (KeywordId(i as u32), p.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, t, v};
    use kor_graph::GraphBuilder;

    #[test]
    fn postings_on_figure1() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.postings(t(1)), &[v(3), v(6)]);
        assert_eq!(idx.postings(t(2)), &[v(2), v(5)]);
        assert_eq!(idx.postings(t(3)), &[v(0), v(7)]);
        assert_eq!(idx.postings(t(4)), &[v(4)]);
        assert_eq!(idx.postings(t(5)), &[v(1)]);
        assert_eq!(idx.doc_frequency(t(2)), 2);
        assert_eq!(idx.term_count(), 5);
        assert_eq!(idx.posting_count(), 8);
        assert_eq!(idx.node_count(), 8);
    }

    #[test]
    fn unknown_keyword_is_empty() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.postings(KeywordId(99)), &[] as &[NodeId]);
        assert_eq!(idx.doc_frequency(KeywordId(99)), 0);
        assert_eq!(idx.doc_fraction(KeywordId(99)), 0.0);
    }

    #[test]
    fn least_frequent_breaks_ties_by_id() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        // t4 and t5 both have frequency 1; smallest id wins among those
        // supplied.
        assert_eq!(idx.least_frequent(&[t(4), t(5)]), Some((t(4), 1)));
        assert_eq!(idx.least_frequent(&[t(2), t(1)]), Some((t(1), 2)));
        assert_eq!(idx.least_frequent(&[]), None);
    }

    #[test]
    fn doc_fraction() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        assert!((idx.doc_fraction(t(2)) - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn query_postings_align_with_bits() {
        let g = figure1();
        let idx = InvertedIndex::build(&g);
        let q = QueryKeywords::new(vec![t(2), t(1)]).unwrap();
        let pp = idx.query_postings(&q);
        assert_eq!(pp.len(), 2);
        // bit order follows sorted keyword ids: t1 first, then t2
        assert_eq!(pp[q.bit(t(1)).unwrap() as usize], vec![v(3), v(6)]);
        assert_eq!(pp[q.bit(t(2)).unwrap() as usize], vec![v(2), v(5)]);
    }

    #[test]
    fn iter_skips_empty_postings() {
        let mut b = GraphBuilder::new();
        b.vocab_mut().intern("never-used");
        b.add_node(["used"]);
        let g = b.build().unwrap();
        let idx = InvertedIndex::build(&g);
        let terms: Vec<_> = idx.iter().map(|(k, _)| k).collect();
        assert_eq!(terms, vec![g.vocab().get("used").unwrap()]);
    }

    #[test]
    fn empty_graph_index() {
        let g = GraphBuilder::new().build().unwrap();
        let idx = InvertedIndex::build(&g);
        assert_eq!(idx.term_count(), 0);
        assert_eq!(idx.posting_count(), 0);
        assert_eq!(idx.doc_fraction(KeywordId(0)), 0.0);
    }
}
