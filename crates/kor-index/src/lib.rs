//! Inverted file index over node keywords.
//!
//! The paper (§3.1) organizes node keyword information as an inverted
//! file — a vocabulary plus one posting list per word — stored in a
//! disk-resident B+-tree. This crate provides both forms:
//!
//! * [`InvertedIndex`] — the in-memory postings used on the algorithms'
//!   hot paths (keyword-node lookups, document frequencies for
//!   Optimization Strategy 2);
//! * [`DiskInvertedIndex`] — a faithful disk-resident index: a bulk-loaded
//!   B+-tree with fixed 4 KiB pages, an LRU page cache, and a postings
//!   heap ([`bptree`] contains the storage engine).
//!
//! Both forms return identical postings; tests cross-validate them.

pub mod bptree;
mod disk;
mod error;
mod memory;

pub use disk::DiskInvertedIndex;
pub use error::IndexError;
pub use memory::InvertedIndex;
