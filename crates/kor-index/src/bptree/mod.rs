//! A disk-resident B+-tree for term → posting-list lookup.
//!
//! The paper stores its inverted file in a disk-resident B+-tree (§3.1).
//! This is a faithful, read-optimized implementation:
//!
//! * fixed 4 KiB [`page::PAGE_SIZE`] pages; page 0 is the header;
//! * internal pages hold separator keys and child page ids; leaf pages
//!   hold `(term, posting count, heap offset)` entries and are chained
//!   left-to-right for ordered scans;
//! * posting lists live in a byte heap after the tree pages (`u32`
//!   little-endian node ids);
//! * the tree is **bulk-loaded** from sorted terms (the index is built
//!   once per dataset, like the paper's pre-processing step) and read
//!   through an LRU page cache.
//!
//! ```
//! use kor_index::bptree::BPlusTree;
//!
//! let dir = std::env::temp_dir().join("kor-bptree-doc");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.idx");
//! BPlusTree::bulk_build(&path, vec![
//!     ("cafe".to_string(), vec![0, 2]),
//!     ("pub".to_string(), vec![1]),
//! ]).unwrap();
//! let tree = BPlusTree::open(&path).unwrap();
//! assert_eq!(tree.lookup("cafe").unwrap(), Some(vec![0, 2]));
//! assert_eq!(tree.lookup("zoo").unwrap(), None);
//! ```

mod builder;
pub mod page;
mod pager;

use std::path::Path;

use crate::error::IndexError;

pub use builder::{build_file, BuildStats};
pub use page::{MAX_KEY_LEN, NO_PAGE, PAGE_SIZE};
pub use pager::{CacheStats, Pager};

use page::{Page, PAGE_KIND_INTERNAL, PAGE_KIND_LEAF};

/// Read handle over a bulk-loaded B+-tree file.
pub struct BPlusTree {
    pager: Pager,
    root: u32,
    height: u32,
    term_count: u64,
}

impl BPlusTree {
    /// Builds the file at `path` from `entries` (must be sorted by term,
    /// unique) and opens it.
    pub fn bulk_build(path: &Path, entries: Vec<(String, Vec<u32>)>) -> Result<Self, IndexError> {
        build_file(path, entries)?;
        Self::open(path)
    }

    /// Opens an existing index file, validating the header.
    pub fn open(path: &Path) -> Result<Self, IndexError> {
        let pager = Pager::open(path)?;
        let header = pager.read_page(0)?;
        page::check_magic(&header)?;
        let root = header.read_u32(8);
        let height = header.read_u32(12);
        let page_count = header.read_u32(16);
        let term_count = header.read_u64(20);
        if root != NO_PAGE && root >= page_count {
            return Err(IndexError::Corrupt(format!(
                "root page {root} out of range ({page_count} pages)"
            )));
        }
        Ok(Self {
            pager,
            root,
            height,
            term_count,
        })
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> u64 {
        self.term_count
    }

    /// Tree height (0 for an empty tree, 1 for a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Page-cache statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.pager.stats()
    }

    /// Looks up a term's posting list.
    pub fn lookup(&self, term: &str) -> Result<Option<Vec<u32>>, IndexError> {
        if self.root == NO_PAGE {
            return Ok(None);
        }
        let key = term.as_bytes();
        if key.len() > MAX_KEY_LEN {
            return Ok(None);
        }
        let mut page_id = self.root;
        for _ in 0..self.height.saturating_sub(1) {
            let page = self.pager.read_page(page_id)?;
            if page.read_u8(0) != PAGE_KIND_INTERNAL {
                return Err(IndexError::Corrupt(format!(
                    "expected internal page at {page_id}"
                )));
            }
            page_id = descend(&page, key);
        }
        let leaf = self.pager.read_page(page_id)?;
        if leaf.read_u8(0) != PAGE_KIND_LEAF {
            return Err(IndexError::Corrupt(format!(
                "expected leaf page at {page_id}"
            )));
        }
        match find_in_leaf(&leaf, key)? {
            Some((count, offset)) => Ok(Some(self.read_postings(offset, count)?)),
            None => Ok(None),
        }
    }

    /// Scans every `(term, postings)` pair in ascending term order.
    pub fn scan(&self) -> Result<Vec<(String, Vec<u32>)>, IndexError> {
        let mut out = Vec::with_capacity(self.term_count as usize);
        if self.root == NO_PAGE {
            return Ok(out);
        }
        // Descend to the leftmost leaf.
        let mut page_id = self.root;
        for _ in 0..self.height.saturating_sub(1) {
            let page = self.pager.read_page(page_id)?;
            page_id = page.read_u32(3); // child0
        }
        let mut guard = 0u64;
        while page_id != NO_PAGE {
            let leaf = self.pager.read_page(page_id)?;
            if leaf.read_u8(0) != PAGE_KIND_LEAF {
                return Err(IndexError::Corrupt(format!(
                    "leaf chain hit page {page_id}"
                )));
            }
            for_each_leaf_entry(&leaf, |key, count, offset| {
                let term = String::from_utf8_lossy(key).into_owned();
                let postings = self.read_postings(offset, count)?;
                out.push((term, postings));
                Ok(())
            })?;
            page_id = leaf.read_u32(3);
            guard += 1;
            if guard > self.term_count + 2 {
                return Err(IndexError::Corrupt("cyclic leaf chain".into()));
            }
        }
        Ok(out)
    }

    fn read_postings(&self, offset: u64, count: u32) -> Result<Vec<u32>, IndexError> {
        let bytes = self.pager.read_heap(offset, count as usize * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Chooses the child of an internal page for `key`: `child0` if `key` is
/// smaller than the first separator, otherwise the child of the last
/// separator `≤ key`.
fn descend(page: &Page, key: &[u8]) -> u32 {
    let nkeys = page.read_u16(1) as usize;
    let mut child = page.read_u32(3);
    let mut at = 7usize;
    for _ in 0..nkeys {
        let klen = page.read_u16(at) as usize;
        let sep = page.read_bytes(at + 2, klen);
        let entry_child = page.read_u32(at + 2 + klen);
        if key < sep {
            break;
        }
        child = entry_child;
        at += 2 + klen + 4;
    }
    child
}

fn find_in_leaf(page: &Page, key: &[u8]) -> Result<Option<(u32, u64)>, IndexError> {
    let mut found = None;
    for_each_leaf_entry(page, |k, count, offset| {
        if k == key {
            found = Some((count, offset));
        }
        Ok(())
    })?;
    Ok(found)
}

fn for_each_leaf_entry(
    page: &Page,
    mut f: impl FnMut(&[u8], u32, u64) -> Result<(), IndexError>,
) -> Result<(), IndexError> {
    let nkeys = page.read_u16(1) as usize;
    let mut at = 7usize;
    for _ in 0..nkeys {
        if at + 2 > PAGE_SIZE {
            return Err(IndexError::Corrupt("leaf entry past page end".into()));
        }
        let klen = page.read_u16(at) as usize;
        if at + 2 + klen + 12 > PAGE_SIZE {
            return Err(IndexError::Corrupt("leaf entry past page end".into()));
        }
        let key = page.read_bytes(at + 2, klen);
        let count = page.read_u32(at + 2 + klen);
        let offset = page.read_u64(at + 2 + klen + 4);
        f(key, count, offset)?;
        at += 2 + klen + 12;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kor-bptree-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn entries(n: usize) -> Vec<(String, Vec<u32>)> {
        (0..n)
            .map(|i| {
                let term = format!("term{i:05}");
                let postings: Vec<u32> = (0..(i % 7 + 1) as u32).map(|k| i as u32 + k).collect();
                (term, postings)
            })
            .collect()
    }

    #[test]
    fn empty_tree_lookups_none() {
        let path = tmp("empty.idx");
        let tree = BPlusTree::bulk_build(&path, vec![]).unwrap();
        assert_eq!(tree.term_count(), 0);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.lookup("anything").unwrap(), None);
        assert!(tree.scan().unwrap().is_empty());
    }

    #[test]
    fn single_leaf_round_trip() {
        let path = tmp("single.idx");
        let data = entries(10);
        let tree = BPlusTree::bulk_build(&path, data.clone()).unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.term_count(), 10);
        for (term, postings) in &data {
            assert_eq!(tree.lookup(term).unwrap().as_ref(), Some(postings));
        }
        assert_eq!(tree.lookup("nope").unwrap(), None);
    }

    #[test]
    fn multi_level_round_trip() {
        let path = tmp("multi.idx");
        let data = entries(5000);
        let tree = BPlusTree::bulk_build(&path, data.clone()).unwrap();
        assert!(tree.height() >= 2, "5000 terms must need internal pages");
        for (term, postings) in data.iter().step_by(37) {
            assert_eq!(
                tree.lookup(term).unwrap().as_ref(),
                Some(postings),
                "{term}"
            );
        }
        // probes around boundaries
        assert_eq!(tree.lookup("term00000").unwrap(), Some(vec![0]));
        assert_eq!(
            tree.lookup("term04999").unwrap().unwrap().len(),
            4999 % 7 + 1
        );
    }

    #[test]
    fn scan_returns_sorted_everything() {
        let path = tmp("scan.idx");
        let data = entries(1234);
        let tree = BPlusTree::bulk_build(&path, data.clone()).unwrap();
        let scanned = tree.scan().unwrap();
        assert_eq!(scanned, data);
    }

    #[test]
    fn lookup_misses_between_keys() {
        let path = tmp("misses.idx");
        let tree = BPlusTree::bulk_build(&path, entries(500)).unwrap();
        assert_eq!(tree.lookup("term00123x").unwrap(), None);
        assert_eq!(tree.lookup("").unwrap(), None);
        assert_eq!(tree.lookup("zzzz").unwrap(), None);
        assert_eq!(tree.lookup("aaaa").unwrap(), None);
    }

    #[test]
    fn oversized_key_lookup_is_none() {
        let path = tmp("oversize.idx");
        let tree = BPlusTree::bulk_build(&path, entries(5)).unwrap();
        let long = "x".repeat(MAX_KEY_LEN + 1);
        assert_eq!(tree.lookup(&long).unwrap(), None);
    }

    #[test]
    fn cache_serves_repeated_lookups() {
        let path = tmp("cache.idx");
        let tree = BPlusTree::bulk_build(&path, entries(2000)).unwrap();
        for _ in 0..10 {
            let _ = tree.lookup("term00042").unwrap();
        }
        let stats = tree.cache_stats();
        assert!(
            stats.hits > 0,
            "repeated lookups must hit the cache: {stats:?}"
        );
    }

    #[test]
    fn open_rejects_garbage() {
        let path = tmp("garbage.idx");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            BPlusTree::open(&path),
            Err(IndexError::Corrupt(_))
        ));
    }

    #[test]
    fn open_rejects_truncated_file() {
        let path = tmp("trunc.idx");
        std::fs::write(&path, b"short").unwrap();
        assert!(BPlusTree::open(&path).is_err());
    }

    #[test]
    fn empty_postings_are_preserved() {
        let path = tmp("emptypost.idx");
        let tree = BPlusTree::bulk_build(&path, vec![("a".into(), vec![]), ("b".into(), vec![7])])
            .unwrap();
        assert_eq!(tree.lookup("a").unwrap(), Some(vec![]));
        assert_eq!(tree.lookup("b").unwrap(), Some(vec![7]));
    }
}
