//! Bulk loader: sorted `(term, postings)` pairs → index file.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use crate::error::IndexError;

use super::page::{
    Page, MAGIC, MAX_KEY_LEN, NO_PAGE, PAGE_KIND_INTERNAL, PAGE_KIND_LEAF, PAGE_SIZE,
};

const LEAF_HEADER: usize = 7; // kind u8 + nkeys u16 + next_leaf u32
const INTERNAL_HEADER: usize = 7; // kind u8 + nkeys u16 + child0 u32
const LEAF_ENTRY_FIXED: usize = 2 + 4 + 8; // klen + count + offset
const INTERNAL_ENTRY_FIXED: usize = 2 + 4; // klen + child

/// Result of a bulk build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildStats {
    /// Number of terms indexed.
    pub terms: usize,
    /// Total pages written (including the header).
    pub pages: u32,
    /// Tree height (0 = empty, 1 = single leaf).
    pub height: u32,
    /// Bytes of the postings heap.
    pub heap_bytes: u64,
}

/// Writes a complete index file at `path` from sorted, unique entries.
///
/// # Errors
///
/// Fails if entries are unsorted/duplicated, a key exceeds
/// [`MAX_KEY_LEN`], or I/O fails.
pub fn build_file(path: &Path, entries: Vec<(String, Vec<u32>)>) -> Result<BuildStats, IndexError> {
    for w in entries.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(IndexError::Corrupt(format!(
                "bulk-load input not strictly sorted: {:?} >= {:?}",
                w[0].0, w[1].0
            )));
        }
    }
    for (term, _) in &entries {
        if term.len() > MAX_KEY_LEN {
            return Err(IndexError::KeyTooLong(term.len()));
        }
    }

    // 1. Group entries into leaves by byte budget.
    let mut leaves: Vec<Vec<usize>> = Vec::new(); // entry indices per leaf
    {
        let mut current: Vec<usize> = Vec::new();
        let mut used = LEAF_HEADER;
        for (i, (term, _)) in entries.iter().enumerate() {
            let sz = LEAF_ENTRY_FIXED + term.len();
            if used + sz > PAGE_SIZE && !current.is_empty() {
                leaves.push(std::mem::take(&mut current));
                used = LEAF_HEADER;
            }
            current.push(i);
            used += sz;
        }
        if !current.is_empty() {
            leaves.push(current);
        }
    }

    // 2. Build internal levels bottom-up. Each level is a list of nodes;
    //    a node is a list of (first_key_index, child_page_slot) where page
    //    slots are assigned later. We track children per level as index
    //    ranges into the previous level.
    //    first_key(leaf) = first entry's term.
    let mut levels: Vec<Vec<Vec<usize>>> = Vec::new(); // levels[l] = nodes; node = child indices in level below
    let mut below_count = leaves.len();
    let mut below_first_key: Vec<usize> = leaves.iter().map(|l| l[0]).collect();
    while below_count > 1 {
        let mut nodes: Vec<Vec<usize>> = Vec::new();
        let mut current: Vec<usize> = Vec::new();
        let mut used = INTERNAL_HEADER;
        for child in 0..below_count {
            // child0 consumes no key; subsequent children store separators
            let sz = if current.is_empty() {
                0
            } else {
                INTERNAL_ENTRY_FIXED + entries[below_first_key[child]].0.len()
            };
            if used + sz > PAGE_SIZE && !current.is_empty() {
                nodes.push(std::mem::take(&mut current));
                used = INTERNAL_HEADER;
            }
            current.push(child);
            used += sz;
        }
        if !current.is_empty() {
            nodes.push(current);
        }
        below_first_key = nodes.iter().map(|node| below_first_key[node[0]]).collect();
        below_count = nodes.len();
        levels.push(nodes);
    }

    // 3. Assign page ids: header = 0, leaves = 1.., then levels upward.
    let leaf_base = 1u32;
    let mut level_bases = Vec::with_capacity(levels.len());
    let mut next_id = leaf_base + leaves.len() as u32;
    for level in &levels {
        level_bases.push(next_id);
        next_id += level.len() as u32;
    }
    let total_pages = next_id;
    let height = if entries.is_empty() {
        0
    } else {
        1 + levels.len() as u32
    };
    let root = if entries.is_empty() {
        NO_PAGE
    } else if levels.is_empty() {
        leaf_base
    } else {
        total_pages - 1
    };

    // 4. Assign heap offsets in entry order.
    let heap_base = total_pages as u64 * PAGE_SIZE as u64;
    let mut offsets = Vec::with_capacity(entries.len());
    let mut cursor = heap_base;
    for (_, postings) in &entries {
        offsets.push(cursor);
        cursor += postings.len() as u64 * 4;
    }
    let heap_bytes = cursor - heap_base;

    // 5. Write the file.
    let mut out = BufWriter::new(File::create(path)?);
    let mut header = Page::new();
    header.write_bytes(0, MAGIC);
    header.write_u32(8, root);
    header.write_u32(12, height);
    header.write_u32(16, total_pages);
    header.write_u64(20, entries.len() as u64);
    header.write_u64(28, heap_base);
    out.write_all(header.bytes())?;

    for (li, leaf) in leaves.iter().enumerate() {
        let mut page = Page::new();
        page.write_u8(0, PAGE_KIND_LEAF);
        page.write_u16(1, leaf.len() as u16);
        let next = if li + 1 < leaves.len() {
            leaf_base + li as u32 + 1
        } else {
            NO_PAGE
        };
        page.write_u32(3, next);
        let mut at = LEAF_HEADER;
        for &ei in leaf {
            let (term, postings) = &entries[ei];
            page.write_u16(at, term.len() as u16);
            page.write_bytes(at + 2, term.as_bytes());
            page.write_u32(at + 2 + term.len(), postings.len() as u32);
            page.write_u64(at + 2 + term.len() + 4, offsets[ei]);
            at += LEAF_ENTRY_FIXED + term.len();
        }
        out.write_all(page.bytes())?;
    }

    // first-key of every node in the level below (for separators)
    let mut below_firsts: Vec<usize> = leaves.iter().map(|l| l[0]).collect();
    let mut below_base = leaf_base;
    for (lvl, nodes) in levels.iter().enumerate() {
        for node in nodes {
            let mut page = Page::new();
            page.write_u8(0, PAGE_KIND_INTERNAL);
            page.write_u16(1, node.len() as u16 - 1);
            page.write_u32(3, below_base + node[0] as u32);
            let mut at = INTERNAL_HEADER;
            for &child in &node[1..] {
                let key = entries[below_firsts[child]].0.as_bytes();
                page.write_u16(at, key.len() as u16);
                page.write_bytes(at + 2, key);
                page.write_u32(at + 2 + key.len(), below_base + child as u32);
                at += INTERNAL_ENTRY_FIXED + key.len();
            }
            out.write_all(page.bytes())?;
        }
        below_firsts = nodes.iter().map(|n| below_firsts[n[0]]).collect();
        below_base = level_bases[lvl];
    }

    for (_, postings) in &entries {
        for &p in postings {
            out.write_all(&p.to_le_bytes())?;
        }
    }
    out.flush()?;

    Ok(BuildStats {
        terms: entries.len(),
        pages: total_pages,
        height,
        heap_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kor-builder-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn rejects_unsorted_input() {
        let path = tmp("unsorted.idx");
        let r = build_file(&path, vec![("b".into(), vec![1]), ("a".into(), vec![2])]);
        assert!(matches!(r, Err(IndexError::Corrupt(_))));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let path = tmp("dup.idx");
        let r = build_file(&path, vec![("a".into(), vec![1]), ("a".into(), vec![2])]);
        assert!(matches!(r, Err(IndexError::Corrupt(_))));
    }

    #[test]
    fn rejects_oversized_keys() {
        let path = tmp("bigkey.idx");
        let r = build_file(&path, vec![("x".repeat(MAX_KEY_LEN + 1), vec![])]);
        assert!(matches!(r, Err(IndexError::KeyTooLong(_))));
    }

    #[test]
    fn stats_for_empty_build() {
        let path = tmp("emptystats.idx");
        let stats = build_file(&path, vec![]).unwrap();
        assert_eq!(stats.terms, 0);
        assert_eq!(stats.height, 0);
        assert_eq!(stats.pages, 1);
        assert_eq!(stats.heap_bytes, 0);
    }

    #[test]
    fn stats_scale_with_input() {
        let path = tmp("bigstats.idx");
        let entries: Vec<(String, Vec<u32>)> = (0..3000)
            .map(|i| (format!("key{i:06}"), vec![i as u32; 3]))
            .collect();
        let stats = build_file(&path, entries).unwrap();
        assert_eq!(stats.terms, 3000);
        assert!(stats.height >= 2);
        assert_eq!(stats.heap_bytes, 3000 * 3 * 4);
        let file_len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(
            file_len,
            stats.pages as u64 * PAGE_SIZE as u64 + stats.heap_bytes
        );
    }
}
