//! Page I/O with an LRU cache.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::error::IndexError;

use super::page::{Page, PAGE_SIZE};

/// Default number of cached pages (1 MiB of cache).
pub const DEFAULT_CACHE_PAGES: usize = 256;

/// Cache hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that required a disk read.
    pub misses: u64,
}

struct PagerInner {
    file: File,
    cache: HashMap<u32, (Arc<Page>, u64)>,
    tick: u64,
    capacity: usize,
    stats: CacheStats,
}

/// Read-only pager over an index file.
pub struct Pager {
    inner: Mutex<PagerInner>,
}

impl Pager {
    /// Opens `path` with the default cache capacity.
    pub fn open(path: &Path) -> Result<Self, IndexError> {
        Self::with_capacity(path, DEFAULT_CACHE_PAGES)
    }

    /// Opens `path` with a custom cache capacity (minimum 1).
    pub fn with_capacity(path: &Path, capacity: usize) -> Result<Self, IndexError> {
        let file = File::open(path)?;
        Ok(Self {
            inner: Mutex::new(PagerInner {
                file,
                cache: HashMap::new(),
                tick: 0,
                capacity: capacity.max(1),
                stats: CacheStats::default(),
            }),
        })
    }

    /// Reads page `id`, serving from the cache when possible.
    pub fn read_page(&self, id: u32) -> Result<Arc<Page>, IndexError> {
        let mut inner = self.inner.lock().expect("pager poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let cached = inner.cache.get_mut(&id).map(|(page, stamp)| {
            *stamp = tick;
            page.clone()
        });
        if let Some(page) = cached {
            inner.stats.hits += 1;
            return Ok(page);
        }
        inner.stats.misses += 1;
        let mut buf = vec![0u8; PAGE_SIZE];
        inner
            .file
            .seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        inner.file.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IndexError::Corrupt(format!("page {id} beyond end of file"))
            } else {
                IndexError::Io(e)
            }
        })?;
        let page = Arc::new(Page::from_bytes(&buf));
        if inner.cache.len() >= inner.capacity {
            // Evict the least-recently-used entry (linear scan: the cache
            // holds a few hundred entries at most).
            if let Some(&victim) = inner
                .cache
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(id, _)| id)
            {
                inner.cache.remove(&victim);
            }
        }
        inner.cache.insert(id, (page.clone(), tick));
        Ok(page)
    }

    /// Reads `len` raw bytes at absolute file `offset` (postings heap).
    pub fn read_heap(&self, offset: u64, len: usize) -> Result<Vec<u8>, IndexError> {
        let mut inner = self.inner.lock().expect("pager poisoned");
        let mut buf = vec![0u8; len];
        inner.file.seek(SeekFrom::Start(offset))?;
        inner.file.read_exact(&mut buf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                IndexError::Corrupt(format!("heap read at {offset}+{len} beyond end of file"))
            } else {
                IndexError::Io(e)
            }
        })?;
        Ok(buf)
    }

    /// Current cache statistics.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().expect("pager poisoned").stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_pages(name: &str, n: u32) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kor-pager-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        for i in 0..n {
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = i as u8;
            f.write_all(&page).unwrap();
        }
        f.write_all(b"HEAPDATA").unwrap();
        path
    }

    #[test]
    fn reads_correct_pages() {
        let path = write_pages("pages.idx", 4);
        let pager = Pager::open(&path).unwrap();
        for i in 0..4 {
            assert_eq!(pager.read_page(i).unwrap().read_u8(0), i as u8);
        }
    }

    #[test]
    fn cache_hits_counted() {
        let path = write_pages("hits.idx", 2);
        let pager = Pager::open(&path).unwrap();
        let _ = pager.read_page(0).unwrap();
        let _ = pager.read_page(0).unwrap();
        let s = pager.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let path = write_pages("lru.idx", 3);
        let pager = Pager::with_capacity(&path, 2).unwrap();
        let _ = pager.read_page(0).unwrap();
        let _ = pager.read_page(1).unwrap();
        let _ = pager.read_page(2).unwrap(); // evicts page 0
        let _ = pager.read_page(1).unwrap(); // still cached
        assert_eq!(pager.stats().hits, 1);
        let _ = pager.read_page(0).unwrap(); // must re-read
        assert_eq!(pager.stats().misses, 4);
    }

    #[test]
    fn out_of_range_page_is_corrupt() {
        let path = write_pages("oob.idx", 1);
        let pager = Pager::open(&path).unwrap();
        assert!(matches!(pager.read_page(99), Err(IndexError::Corrupt(_))));
    }

    #[test]
    fn heap_reads_raw_bytes() {
        let path = write_pages("heap.idx", 2);
        let pager = Pager::open(&path).unwrap();
        let bytes = pager.read_heap(2 * PAGE_SIZE as u64, 8).unwrap();
        assert_eq!(&bytes, b"HEAPDATA");
        assert!(pager.read_heap(2 * PAGE_SIZE as u64 + 4, 8).is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            Pager::open(Path::new("/nonexistent/kor.idx")),
            Err(IndexError::Io(_))
        ));
    }
}
