//! Fixed-size page representation and byte-level accessors.

use crate::error::IndexError;

/// Size of every page in the index file.
pub const PAGE_SIZE: usize = 4096;

/// Sentinel for "no page" (empty root, end of leaf chain).
pub const NO_PAGE: u32 = u32::MAX;

/// Maximum encodable key length in bytes.
pub const MAX_KEY_LEN: usize = 512;

/// Page kind tag: internal node.
pub const PAGE_KIND_INTERNAL: u8 = 1;
/// Page kind tag: leaf node.
pub const PAGE_KIND_LEAF: u8 = 2;

/// File magic written at the start of the header page.
pub const MAGIC: &[u8; 8] = b"KORIDX1\0";

/// A 4 KiB page buffer with little-endian accessors.
#[derive(Clone)]
pub struct Page(Box<[u8; PAGE_SIZE]>);

impl Page {
    /// A zeroed page.
    pub fn new() -> Self {
        Page(Box::new([0u8; PAGE_SIZE]))
    }

    /// Wraps an owned buffer.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not exactly [`PAGE_SIZE`] long.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut p = Page::new();
        p.0.copy_from_slice(bytes);
        p
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.0
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, at: usize) -> u8 {
        self.0[at]
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn read_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.0[at], self.0[at + 1]])
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, at: usize) -> u32 {
        u32::from_le_bytes([self.0[at], self.0[at + 1], self.0[at + 2], self.0[at + 3]])
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, at: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.0[at..at + 8]);
        u64::from_le_bytes(b)
    }

    /// Borrows `len` bytes starting at `at`.
    #[inline]
    pub fn read_bytes(&self, at: usize, len: usize) -> &[u8] {
        &self.0[at..at + len]
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, at: usize, v: u8) {
        self.0[at] = v;
    }

    /// Writes a little-endian `u16`.
    pub fn write_u16(&mut self, at: usize, v: u16) {
        self.0[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, at: usize, v: u32) {
        self.0[at..at + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, at: usize, v: u64) {
        self.0[at..at + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies raw bytes into the page.
    pub fn write_bytes(&mut self, at: usize, bytes: &[u8]) {
        self.0[at..at + bytes.len()].copy_from_slice(bytes);
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page(kind={})", self.0[0])
    }
}

/// Validates the header magic.
pub fn check_magic(header: &Page) -> Result<(), IndexError> {
    if &header.bytes()[..8] != MAGIC {
        return Err(IndexError::Corrupt("bad magic".into()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut p = Page::new();
        p.write_u8(0, 0xAB);
        p.write_u16(1, 0x1234);
        p.write_u32(3, 0xDEADBEEF);
        p.write_u64(7, 0x0123_4567_89AB_CDEF);
        assert_eq!(p.read_u8(0), 0xAB);
        assert_eq!(p.read_u16(1), 0x1234);
        assert_eq!(p.read_u32(3), 0xDEADBEEF);
        assert_eq!(p.read_u64(7), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn round_trip_bytes() {
        let mut p = Page::new();
        p.write_bytes(100, b"hello");
        assert_eq!(p.read_bytes(100, 5), b"hello");
    }

    #[test]
    fn from_bytes_copies() {
        let mut raw = vec![0u8; PAGE_SIZE];
        raw[0] = 7;
        let p = Page::from_bytes(&raw);
        assert_eq!(p.read_u8(0), 7);
    }

    #[test]
    fn magic_check() {
        let mut p = Page::new();
        assert!(check_magic(&p).is_err());
        p.write_bytes(0, MAGIC);
        assert!(check_magic(&p).is_ok());
    }

    #[test]
    #[should_panic]
    fn from_bytes_wrong_len_panics() {
        let _ = Page::from_bytes(&[0u8; 10]);
    }
}
