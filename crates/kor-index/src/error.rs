//! Error type for index construction and lookup.

use std::fmt;
use std::io;

/// Errors from the disk-resident index.
#[derive(Debug)]
pub enum IndexError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file contents are not a valid index (bad magic, truncated
    /// pages, cyclic chains…).
    Corrupt(String),
    /// A key exceeds the maximum encodable length.
    KeyTooLong(usize),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Io(e) => write!(f, "index I/O error: {e}"),
            IndexError::Corrupt(msg) => write!(f, "corrupt index: {msg}"),
            IndexError::KeyTooLong(n) => {
                write!(f, "key of {n} bytes exceeds the maximum key length")
            }
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IndexError {
    fn from(e: io::Error) -> Self {
        IndexError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let io_err = IndexError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(io_err.to_string().contains("gone"));
        assert!(IndexError::Corrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        assert!(IndexError::KeyTooLong(9999).to_string().contains("9999"));
    }

    #[test]
    fn source_chains_io() {
        use std::error::Error;
        let e = IndexError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        assert!(IndexError::Corrupt("c".into()).source().is_none());
    }
}
