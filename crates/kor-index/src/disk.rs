//! Disk-resident inverted file built on the B+-tree.

use std::collections::BTreeMap;
use std::path::Path;

use kor_graph::{Graph, NodeId};

use crate::bptree::BPlusTree;
use crate::error::IndexError;

/// Disk-resident inverted file: term → sorted node-id postings, stored in
/// a bulk-loaded B+-tree (the paper's §3.1 index organization).
pub struct DiskInvertedIndex {
    tree: BPlusTree,
}

impl DiskInvertedIndex {
    /// Builds the index file for `graph` at `path` and opens it.
    pub fn build(graph: &Graph, path: &Path) -> Result<Self, IndexError> {
        // BTreeMap gives the strict term ordering the bulk loader needs.
        let mut by_term: BTreeMap<String, Vec<u32>> = BTreeMap::new();
        for (node, kw) in graph.keyword_postings() {
            let term = graph
                .vocab()
                .resolve(kw)
                .expect("graph keywords are interned")
                .to_owned();
            by_term.entry(term).or_default().push(node.0);
        }
        let entries: Vec<(String, Vec<u32>)> = by_term.into_iter().collect();
        let tree = BPlusTree::bulk_build(path, entries)?;
        Ok(Self { tree })
    }

    /// Opens an existing index file.
    pub fn open(path: &Path) -> Result<Self, IndexError> {
        Ok(Self {
            tree: BPlusTree::open(path)?,
        })
    }

    /// The posting list for `term`, or `None` if the term is unknown.
    pub fn postings(&self, term: &str) -> Result<Option<Vec<NodeId>>, IndexError> {
        Ok(self
            .tree
            .lookup(term)?
            .map(|ids| ids.into_iter().map(NodeId).collect()))
    }

    /// Number of nodes containing `term` (0 if unknown).
    pub fn doc_frequency(&self, term: &str) -> Result<usize, IndexError> {
        Ok(self.tree.lookup(term)?.map_or(0, |p| p.len()))
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> u64 {
        self.tree.term_count()
    }

    /// All `(term, postings)` pairs in ascending term order.
    pub fn scan(&self) -> Result<Vec<(String, Vec<NodeId>)>, IndexError> {
        Ok(self
            .tree
            .scan()?
            .into_iter()
            .map(|(t, p)| (t, p.into_iter().map(NodeId).collect()))
            .collect())
    }

    /// Underlying build statistics are not retained; expose tree shape
    /// instead.
    pub fn height(&self) -> u32 {
        self.tree.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::InvertedIndex;
    use kor_graph::fixtures::figure1;
    use kor_graph::GraphBuilder;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("kor-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn disk_matches_memory_on_figure1() {
        let g = figure1();
        let mem = InvertedIndex::build(&g);
        let disk = DiskInvertedIndex::build(&g, &tmp("fig1.idx")).unwrap();
        assert_eq!(disk.term_count(), 5);
        for (kw, term) in g.vocab().iter() {
            let mem_postings = mem.postings(kw);
            let disk_postings = disk.postings(term).unwrap().unwrap();
            assert_eq!(disk_postings, mem_postings, "term {term}");
            assert_eq!(disk.doc_frequency(term).unwrap(), mem_postings.len());
        }
        assert_eq!(disk.postings("nonexistent").unwrap(), None);
        assert_eq!(disk.doc_frequency("nonexistent").unwrap(), 0);
    }

    #[test]
    fn scan_is_sorted_and_complete() {
        let g = figure1();
        let disk = DiskInvertedIndex::build(&g, &tmp("scan.idx")).unwrap();
        let all = disk.scan().unwrap();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        let total: usize = all.iter().map(|(_, p)| p.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn reopen_after_build() {
        let g = figure1();
        let path = tmp("reopen.idx");
        {
            let _ = DiskInvertedIndex::build(&g, &path).unwrap();
        }
        let disk = DiskInvertedIndex::open(&path).unwrap();
        assert_eq!(disk.term_count(), 5);
        assert!(disk.postings("t1").unwrap().is_some());
    }

    #[test]
    fn larger_vocabulary_round_trip() {
        let mut b = GraphBuilder::new();
        // 600 nodes, each with three tags drawn from a 900-term vocabulary.
        for i in 0..600u32 {
            let tags = [
                format!("tag{:04}", i % 900),
                format!("tag{:04}", (i * 7 + 3) % 900),
                "common".to_string(),
            ];
            b.add_node(tags.iter().map(String::as_str));
        }
        let g = b.build().unwrap();
        let mem = InvertedIndex::build(&g);
        let disk = DiskInvertedIndex::build(&g, &tmp("big.idx")).unwrap();
        assert_eq!(disk.term_count() as usize, g.vocab().len());
        for (kw, term) in g.vocab().iter() {
            assert_eq!(
                disk.postings(term).unwrap().unwrap(),
                mem.postings(kw),
                "term {term}"
            );
        }
        assert_eq!(disk.doc_frequency("common").unwrap(), 600);
    }

    #[test]
    fn empty_graph_builds_empty_index() {
        let g = GraphBuilder::new().build().unwrap();
        let disk = DiskInvertedIndex::build(&g, &tmp("empty.idx")).unwrap();
        assert_eq!(disk.term_count(), 0);
        assert_eq!(disk.postings("x").unwrap(), None);
        assert!(disk.scan().unwrap().is_empty());
    }
}
