//! Golden test fixtures derived from the paper.
//!
//! [`figure1`] reconstructs the running-example graph of Figure 1 from
//! every numeric fact stated in the paper (Definitions 3–4 examples,
//! pre-processing examples in §3.1, Examples 1–2, and Table 1). Workspace
//! crates use it to pin the algorithms to the paper's exact traces.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::ids::{KeywordId, NodeId};

/// The Figure-1 example graph.
///
/// Eight nodes `v0..v7`, keywords `t1..t5` (one per node), twelve directed
/// edges with `(objective, budget)` weights:
///
/// ```text
/// v0:t3  v1:t5  v2:t2  v3:t1  v4:t4  v5:t2  v6:t1  v7:t3
/// v0→v1 (4,1)  v0→v2 (1,3)  v0→v3 (2,2)  v2→v3 (3,2)
/// v2→v6 (1,1)  v3→v1 (1,2)  v3→v4 (1,2)  v3→v5 (3,2)
/// v4→v7 (1,3)  v5→v4 (2,1)  v5→v7 (4,1)  v6→v5 (2,6)
/// ```
///
/// Reproduced facts (all covered by this crate's tests and by the golden
/// algorithm tests in `kor-core`):
///
/// * `OS(⟨v0,v3,v5,v7⟩) = 9`, `BS = 5` (Definition 3 example);
/// * `Q = ⟨v0, v7, {t1,t2,t3}, 6⟩` ⇒ `⟨v0,v3,v5,v7⟩` with `OS 9`, `BS 5`
///   (Definition 4's second case);
/// * `τ(v0,v7) = ⟨v0,v3,v4,v7⟩` (`OS 4`, `BS 7`) and
///   `σ(v0,v7) = ⟨v0,v3,v5,v7⟩` (`OS 9`, `BS 5`) (§3.1);
/// * Example 1 labels for `θ = 1/20`; Table 1's nine label tuples;
/// * `BS(σ(v6,v7)) = 7`, `OS(τ(v3,v7)) = 2` with budget 5,
///   `OS(τ(v5,v7)) = 3` with budget 4 (Example 2), and Example 2's
///   optimal answer `R1 = ⟨v0,v2,v3,v4,v7⟩` with `OS 6`, `BS 10`.
///
/// **Known deviation.** Definition 4's first case claims the optimum for
/// `Δ = 8` is `⟨v0,v3,v4,v7⟩` (OS 4, BS 7), which would require `v7` (or
/// `v4`) to carry `t2`. That contradicts Example 2, where with query
/// `{t1, t2}` the traced optimum is `R1` with OS 6 — impossible if the
/// OS-4 route covered `t2`. The examples are mutually inconsistent, so we
/// reconstruct the graph from the fully-traced Example 2 / Table 1 (and
/// Definition 4's Δ=6 case, which does hold here); under this fixture the
/// `Δ = 8` optimum is `⟨v0,v3,v5,v4,v7⟩` with OS 8, BS 8.
pub fn figure1() -> Graph {
    let mut b = GraphBuilder::new();
    // Keywords interned in name order t1..t5 so tN has KeywordId(N-1).
    for t in ["t1", "t2", "t3", "t4", "t5"] {
        b.vocab_mut().intern(t);
    }
    let nodes_kw = ["t3", "t5", "t2", "t1", "t4", "t2", "t1", "t3"];
    let mut ids = Vec::with_capacity(8);
    for kw in nodes_kw {
        ids.push(b.add_node([kw]));
    }
    let edges: [(usize, usize, f64, f64); 12] = [
        (0, 1, 4.0, 1.0),
        (0, 2, 1.0, 3.0),
        (0, 3, 2.0, 2.0),
        (2, 3, 3.0, 2.0),
        (2, 6, 1.0, 1.0),
        (3, 1, 1.0, 2.0),
        (3, 4, 1.0, 2.0),
        (3, 5, 3.0, 2.0),
        (4, 7, 1.0, 3.0),
        (5, 4, 2.0, 1.0),
        (5, 7, 4.0, 1.0),
        (6, 5, 2.0, 6.0),
    ];
    for (f, t, o, bu) in edges {
        b.add_edge(ids[f], ids[t], o, bu)
            .expect("fixture edges are valid");
    }
    b.build().expect("fixture graph is valid")
}

/// Keyword id of `tN` (1-based, as in the paper) in the [`figure1`] graph.
///
/// # Panics
///
/// Panics if `n` is not in `1..=5`.
pub fn t(n: u32) -> KeywordId {
    assert!((1..=5).contains(&n), "figure 1 has keywords t1..t5");
    KeywordId(n - 1)
}

/// Node id `vN` in the [`figure1`] graph.
///
/// # Panics
///
/// Panics if `n` is not in `0..=7`.
pub fn v(n: u32) -> NodeId {
    assert!(n <= 7, "figure 1 has nodes v0..v7");
    NodeId(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Route;

    #[test]
    fn shape_matches_figure() {
        let g = figure1();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.vocab().len(), 5);
        // every node has exactly one keyword
        for n in g.nodes() {
            assert_eq!(g.keywords(n).len(), 1, "{n}");
        }
    }

    #[test]
    fn keyword_assignment() {
        let g = figure1();
        let expect = [3u32, 5, 2, 1, 4, 2, 1, 3];
        for (i, tn) in expect.iter().enumerate() {
            assert!(
                g.node_has_keyword(v(i as u32), t(*tn)),
                "v{i} should carry t{tn}"
            );
        }
    }

    #[test]
    fn definition3_example_scores() {
        // "given the route R = ⟨v0, v3, v5, v7⟩, we have OS(R) = 2 + 3 + 4 =
        // 9 and BS(R) = 2 + 2 + 1 = 5"
        let g = figure1();
        let r = Route::new(vec![v(0), v(3), v(5), v(7)]);
        assert_eq!(r.scores(&g).unwrap(), (9.0, 5.0));
    }

    #[test]
    fn definition4_delta6_optimum_is_feasible() {
        let g = figure1();
        // Δ = 6 optimum per the paper: ⟨v0,v3,v5,v7⟩ with OS 9, BS 5.
        let r6 = Route::new(vec![v(0), v(3), v(5), v(7)]);
        assert_eq!(r6.scores(&g).unwrap(), (9.0, 5.0));
        assert!(r6.covers(&g, &[t(1), t(2), t(3)]));
    }

    #[test]
    fn definition4_delta8_optimum_in_this_reconstruction() {
        // See the fixture doc comment: the paper's Δ=8 claim is
        // inconsistent with Example 2; here the optimum is OS 8, BS 8.
        let g = figure1();
        let r8 = Route::new(vec![v(0), v(3), v(5), v(4), v(7)]);
        assert_eq!(r8.scores(&g).unwrap(), (8.0, 8.0));
        assert!(r8.covers(&g, &[t(1), t(2), t(3)]));
        // The paper's claimed route does not cover t2 here.
        let paper_route = Route::new(vec![v(0), v(3), v(4), v(7)]);
        assert_eq!(paper_route.scores(&g).unwrap(), (4.0, 7.0));
        assert!(!paper_route.covers(&g, &[t(1), t(2), t(3)]));
    }

    #[test]
    fn example1_route_scores() {
        let g = figure1();
        // R1 = ⟨v0, v2, v3, v4⟩: label (⟨t1,t2,t4⟩, 100, 5, 7) at θ = 1/20
        let r1 = Route::new(vec![v(0), v(2), v(3), v(4)]);
        assert_eq!(r1.scores(&g).unwrap(), (5.0, 7.0));
        assert!(r1.covers(&g, &[t(1), t(2), t(4)]));
        // R2 = ⟨v0, v2, v6, v5, v4⟩: label (⟨t1,t2,t4⟩, 120, 6, 11)
        let r2 = Route::new(vec![v(0), v(2), v(6), v(5), v(4)]);
        assert_eq!(r2.scores(&g).unwrap(), (6.0, 11.0));
        assert!(r2.covers(&g, &[t(1), t(2), t(4)]));
    }

    #[test]
    fn example2_result_routes() {
        let g = figure1();
        // R1 = ⟨v0, v2, v3, v4, v7⟩ with OS 6, BS 10
        let r1 = Route::new(vec![v(0), v(2), v(3), v(4), v(7)]);
        assert_eq!(r1.scores(&g).unwrap(), (6.0, 10.0));
        // R2 = ⟨v0, v3, v5, v4, v7⟩ with OS 8, BS 8
        let r2 = Route::new(vec![v(0), v(3), v(5), v(4), v(7)]);
        assert_eq!(r2.scores(&g).unwrap(), (8.0, 8.0));
    }

    #[test]
    fn extrema_give_theta_one_twentieth() {
        // Example 1: θ = ε·o_min·b_min/Δ = 0.5·1·1/10 = 1/20.
        let g = figure1();
        assert_eq!(g.o_min(), 1.0);
        assert_eq!(g.b_min(), 1.0);
        let theta = 0.5 * g.o_min() * g.b_min() / 10.0;
        assert!((theta - 1.0 / 20.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn t_rejects_out_of_range() {
        let _ = t(6);
    }

    #[test]
    #[should_panic]
    fn v_rejects_out_of_range() {
        let _ = v(8);
    }
}
