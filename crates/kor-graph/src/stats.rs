//! Summary statistics over a graph.

use std::fmt;

use crate::graph::Graph;

/// Descriptive statistics for a [`Graph`], useful for dataset reports and
/// sanity checks against the paper's dataset description (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of directed edges `|E|`.
    pub edges: usize,
    /// Minimum out-degree.
    pub min_out_degree: usize,
    /// Maximum out-degree (`d` in the brute-force complexity bound).
    pub max_out_degree: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Number of nodes with no outgoing edge.
    pub sink_count: usize,
    /// Number of nodes with no incoming edge.
    pub source_count: usize,
    /// Smallest / largest objective values.
    pub objective_range: (f64, f64),
    /// Smallest / largest budget values.
    pub budget_range: (f64, f64),
    /// Distinct keywords in the vocabulary.
    pub vocabulary_size: usize,
    /// Mean number of keywords per node.
    pub avg_keywords_per_node: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.node_count();
        let mut min_out = usize::MAX;
        let mut max_out = 0usize;
        let mut sinks = 0usize;
        let mut sources = 0usize;
        let mut kw_total = 0usize;
        for v in g.nodes() {
            let d = g.out_degree(v);
            min_out = min_out.min(d);
            max_out = max_out.max(d);
            if d == 0 {
                sinks += 1;
            }
            if g.in_degree(v) == 0 {
                sources += 1;
            }
            kw_total += g.keywords(v).len();
        }
        if n == 0 {
            min_out = 0;
        }
        Self {
            nodes: n,
            edges: g.edge_count(),
            min_out_degree: min_out,
            max_out_degree: max_out,
            avg_out_degree: if n == 0 {
                0.0
            } else {
                g.edge_count() as f64 / n as f64
            },
            sink_count: sinks,
            source_count: sources,
            objective_range: (g.o_min(), g.o_max()),
            budget_range: (g.b_min(), g.b_max()),
            vocabulary_size: g.vocab().len(),
            avg_keywords_per_node: if n == 0 {
                0.0
            } else {
                kw_total as f64 / n as f64
            },
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nodes: {}", self.nodes)?;
        writeln!(f, "edges: {}", self.edges)?;
        writeln!(
            f,
            "out-degree: min {} / avg {:.2} / max {}",
            self.min_out_degree, self.avg_out_degree, self.max_out_degree
        )?;
        writeln!(
            f,
            "sinks: {}  sources: {}",
            self.sink_count, self.source_count
        )?;
        writeln!(
            f,
            "objective range: [{:.4}, {:.4}]",
            self.objective_range.0, self.objective_range.1
        )?;
        writeln!(
            f,
            "budget range: [{:.4}, {:.4}]",
            self.budget_range.0, self.budget_range.1
        )?;
        writeln!(f, "vocabulary: {} terms", self.vocabulary_size)?;
        write!(f, "keywords/node: {:.2}", self.avg_keywords_per_node)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a", "b"]);
        let v1 = b.add_node(["c"]);
        let v2 = b.add_node::<[&str; 0], &str>([]);
        b.add_edge(v0, v1, 1.0, 2.0).unwrap();
        b.add_edge(v1, v2, 3.0, 4.0).unwrap();
        let g = b.build().unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 2);
        assert_eq!(s.min_out_degree, 0);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.sink_count, 1);
        assert_eq!(s.source_count, 1);
        assert_eq!(s.objective_range, (1.0, 3.0));
        assert_eq!(s.budget_range, (2.0, 4.0));
        assert_eq!(s.vocabulary_size, 3);
        assert!((s.avg_keywords_per_node - 1.0).abs() < 1e-12);
        let text = s.to_string();
        assert!(text.contains("nodes: 3"));
        assert!(text.contains("vocabulary: 3"));
    }

    #[test]
    fn stats_on_empty_graph() {
        let g = GraphBuilder::new().build().unwrap();
        let s = g.stats();
        assert_eq!(s.nodes, 0);
        assert_eq!(s.min_out_degree, 0);
        assert_eq!(s.avg_out_degree, 0.0);
        assert_eq!(s.avg_keywords_per_node, 0.0);
    }
}
