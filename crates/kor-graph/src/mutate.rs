//! Live edge mutations: closures, reopenings, and weight scaling.
//!
//! A mutation batch turns one immutable [`Graph`] into another — the
//! graph itself never changes in place, so every engine holding the old
//! graph keeps answering consistently while the new graph is built and
//! swapped in. Mutations address edges by their `(from, to)` node pair,
//! **not** by [`crate::EdgeId`]: closing an edge shifts every later CSR
//! slot, so edge ids are only stable within one graph value.
//!
//! [`Graph::apply_mutations`] is deterministic, and its output edge
//! order is part of the contract: surviving edges keep their relative
//! order within each source's adjacency, and reopened edges are
//! appended at the end of their source's adjacency in ascending target
//! order. The lexicographic Dijkstra trees downstream break exact-tie
//! relaxations by scan order, so this ordering rule is what lets a
//! warm engine that carries trees across a mutation stay bit-for-bit
//! identical to a cold engine built from the same mutated graph.
//!
//! Each successful batch bumps the graph's [`Graph::epoch`] counter by
//! one, giving services a cheap "which world answered this query"
//! marker.

use std::collections::HashMap;
use std::fmt;

use crate::graph::Graph;
use crate::ids::NodeId;

/// What a mutation does to its `(from, to)` edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MutationKind {
    /// Remove the edge (a road closure). The edge must exist.
    Close,
    /// Re-add a previously closed edge with explicit weights (typically
    /// the original ones, recorded before the closure). The edge must
    /// not exist; both weights must be finite and positive.
    Reopen {
        /// Objective value of the reopened edge.
        objective: f64,
        /// Budget value of the reopened edge.
        budget: f64,
    },
    /// Multiply the edge's weights (a rush-hour slowdown or recovery).
    /// The edge must exist; both multipliers must be finite and
    /// positive, and the scaled weights must stay finite and positive.
    Scale {
        /// Multiplier applied to the objective value.
        objective: f64,
        /// Multiplier applied to the budget value.
        budget: f64,
    },
}

impl MutationKind {
    /// Stable name used in wire payloads and scripts.
    pub fn op_name(&self) -> &'static str {
        match self {
            MutationKind::Close => "close",
            MutationKind::Reopen { .. } => "reopen",
            MutationKind::Scale { .. } => "scale",
        }
    }
}

/// One edge change, addressed by its endpoint pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeMutation {
    /// Source node of the edge.
    pub from: NodeId,
    /// Target node of the edge.
    pub to: NodeId,
    /// What happens to the edge.
    pub kind: MutationKind,
}

impl EdgeMutation {
    /// A closure of `from → to`.
    pub fn close(from: NodeId, to: NodeId) -> Self {
        Self {
            from,
            to,
            kind: MutationKind::Close,
        }
    }

    /// A reopening of `from → to` with explicit weights.
    pub fn reopen(from: NodeId, to: NodeId, objective: f64, budget: f64) -> Self {
        Self {
            from,
            to,
            kind: MutationKind::Reopen { objective, budget },
        }
    }

    /// A weight scaling of `from → to`.
    pub fn scale(from: NodeId, to: NodeId, objective: f64, budget: f64) -> Self {
        Self {
            from,
            to,
            kind: MutationKind::Scale { objective, budget },
        }
    }
}

/// Why a serialized mutation could not be decoded (see
/// [`EdgeMutation::decode_from`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationCodecError {
    /// The byte stream ended inside a mutation.
    Truncated,
    /// The op tag byte was not one of the known codes.
    UnknownOp(u8),
}

impl fmt::Display for MutationCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationCodecError::Truncated => write!(f, "mutation bytes truncated"),
            MutationCodecError::UnknownOp(op) => write!(f, "unknown mutation op tag {op:#04x}"),
        }
    }
}

impl std::error::Error for MutationCodecError {}

impl EdgeMutation {
    /// Appends this mutation's canonical byte form to `out`.
    ///
    /// Layout (all little-endian): op tag `u8` (`0` close, `1` reopen,
    /// `2` scale) · `from u32` · `to u32` · for reopen/scale the two
    /// weights as IEEE-754 `f64` bit patterns. The encoding is
    /// bit-exact: [`EdgeMutation::decode_from`] returns a value equal to
    /// the original including `f64` bit patterns, which is what lets the
    /// mutation journal replay a batch byte-identically after a crash.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self.kind {
            MutationKind::Close => out.push(0),
            MutationKind::Reopen { .. } => out.push(1),
            MutationKind::Scale { .. } => out.push(2),
        }
        out.extend_from_slice(&self.from.0.to_le_bytes());
        out.extend_from_slice(&self.to.0.to_le_bytes());
        match self.kind {
            MutationKind::Close => {}
            MutationKind::Reopen { objective, budget }
            | MutationKind::Scale { objective, budget } => {
                out.extend_from_slice(&objective.to_bits().to_le_bytes());
                out.extend_from_slice(&budget.to_bits().to_le_bytes());
            }
        }
    }

    /// Decodes one mutation from `bytes` starting at `*at`, advancing
    /// `*at` past it. Inverse of [`EdgeMutation::encode_into`]; weight
    /// *values* are not validated here — [`Graph::apply_mutations`]
    /// rejects invalid weights exactly as it would on any other path.
    pub fn decode_from(bytes: &[u8], at: &mut usize) -> Result<EdgeMutation, MutationCodecError> {
        let mut take = |n: usize| -> Result<&[u8], MutationCodecError> {
            let s = bytes
                .get(*at..*at + n)
                .ok_or(MutationCodecError::Truncated)?;
            *at += n;
            Ok(s)
        };
        let op = take(1)?[0];
        let from = NodeId(u32::from_le_bytes(take(4)?.try_into().unwrap()));
        let to = NodeId(u32::from_le_bytes(take(4)?.try_into().unwrap()));
        let mut weights = || -> Result<(f64, f64), MutationCodecError> {
            let objective = f64::from_bits(u64::from_le_bytes(take(8)?.try_into().unwrap()));
            let budget = f64::from_bits(u64::from_le_bytes(take(8)?.try_into().unwrap()));
            Ok((objective, budget))
        };
        match op {
            0 => Ok(EdgeMutation::close(from, to)),
            1 => {
                let (objective, budget) = weights()?;
                Ok(EdgeMutation::reopen(from, to, objective, budget))
            }
            2 => {
                let (objective, budget) = weights()?;
                Ok(EdgeMutation::scale(from, to, objective, budget))
            }
            other => Err(MutationCodecError::UnknownOp(other)),
        }
    }
}

/// Why a mutation batch was rejected. The batch is validated as a whole
/// before any rebuild work: on error the original graph is untouched
/// and no partial batch is ever observable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MutationError {
    /// A mutation referenced a node outside the graph.
    UnknownNode(NodeId),
    /// A mutation's endpoints were equal (self-loops are never valid).
    SelfLoop(NodeId),
    /// `Close` or `Scale` addressed an edge that does not exist.
    UnknownEdge {
        /// Source node of the missing edge.
        from: NodeId,
        /// Target node of the missing edge.
        to: NodeId,
    },
    /// `Reopen` addressed an edge that already exists.
    EdgeExists {
        /// Source node of the existing edge.
        from: NodeId,
        /// Target node of the existing edge.
        to: NodeId,
    },
    /// The same `(from, to)` pair appeared twice in one batch — the
    /// combined effect would depend on application order, so the batch
    /// is ambiguous.
    DuplicateMutation {
        /// Source node of the repeated pair.
        from: NodeId,
        /// Target node of the repeated pair.
        to: NodeId,
    },
    /// A `Scale` multiplier was zero, negative, or non-finite.
    InvalidMultiplier {
        /// Source node of the scaled edge.
        from: NodeId,
        /// Target node of the scaled edge.
        to: NodeId,
        /// Which multiplier (`"objective"` or `"budget"`).
        attribute: &'static str,
        /// The offending multiplier.
        value: f64,
    },
    /// A `Reopen` weight, or a scaled weight, left the positive finite
    /// range every graph edge must stay in.
    InvalidWeight {
        /// Source node of the edge.
        from: NodeId,
        /// Target node of the edge.
        to: NodeId,
        /// Which weight (`"objective"` or `"budget"`).
        attribute: &'static str,
        /// The offending weight value.
        value: f64,
    },
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::UnknownNode(v) => write!(f, "unknown node {v:?}"),
            MutationError::SelfLoop(v) => write!(f, "self-loop mutation at {v:?}"),
            MutationError::UnknownEdge { from, to } => {
                write!(f, "no edge {} -> {} to mutate", from.0, to.0)
            }
            MutationError::EdgeExists { from, to } => {
                write!(
                    f,
                    "edge {} -> {} already exists; cannot reopen",
                    from.0, to.0
                )
            }
            MutationError::DuplicateMutation { from, to } => {
                write!(f, "duplicate mutation of edge {} -> {}", from.0, to.0)
            }
            MutationError::InvalidMultiplier {
                from,
                to,
                attribute,
                value,
            } => write!(
                f,
                "invalid {attribute} multiplier {value} for edge {} -> {} \
                 (must be finite and positive)",
                from.0, to.0
            ),
            MutationError::InvalidWeight {
                from,
                to,
                attribute,
                value,
            } => write!(
                f,
                "mutation leaves edge {} -> {} with invalid {attribute} {value} \
                 (must be finite and positive)",
                from.0, to.0
            ),
        }
    }
}

impl std::error::Error for MutationError {}

impl Graph {
    /// Applies a batch of edge mutations, producing a new graph; `self`
    /// is unchanged. The batch is atomic: it is fully validated first,
    /// and any error leaves nothing to undo.
    ///
    /// Determinism contract (see the module docs): surviving edges keep
    /// their relative CSR order, reopened edges are appended at the end
    /// of their source's adjacency sorted by target id, and the result
    /// depends only on `self` and `mutations` — not on batch order
    /// beyond the per-pair uniqueness this validates.
    ///
    /// The new graph's [`Graph::epoch`] is `self.epoch() + 1`.
    ///
    /// # Errors
    ///
    /// See [`MutationError`]; the checks run in the order the variants
    /// are documented, per mutation, in batch order.
    pub fn apply_mutations(&self, mutations: &[EdgeMutation]) -> Result<Graph, MutationError> {
        let n = self.node_count();
        // keyed by (from, to); value = index into `mutations`.
        let mut by_pair: HashMap<(u32, u32), usize> = HashMap::with_capacity(mutations.len());
        for (i, m) in mutations.iter().enumerate() {
            for v in [m.from, m.to] {
                if v.index() >= n {
                    return Err(MutationError::UnknownNode(v));
                }
            }
            if m.from == m.to {
                return Err(MutationError::SelfLoop(m.from));
            }
            if by_pair.insert((m.from.0, m.to.0), i).is_some() {
                return Err(MutationError::DuplicateMutation {
                    from: m.from,
                    to: m.to,
                });
            }
            let existing = self.edge_between(m.from, m.to);
            match m.kind {
                MutationKind::Close => {
                    if existing.is_none() {
                        return Err(MutationError::UnknownEdge {
                            from: m.from,
                            to: m.to,
                        });
                    }
                }
                MutationKind::Reopen { objective, budget } => {
                    if existing.is_some() {
                        return Err(MutationError::EdgeExists {
                            from: m.from,
                            to: m.to,
                        });
                    }
                    for (attribute, value) in [("objective", objective), ("budget", budget)] {
                        if !value.is_finite() || value <= 0.0 {
                            return Err(MutationError::InvalidWeight {
                                from: m.from,
                                to: m.to,
                                attribute,
                                value,
                            });
                        }
                    }
                }
                MutationKind::Scale { objective, budget } => {
                    let Some(edge) = existing else {
                        return Err(MutationError::UnknownEdge {
                            from: m.from,
                            to: m.to,
                        });
                    };
                    for (attribute, value) in [("objective", objective), ("budget", budget)] {
                        if !value.is_finite() || value <= 0.0 {
                            return Err(MutationError::InvalidMultiplier {
                                from: m.from,
                                to: m.to,
                                attribute,
                                value,
                            });
                        }
                    }
                    for (attribute, value) in [
                        ("objective", edge.objective * objective),
                        ("budget", edge.budget * budget),
                    ] {
                        if !value.is_finite() || value <= 0.0 {
                            return Err(MutationError::InvalidWeight {
                                from: m.from,
                                to: m.to,
                                attribute,
                                value,
                            });
                        }
                    }
                }
            }
        }

        // Reopened edges per source, appended after the survivors in
        // ascending target order.
        let mut reopened: HashMap<u32, Vec<(NodeId, f64, f64)>> = HashMap::new();
        for m in mutations {
            if let MutationKind::Reopen { objective, budget } = m.kind {
                reopened
                    .entry(m.from.0)
                    .or_default()
                    .push((m.to, objective, budget));
            }
        }
        for list in reopened.values_mut() {
            list.sort_by_key(|(to, _, _)| to.0);
        }

        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(self.edge_count());
        let mut out_objective = Vec::with_capacity(self.edge_count());
        let mut out_budget = Vec::with_capacity(self.edge_count());
        out_offsets.push(0u32);
        for v in self.nodes() {
            for e in self.out_edges(v) {
                match by_pair.get(&(v.0, e.node.0)).map(|&i| mutations[i].kind) {
                    Some(MutationKind::Close) => continue,
                    Some(MutationKind::Scale { objective, budget }) => {
                        out_targets.push(e.node);
                        out_objective.push(e.objective * objective);
                        out_budget.push(e.budget * budget);
                    }
                    // Reopen of an existing edge was rejected above.
                    Some(MutationKind::Reopen { .. }) => unreachable!(),
                    None => {
                        out_targets.push(e.node);
                        out_objective.push(e.objective);
                        out_budget.push(e.budget);
                    }
                }
            }
            if let Some(list) = reopened.get(&v.0) {
                for &(to, objective, budget) in list {
                    out_targets.push(to);
                    out_objective.push(objective);
                    out_budget.push(budget);
                }
            }
            out_offsets.push(out_targets.len() as u32);
        }

        let keywords = self.nodes().map(|v| self.keywords(v).clone()).collect();
        let positions = self.positions().map(<[_]>::to_vec);
        let mut graph = Graph::from_csr_parts(
            out_offsets,
            out_targets,
            out_objective,
            out_budget,
            keywords,
            positions,
            self.vocab().clone(),
        )
        .expect("a validated mutation batch rebuilds into a valid graph");
        graph.set_epoch(self.epoch() + 1);
        Ok(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // v0 -> v1 -> v3, v0 -> v2 -> v3
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["s"]);
        let v1 = b.add_node(["a"]);
        let v2 = b.add_node(["b"]);
        let v3 = b.add_node(["t"]);
        b.add_edge(v0, v1, 1.0, 1.0).unwrap();
        b.add_edge(v0, v2, 2.0, 2.0).unwrap();
        b.add_edge(v1, v3, 3.0, 3.0).unwrap();
        b.add_edge(v2, v3, 4.0, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn close_removes_exactly_one_edge_and_bumps_epoch() {
        let g = diamond();
        assert_eq!(g.epoch(), 0);
        let g2 = g
            .apply_mutations(&[EdgeMutation::close(NodeId(0), NodeId(1))])
            .unwrap();
        assert_eq!(g2.epoch(), 1);
        assert_eq!(g2.edge_count(), 3);
        assert!(g2.edge_between(NodeId(0), NodeId(1)).is_none());
        assert!(g2.edge_between(NodeId(0), NodeId(2)).is_some());
        // The original is untouched.
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.epoch(), 0);
    }

    #[test]
    fn scale_multiplies_weights() {
        let g = diamond();
        let g2 = g
            .apply_mutations(&[EdgeMutation::scale(NodeId(2), NodeId(3), 1.0, 2.5)])
            .unwrap();
        let e = g2.edge_between(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(e.objective, 4.0);
        assert_eq!(e.budget, 10.0);
        // Extrema are re-derived.
        assert_eq!(g2.b_max(), 10.0);
    }

    #[test]
    fn reopen_restores_a_closed_edge_bit_for_bit() {
        let g = diamond();
        let orig = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let closed = g
            .apply_mutations(&[EdgeMutation::close(NodeId(0), NodeId(1))])
            .unwrap();
        let reopened = closed
            .apply_mutations(&[EdgeMutation::reopen(
                NodeId(0),
                NodeId(1),
                orig.objective,
                orig.budget,
            )])
            .unwrap();
        assert_eq!(reopened.epoch(), 2);
        let e = reopened.edge_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(e.objective.to_bits(), orig.objective.to_bits());
        assert_eq!(e.budget.to_bits(), orig.budget.to_bits());
        assert_eq!(reopened.edge_count(), g.edge_count());
    }

    #[test]
    fn reopened_edges_append_in_target_order() {
        let g = diamond();
        let stripped = g
            .apply_mutations(&[
                EdgeMutation::close(NodeId(0), NodeId(1)),
                EdgeMutation::close(NodeId(0), NodeId(2)),
            ])
            .unwrap();
        // Reopen in reverse order; CSR must still list v1 before v2
        // (appended, ascending target).
        let back = stripped
            .apply_mutations(&[
                EdgeMutation::reopen(NodeId(0), NodeId(2), 2.0, 2.0),
                EdgeMutation::reopen(NodeId(0), NodeId(1), 1.0, 1.0),
            ])
            .unwrap();
        let targets: Vec<NodeId> = back.out_edges(NodeId(0)).map(|e| e.node).collect();
        assert_eq!(targets, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn surviving_edges_keep_relative_order() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["s"]);
        let targets: Vec<NodeId> = (0..4).map(|i| b.add_node([format!("k{i}")])).collect();
        for (i, &t) in targets.iter().enumerate() {
            b.add_edge(v0, t, 1.0 + i as f64, 1.0).unwrap();
        }
        let g = b.build().unwrap();
        let g2 = g
            .apply_mutations(&[EdgeMutation::close(v0, targets[1])])
            .unwrap();
        let order: Vec<NodeId> = g2.out_edges(v0).map(|e| e.node).collect();
        assert_eq!(order, vec![targets[0], targets[2], targets[3]]);
    }

    #[test]
    fn batches_are_deterministic() {
        let g = diamond();
        let batch = [
            EdgeMutation::close(NodeId(1), NodeId(3)),
            EdgeMutation::scale(NodeId(0), NodeId(2), 3.0, 0.5),
        ];
        let a = g.apply_mutations(&batch).unwrap();
        let b = g.apply_mutations(&batch).unwrap();
        let (ca, cb) = (a.csr(), b.csr());
        assert_eq!(ca.out_offsets, cb.out_offsets);
        assert_eq!(ca.out_targets, cb.out_targets);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(ca.out_objective), bits(cb.out_objective));
        assert_eq!(bits(ca.out_budget), bits(cb.out_budget));
    }

    #[test]
    fn typed_errors_cover_every_rejection() {
        let g = diamond();
        // Unknown node.
        assert_eq!(
            g.apply_mutations(&[EdgeMutation::close(NodeId(0), NodeId(99))])
                .unwrap_err(),
            MutationError::UnknownNode(NodeId(99))
        );
        // Self loop.
        assert_eq!(
            g.apply_mutations(&[EdgeMutation::close(NodeId(2), NodeId(2))])
                .unwrap_err(),
            MutationError::SelfLoop(NodeId(2))
        );
        // Closing / scaling a nonexistent edge.
        assert_eq!(
            g.apply_mutations(&[EdgeMutation::close(NodeId(1), NodeId(2))])
                .unwrap_err(),
            MutationError::UnknownEdge {
                from: NodeId(1),
                to: NodeId(2)
            }
        );
        assert_eq!(
            g.apply_mutations(&[EdgeMutation::scale(NodeId(3), NodeId(0), 2.0, 2.0)])
                .unwrap_err(),
            MutationError::UnknownEdge {
                from: NodeId(3),
                to: NodeId(0)
            }
        );
        // Reopening an existing edge.
        assert_eq!(
            g.apply_mutations(&[EdgeMutation::reopen(NodeId(0), NodeId(1), 1.0, 1.0)])
                .unwrap_err(),
            MutationError::EdgeExists {
                from: NodeId(0),
                to: NodeId(1)
            }
        );
        // Duplicate pair in one batch (even with different kinds).
        assert_eq!(
            g.apply_mutations(&[
                EdgeMutation::scale(NodeId(0), NodeId(1), 2.0, 2.0),
                EdgeMutation::close(NodeId(0), NodeId(1)),
            ])
            .unwrap_err(),
            MutationError::DuplicateMutation {
                from: NodeId(0),
                to: NodeId(1)
            }
        );
        // Zero / negative / non-finite multipliers.
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                g.apply_mutations(&[EdgeMutation::scale(NodeId(0), NodeId(1), bad, 1.0)]),
                Err(MutationError::InvalidMultiplier {
                    attribute: "objective",
                    ..
                })
            ));
            assert!(matches!(
                g.apply_mutations(&[EdgeMutation::scale(NodeId(0), NodeId(1), 1.0, bad)]),
                Err(MutationError::InvalidMultiplier {
                    attribute: "budget",
                    ..
                })
            ));
        }
        // Reopen with invalid weights.
        assert!(matches!(
            g.apply_mutations(&[EdgeMutation::reopen(NodeId(1), NodeId(2), 0.0, 1.0)]),
            Err(MutationError::InvalidWeight {
                attribute: "objective",
                ..
            })
        ));
        // Scaling into overflow is caught before the rebuild: edge
        // 2 -> 3 has weight 4.0, and 4.0 * f64::MAX overflows to +inf.
        assert!(matches!(
            g.apply_mutations(&[EdgeMutation::scale(
                NodeId(2),
                NodeId(3),
                f64::MAX,
                f64::MAX
            )]),
            Err(MutationError::InvalidWeight { .. })
        ));
        // A rejected batch never left a partial effect.
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.epoch(), 0);
    }

    #[test]
    fn empty_batch_is_a_noop_rebuild_with_epoch_bump() {
        let g = diamond();
        let g2 = g.apply_mutations(&[]).unwrap();
        assert_eq!(g2.epoch(), 1);
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(
                g2.out_edges(v).collect::<Vec<_>>(),
                g.out_edges(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn codec_round_trips_bit_for_bit() {
        let mutations = [
            EdgeMutation::close(NodeId(0), NodeId(7)),
            EdgeMutation::reopen(NodeId(3), NodeId(1), 0.1 + 0.2, f64::MIN_POSITIVE),
            EdgeMutation::scale(NodeId(u32::MAX), NodeId(42), 1.5, 1e300),
        ];
        let mut bytes = Vec::new();
        for m in &mutations {
            m.encode_into(&mut bytes);
        }
        assert_eq!(bytes.len(), 9 + 25 + 25);
        let mut at = 0;
        for m in &mutations {
            let back = EdgeMutation::decode_from(&bytes, &mut at).unwrap();
            assert_eq!(&back, m);
            // PartialEq on f64 misses bit patterns that compare equal;
            // pin the bits explicitly.
            if let (
                MutationKind::Reopen {
                    objective: a,
                    budget: b,
                }
                | MutationKind::Scale {
                    objective: a,
                    budget: b,
                },
                MutationKind::Reopen {
                    objective: c,
                    budget: d,
                }
                | MutationKind::Scale {
                    objective: c,
                    budget: d,
                },
            ) = (back.kind, m.kind)
            {
                assert_eq!(a.to_bits(), c.to_bits());
                assert_eq!(b.to_bits(), d.to_bits());
            }
        }
        assert_eq!(at, bytes.len());
    }

    #[test]
    fn codec_rejects_truncation_and_unknown_ops() {
        let mut bytes = Vec::new();
        EdgeMutation::scale(NodeId(1), NodeId(2), 2.0, 3.0).encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            let mut at = 0;
            assert_eq!(
                EdgeMutation::decode_from(&bytes[..cut], &mut at),
                Err(MutationCodecError::Truncated),
                "cut at {cut}"
            );
        }
        let mut at = 0;
        bytes[0] = 9;
        assert_eq!(
            EdgeMutation::decode_from(&bytes, &mut at),
            Err(MutationCodecError::UnknownOp(9))
        );
    }

    #[test]
    fn display_messages_name_the_edge() {
        let e = MutationError::UnknownEdge {
            from: NodeId(3),
            to: NodeId(5),
        };
        assert!(e.to_string().contains("3 -> 5"));
        let m = MutationError::InvalidMultiplier {
            from: NodeId(0),
            to: NodeId(1),
            attribute: "budget",
            value: 0.0,
        };
        assert!(m.to_string().contains("budget"));
    }
}
