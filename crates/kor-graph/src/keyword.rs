//! Keyword vocabulary interning and per-node keyword sets.

use std::collections::HashMap;

use crate::ids::KeywordId;

/// Interned vocabulary of all distinct keywords in a graph.
///
/// The paper's inverted file (§3.1) keeps "a vocabulary of all distinct
/// words appearing in the descriptions of nodes"; this is the in-memory
/// form shared by the graph and by index structures.
#[derive(Debug, Default, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vocab {
    terms: Vec<String>,
    #[cfg_attr(feature = "serde", serde(skip))]
    lookup: HashMap<String, KeywordId>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its stable id. Idempotent.
    pub fn intern(&mut self, term: &str) -> KeywordId {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = KeywordId(self.terms.len() as u32);
        self.terms.push(term.to_owned());
        self.lookup.insert(term.to_owned(), id);
        id
    }

    /// Looks up an already-interned term.
    pub fn get(&self, term: &str) -> Option<KeywordId> {
        self.lookup.get(term).copied()
    }

    /// The textual form of an id, or `None` if out of range.
    pub fn resolve(&self, id: KeywordId) -> Option<&str> {
        self.terms.get(id.index()).map(String::as_str)
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (KeywordId(i as u32), t.as_str()))
    }

    /// Rebuilds the reverse lookup table; required after deserialization
    /// (the lookup map is not serialized).
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), KeywordId(i as u32)))
            .collect();
    }
}

/// An immutable, sorted, deduplicated set of keywords attached to a node.
///
/// Node keyword sets are small (a handful of tags per location), so a
/// sorted boxed slice beats a hash set on both memory and lookup speed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeywordSet {
    ids: Box<[KeywordId]>,
}

impl KeywordSet {
    /// Builds a set from arbitrary ids (sorted and deduplicated).
    pub fn new(mut ids: Vec<KeywordId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        Self {
            ids: ids.into_boxed_slice(),
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Whether `id` is a member (binary search).
    pub fn contains(&self, id: KeywordId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The sorted member slice.
    pub fn as_slice(&self) -> &[KeywordId] {
        &self.ids
    }

    /// Iterates members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = KeywordId> + '_ {
        self.ids.iter().copied()
    }
}

impl FromIterator<KeywordId> for KeywordSet {
    fn from_iter<I: IntoIterator<Item = KeywordId>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a KeywordSet {
    type Item = KeywordId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, KeywordId>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.intern("pub");
        let b = v.intern("pub");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut v = Vocab::new();
        let mall = v.intern("shopping mall");
        let jazz = v.intern("jazz");
        assert_eq!(v.resolve(mall), Some("shopping mall"));
        assert_eq!(v.resolve(jazz), Some("jazz"));
        assert_eq!(v.get("jazz"), Some(jazz));
        assert_eq!(v.get("imax"), None);
        assert_eq!(v.resolve(KeywordId(99)), None);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut v = Vocab::new();
        v.intern("a");
        v.intern("b");
        let collected: Vec<_> = v.iter().map(|(id, t)| (id.0, t.to_owned())).collect();
        assert_eq!(collected, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }

    #[test]
    fn rebuild_lookup_restores_get() {
        let mut v = Vocab::new();
        v.intern("x");
        let mut stripped = Vocab {
            terms: v.terms.clone(),
            lookup: HashMap::new(),
        };
        assert_eq!(stripped.get("x"), None);
        stripped.rebuild_lookup();
        assert_eq!(stripped.get("x"), Some(KeywordId(0)));
    }

    #[test]
    fn keyword_set_sorts_and_dedups() {
        let s = KeywordSet::new(vec![KeywordId(3), KeywordId(1), KeywordId(3)]);
        assert_eq!(s.as_slice(), &[KeywordId(1), KeywordId(3)]);
        assert!(s.contains(KeywordId(1)));
        assert!(!s.contains(KeywordId(2)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn keyword_set_empty() {
        let s = KeywordSet::empty();
        assert!(s.is_empty());
        assert!(!s.contains(KeywordId(0)));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn keyword_set_from_iterator() {
        let s: KeywordSet = [KeywordId(2), KeywordId(0)].into_iter().collect();
        assert_eq!(s.as_slice(), &[KeywordId(0), KeywordId(2)]);
        let round: Vec<KeywordId> = (&s).into_iter().collect();
        assert_eq!(round, vec![KeywordId(0), KeywordId(2)]);
    }
}
