//! Incremental, validating graph construction.

use std::collections::HashSet;

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, KeywordId, NodeId};
use crate::keyword::{KeywordSet, Vocab};

/// Builder for [`Graph`].
///
/// Nodes are added with their keyword sets (interned into a shared
/// [`Vocab`]) and optional planar positions; edges carry the paper's two
/// attributes (objective value, budget value) and are validated eagerly.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    vocab: Vocab,
    node_keywords: Vec<Vec<KeywordId>>,
    positions: Vec<(f64, f64)>,
    has_positions: bool,
    edges: Vec<RawEdge>,
    edge_set: HashSet<(u32, u32)>,
}

#[derive(Debug, Clone, Copy)]
struct RawEdge {
    from: NodeId,
    to: NodeId,
    objective: f64,
    budget: f64,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Self {
            vocab: Vocab::new(),
            node_keywords: Vec::with_capacity(nodes),
            positions: Vec::with_capacity(nodes),
            has_positions: false,
            edges: Vec::with_capacity(edges),
            edge_set: HashSet::with_capacity(edges),
        }
    }

    /// Adds a node described by textual keywords, returning its id.
    pub fn add_node<I, S>(&mut self, keywords: I) -> NodeId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let ids = keywords
            .into_iter()
            .map(|s| self.vocab.intern(s.as_ref()))
            .collect();
        self.push_node(ids, (0.0, 0.0))
    }

    /// Adds a node with textual keywords and a planar `(x, y)` position
    /// (kilometres in the paper's datasets).
    pub fn add_node_at<I, S>(&mut self, keywords: I, x: f64, y: f64) -> NodeId
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let ids = keywords
            .into_iter()
            .map(|s| self.vocab.intern(s.as_ref()))
            .collect();
        self.has_positions = true;
        self.push_node(ids, (x, y))
    }

    /// Adds a node whose keywords are already interned ids.
    pub fn add_node_ids(&mut self, keywords: Vec<KeywordId>) -> NodeId {
        self.push_node(keywords, (0.0, 0.0))
    }

    /// Adds a node with pre-interned keyword ids and a position.
    pub fn add_node_ids_at(&mut self, keywords: Vec<KeywordId>, x: f64, y: f64) -> NodeId {
        self.has_positions = true;
        self.push_node(keywords, (x, y))
    }

    fn push_node(&mut self, ids: Vec<KeywordId>, pos: (f64, f64)) -> NodeId {
        let id = NodeId(self.node_keywords.len() as u32);
        self.node_keywords.push(ids);
        self.positions.push(pos);
        id
    }

    /// Mutable access to the vocabulary, e.g. to pre-intern a tag model.
    pub fn vocab_mut(&mut self) -> &mut Vocab {
        &mut self.vocab
    }

    /// Read access to the vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_keywords.len()
    }

    /// Number of edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the directed edge `from → to` has been added.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_set.contains(&(from.0, to.0))
    }

    /// Adds the directed edge `from → to` with objective value `objective`
    /// and budget value `budget` (Definition 3 attributes).
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self-loops, duplicate edges, and
    /// non-finite or non-positive weights (see [`GraphError`]).
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        objective: f64,
        budget: f64,
    ) -> Result<EdgeId, GraphError> {
        let n = self.node_keywords.len() as u32;
        if from.0 >= n {
            return Err(GraphError::UnknownNode(from));
        }
        if to.0 >= n {
            return Err(GraphError::UnknownNode(to));
        }
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        for (attribute, value) in [("objective", objective), ("budget", budget)] {
            if !value.is_finite() || value <= 0.0 {
                return Err(GraphError::InvalidWeight {
                    from,
                    to,
                    attribute,
                    value,
                });
            }
        }
        if !self.edge_set.insert((from.0, to.0)) {
            return Err(GraphError::DuplicateEdge { from, to });
        }
        if self.edges.len() >= u32::MAX as usize {
            return Err(GraphError::TooLarge);
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(RawEdge {
            from,
            to,
            objective,
            budget,
        });
        Ok(id)
    }

    /// Adds edges in both directions with the same weights (convenience
    /// for undirected inputs such as road networks).
    pub fn add_bidirectional(
        &mut self,
        a: NodeId,
        b: NodeId,
        objective: f64,
        budget: f64,
    ) -> Result<(EdgeId, EdgeId), GraphError> {
        let e1 = self.add_edge(a, b, objective, budget)?;
        let e2 = self.add_edge(b, a, objective, budget)?;
        Ok((e1, e2))
    }

    /// Finalizes the graph: sorts edges into CSR form (forward and
    /// backward) and computes weight extrema.
    pub fn build(self) -> Result<Graph, GraphError> {
        if self.node_keywords.len() >= u32::MAX as usize {
            return Err(GraphError::TooLarge);
        }
        let n = self.node_keywords.len();
        let m = self.edges.len();

        // Forward CSR via counting sort on the source node.
        let mut out_offsets = vec![0u32; n + 1];
        for e in &self.edges {
            out_offsets[e.from.index() + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut cursor = out_offsets.clone();
        let mut out_targets = vec![NodeId(0); m];
        let mut out_objective = vec![0.0f64; m];
        let mut out_budget = vec![0.0f64; m];
        for e in &self.edges {
            let slot = cursor[e.from.index()] as usize;
            cursor[e.from.index()] += 1;
            out_targets[slot] = e.to;
            out_objective[slot] = e.objective;
            out_budget[slot] = e.budget;
        }

        // Backward CSR, remembering the forward edge id of each in-edge.
        let mut in_offsets = vec![0u32; n + 1];
        for t in &out_targets {
            in_offsets[t.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); m];
        let mut in_objective = vec![0.0f64; m];
        let mut in_budget = vec![0.0f64; m];
        let mut in_edge_ids = vec![EdgeId(0); m];
        for v in 0..n {
            let (lo, hi) = (out_offsets[v] as usize, out_offsets[v + 1] as usize);
            for slot in lo..hi {
                let t = out_targets[slot];
                let dst = cursor[t.index()] as usize;
                cursor[t.index()] += 1;
                in_sources[dst] = NodeId(v as u32);
                in_objective[dst] = out_objective[slot];
                in_budget[dst] = out_budget[slot];
                in_edge_ids[dst] = EdgeId(slot as u32);
            }
        }

        let mut o_min = f64::INFINITY;
        let mut o_max = 0.0f64;
        let mut b_min = f64::INFINITY;
        let mut b_max = 0.0f64;
        for e in &self.edges {
            o_min = o_min.min(e.objective);
            o_max = o_max.max(e.objective);
            b_min = b_min.min(e.budget);
            b_max = b_max.max(e.budget);
        }

        let keywords = self
            .node_keywords
            .into_iter()
            .map(KeywordSet::new)
            .collect();

        Ok(Graph::from_parts(
            out_offsets,
            out_targets,
            out_objective,
            out_budget,
            in_offsets,
            in_sources,
            in_objective,
            in_budget,
            in_edge_ids,
            keywords,
            self.has_positions.then_some(self.positions),
            self.vocab,
            [o_min, o_max, b_min, b_max],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_endpoints() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        assert_eq!(
            b.add_edge(v0, NodeId(5), 1.0, 1.0),
            Err(GraphError::UnknownNode(NodeId(5)))
        );
        assert_eq!(
            b.add_edge(NodeId(9), v0, 1.0, 1.0),
            Err(GraphError::UnknownNode(NodeId(9)))
        );
    }

    #[test]
    fn rejects_self_loops_and_duplicates() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        assert_eq!(b.add_edge(v0, v0, 1.0, 1.0), Err(GraphError::SelfLoop(v0)));
        b.add_edge(v0, v1, 1.0, 1.0).unwrap();
        assert_eq!(
            b.add_edge(v0, v1, 2.0, 2.0),
            Err(GraphError::DuplicateEdge { from: v0, to: v1 })
        );
        assert!(b.has_edge(v0, v1));
        assert!(!b.has_edge(v1, v0));
    }

    #[test]
    fn rejects_bad_weights() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        for (o, bu) in [
            (0.0, 1.0),
            (-1.0, 1.0),
            (f64::NAN, 1.0),
            (1.0, 0.0),
            (1.0, f64::INFINITY),
        ] {
            assert!(b.add_edge(v0, v1, o, bu).is_err(), "o={o} b={bu}");
        }
    }

    #[test]
    fn builds_csr_in_both_directions() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        let v2 = b.add_node(["c"]);
        b.add_edge(v0, v1, 1.0, 2.0).unwrap();
        b.add_edge(v0, v2, 3.0, 4.0).unwrap();
        b.add_edge(v2, v1, 5.0, 6.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        let outs: Vec<_> = g.out_edges(v0).map(|e| (e.node, e.objective)).collect();
        assert_eq!(outs, vec![(v1, 1.0), (v2, 3.0)]);
        let ins: Vec<_> = g.in_edges(v1).map(|e| (e.node, e.budget)).collect();
        assert_eq!(ins, vec![(v0, 2.0), (v2, 6.0)]);
        assert_eq!(g.o_min(), 1.0);
        assert_eq!(g.o_max(), 5.0);
        assert_eq!(g.b_min(), 2.0);
        assert_eq!(g.b_max(), 6.0);
    }

    #[test]
    fn bidirectional_adds_two_edges() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        b.add_bidirectional(v0, v1, 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out_edges(v0).count(), 1);
        assert_eq!(g.out_edges(v1).count(), 1);
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new().build().unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.o_min().is_infinite());
    }

    #[test]
    fn positions_preserved_when_given() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node_at(["a"], 1.0, 2.0);
        let g = b.build().unwrap();
        assert_eq!(g.position(v0), Some((1.0, 2.0)));
    }

    #[test]
    fn positions_absent_when_never_given() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let g = b.build().unwrap();
        assert_eq!(g.position(v0), None);
    }
}
