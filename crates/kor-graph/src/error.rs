//! Error type for graph construction and route validation.

use std::fmt;

use crate::ids::NodeId;

/// Errors raised while building or validating a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge endpoint refers to a node that was never added.
    UnknownNode(NodeId),
    /// An edge weight is non-finite or not strictly positive.
    ///
    /// The scaling factor `θ = ε·o_min·b_min/Δ` (paper §3.2) and the
    /// budget-bounded search-depth argument (Lemma 1) both require strictly
    /// positive edge attributes, so the builder rejects anything else.
    InvalidWeight {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
        /// Name of the offending attribute (`"objective"` or `"budget"`).
        attribute: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A self-loop `v → v`; routes never benefit from one and the paper's
    /// graphs contain none.
    SelfLoop(NodeId),
    /// The same directed edge was added twice.
    DuplicateEdge {
        /// Edge source.
        from: NodeId,
        /// Edge target.
        to: NodeId,
    },
    /// More than `u32::MAX` nodes or edges.
    TooLarge,
    /// CSR arrays handed to [`crate::Graph::from_csr_parts`] are
    /// structurally inconsistent (offset shape, array lengths, or id
    /// ranges); the message pinpoints the first violation.
    InvalidCsr(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(v) => write!(f, "unknown node {v}"),
            GraphError::InvalidWeight {
                from,
                to,
                attribute,
                value,
            } => write!(
                f,
                "edge {from}->{to}: {attribute} value {value} must be finite and > 0"
            ),
            GraphError::SelfLoop(v) => write!(f, "self loop on {v}"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from}->{to}")
            }
            GraphError::TooLarge => write!(f, "graph exceeds u32 id space"),
            GraphError::InvalidCsr(msg) => write!(f, "inconsistent CSR data: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::InvalidWeight {
            from: NodeId(1),
            to: NodeId(2),
            attribute: "objective",
            value: -1.0,
        };
        let s = e.to_string();
        assert!(s.contains("v1->v2"));
        assert!(s.contains("objective"));
        assert!(s.contains("-1"));
        assert_eq!(
            GraphError::SelfLoop(NodeId(3)).to_string(),
            "self loop on v3"
        );
        assert!(GraphError::UnknownNode(NodeId(9))
            .to_string()
            .contains("v9"));
        assert!(GraphError::DuplicateEdge {
            from: NodeId(0),
            to: NodeId(1)
        }
        .to_string()
        .contains("duplicate"));
        assert!(GraphError::TooLarge.to_string().contains("u32"));
    }
}
