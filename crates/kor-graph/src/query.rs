//! Query-local keyword bitmasks.
//!
//! KOR search labels record the covered query keywords `L.λ` (Definition
//! 5). With at most a few query keywords (the paper cites map-query logs
//! with < 5 words and evaluates up to 10), a fixed-width `u64` bitmask
//! indexed by *query-local* bit positions is the compact representation:
//! coverage union is one `or`, the covering test one `and`-compare, and
//! dominance's mask-subset test `m & λ == λ` — all branchless. This
//! module provides the mapping between global [`KeywordId`]s and those
//! bits.

use std::fmt;

use crate::ids::KeywordId;
use crate::keyword::{KeywordSet, Vocab};

/// Maximum number of keywords in a single query (bits in the mask).
pub const MAX_QUERY_KEYWORDS: usize = 64;

/// Errors when assembling a query keyword set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryKeywordsError {
    /// More than [`MAX_QUERY_KEYWORDS`] distinct keywords.
    TooMany(usize),
    /// A term is not in the vocabulary (so no node can ever cover it).
    UnknownTerm(String),
}

impl fmt::Display for QueryKeywordsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryKeywordsError::TooMany(n) => {
                write!(
                    f,
                    "{n} query keywords exceed the maximum of {MAX_QUERY_KEYWORDS}"
                )
            }
            QueryKeywordsError::UnknownTerm(t) => {
                write!(f, "query keyword {t:?} does not occur in the vocabulary")
            }
        }
    }
}

impl std::error::Error for QueryKeywordsError {}

/// The set `ψ` of query keywords with a fixed keyword→bit assignment.
///
/// Bit `i` of a coverage mask corresponds to `self.ids()[i]`; ids are kept
/// sorted so equal keyword sets produce identical masks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryKeywords {
    ids: Vec<KeywordId>,
    full_mask: u64,
}

impl QueryKeywords {
    /// Builds from keyword ids (sorted and deduplicated).
    pub fn new(mut ids: Vec<KeywordId>) -> Result<Self, QueryKeywordsError> {
        ids.sort_unstable();
        ids.dedup();
        if ids.len() > MAX_QUERY_KEYWORDS {
            return Err(QueryKeywordsError::TooMany(ids.len()));
        }
        let full_mask = if ids.is_empty() {
            0
        } else {
            (u64::MAX) >> (64 - ids.len() as u32)
        };
        Ok(Self { ids, full_mask })
    }

    /// Builds from textual terms resolved against `vocab`.
    pub fn from_terms<I, S>(vocab: &Vocab, terms: I) -> Result<Self, QueryKeywordsError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ids = Vec::new();
        for t in terms {
            let t = t.as_ref();
            match vocab.get(t) {
                Some(id) => ids.push(id),
                None => return Err(QueryKeywordsError::UnknownTerm(t.to_owned())),
            }
        }
        Self::new(ids)
    }

    /// Number of query keywords `m`.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the query has no keyword constraint.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The mask with all query keyword bits set.
    #[inline]
    pub fn full_mask(&self) -> u64 {
        self.full_mask
    }

    /// The sorted query keyword ids.
    pub fn ids(&self) -> &[KeywordId] {
        &self.ids
    }

    /// The bit position of `id`, if it is a query keyword.
    pub fn bit(&self, id: KeywordId) -> Option<u32> {
        self.ids.binary_search(&id).ok().map(|i| i as u32)
    }

    /// The keyword id at bit position `bit`.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= self.len()`.
    pub fn id_at(&self, bit: u32) -> KeywordId {
        self.ids[bit as usize]
    }

    /// The coverage mask contributed by a node keyword set `v.ψ`
    /// (merge-walk over the two sorted slices).
    pub fn mask_of(&self, node_keywords: &KeywordSet) -> u64 {
        let mut mask = 0u64;
        let mut qi = 0usize;
        for kw in node_keywords.iter() {
            while qi < self.ids.len() && self.ids[qi] < kw {
                qi += 1;
            }
            if qi == self.ids.len() {
                break;
            }
            if self.ids[qi] == kw {
                mask |= 1u64 << qi;
                qi += 1;
            }
        }
        mask
    }

    /// Whether `mask` covers all query keywords.
    #[inline]
    pub fn is_covering(&self, mask: u64) -> bool {
        mask & self.full_mask == self.full_mask
    }

    /// Keywords *not* covered by `mask`, as `(bit, id)` pairs.
    pub fn uncovered(&self, mask: u64) -> impl Iterator<Item = (u32, KeywordId)> + '_ {
        let missing = self.full_mask & !mask;
        (0..self.ids.len() as u32)
            .filter(move |b| missing & (1u64 << b) != 0)
            .map(move |b| (b, self.ids[b as usize]))
    }
}

/// Enumerates all masks `μ ⊇ λ` within `universe` (including `λ` itself).
///
/// Used for dominance checks: a label with coverage `λ` can only be
/// dominated by labels whose coverage is a superset of `λ` (Definition 6).
pub fn supersets_of(lambda: u64, universe: u64) -> SupersetIter {
    SupersetIter {
        lambda,
        free: universe & !lambda,
        sub: universe & !lambda,
        done: false,
    }
}

/// Enumerates all masks `μ ⊆ λ` (including `λ` itself and 0).
pub fn subsets_of(lambda: u64) -> SubsetIter {
    SubsetIter {
        lambda,
        sub: lambda,
        done: false,
    }
}

/// Iterator over supersets; see [`supersets_of`].
#[derive(Debug, Clone)]
pub struct SupersetIter {
    lambda: u64,
    free: u64,
    sub: u64,
    done: bool,
}

impl Iterator for SupersetIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let out = self.lambda | self.sub;
        if self.sub == 0 {
            self.done = true;
        } else {
            self.sub = (self.sub - 1) & self.free;
        }
        Some(out)
    }
}

/// Iterator over subsets; see [`subsets_of`].
#[derive(Debug, Clone)]
pub struct SubsetIter {
    lambda: u64,
    sub: u64,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.done {
            return None;
        }
        let out = self.sub;
        if self.sub == 0 {
            self.done = true;
        } else {
            self.sub = (self.sub - 1) & self.lambda;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab_with(terms: &[&str]) -> Vocab {
        let mut v = Vocab::new();
        for t in terms {
            v.intern(t);
        }
        v
    }

    #[test]
    fn from_terms_resolves_and_sorts() {
        let v = vocab_with(&["pub", "mall", "cafe"]);
        let q = QueryKeywords::from_terms(&v, ["cafe", "pub"]).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.full_mask(), 0b11);
        // ids sorted ascending regardless of term order
        assert!(q.ids()[0] < q.ids()[1]);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let v = vocab_with(&["pub"]);
        let err = QueryKeywords::from_terms(&v, ["zoo"]).unwrap_err();
        assert_eq!(err, QueryKeywordsError::UnknownTerm("zoo".into()));
    }

    #[test]
    fn too_many_keywords_is_an_error() {
        let ids: Vec<KeywordId> = (0..65).map(KeywordId).collect();
        assert!(matches!(
            QueryKeywords::new(ids),
            Err(QueryKeywordsError::TooMany(65))
        ));
    }

    #[test]
    fn sixty_four_keywords_full_mask() {
        let ids: Vec<KeywordId> = (0..64).map(KeywordId).collect();
        let q = QueryKeywords::new(ids).unwrap();
        assert_eq!(q.full_mask(), u64::MAX);
        assert!(q.is_covering(u64::MAX));
        assert!(!q.is_covering(u64::MAX >> 1));
    }

    #[test]
    fn masks_above_bit_31_work() {
        let ids: Vec<KeywordId> = (0..40).map(KeywordId).collect();
        let q = QueryKeywords::new(ids).unwrap();
        assert_eq!(q.full_mask(), (u64::MAX) >> 24);
        let node = KeywordSet::new(vec![KeywordId(39)]);
        assert_eq!(q.mask_of(&node), 1u64 << 39);
        let missing: Vec<u32> = q.uncovered(1u64 << 39).map(|(b, _)| b).collect();
        assert_eq!(missing.len(), 39);
        assert!(!missing.contains(&39));
    }

    #[test]
    fn empty_query_is_always_covered() {
        let q = QueryKeywords::new(vec![]).unwrap();
        assert_eq!(q.full_mask(), 0);
        assert!(q.is_covering(0));
        assert_eq!(q.uncovered(0).count(), 0);
    }

    #[test]
    fn mask_of_merges_sorted_sets() {
        let q = QueryKeywords::new(vec![KeywordId(1), KeywordId(4), KeywordId(7)]).unwrap();
        let node = KeywordSet::new(vec![KeywordId(0), KeywordId(4), KeywordId(7), KeywordId(9)]);
        // bits: kw 1 -> bit0 (absent), kw 4 -> bit1, kw 7 -> bit2
        assert_eq!(q.mask_of(&node), 0b110);
        assert!(!q.is_covering(0b110));
        let missing: Vec<_> = q.uncovered(0b110).collect();
        assert_eq!(missing, vec![(0, KeywordId(1))]);
    }

    #[test]
    fn bit_and_id_at_round_trip() {
        let q = QueryKeywords::new(vec![KeywordId(5), KeywordId(2)]).unwrap();
        for b in 0..q.len() as u32 {
            assert_eq!(q.bit(q.id_at(b)), Some(b));
        }
        assert_eq!(q.bit(KeywordId(77)), None);
    }

    #[test]
    fn supersets_enumerate_exactly() {
        let got: std::collections::BTreeSet<u64> = supersets_of(0b010, 0b111).collect();
        let want: std::collections::BTreeSet<u64> =
            [0b010, 0b011, 0b110, 0b111].into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn supersets_of_full_mask_is_self() {
        let got: Vec<u64> = supersets_of(0b11, 0b11).collect();
        assert_eq!(got, vec![0b11]);
    }

    #[test]
    fn subsets_enumerate_exactly() {
        let got: std::collections::BTreeSet<u64> = subsets_of(0b101).collect();
        let want: std::collections::BTreeSet<u64> =
            [0b101, 0b100, 0b001, 0b000].into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn subsets_of_zero_is_zero() {
        let got: Vec<u64> = subsets_of(0).collect();
        assert_eq!(got, vec![0]);
    }
}
