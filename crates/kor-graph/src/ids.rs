//! Integer id newtypes for nodes, edges, and keywords.
//!
//! All ids are `u32`-backed: the paper's graphs top out at 20k nodes, and
//! compact ids keep search labels small (perf-book "Smaller Integers").

use std::fmt;

/// Identifier of a node (location) in a [`crate::Graph`].
///
/// Ids are dense: a graph with `n` nodes uses exactly `NodeId(0..n)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

/// Identifier of a directed edge in a [`crate::Graph`].
///
/// Edge ids index the forward CSR arrays; they are assigned in
/// source-major order when the graph is built.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

/// Identifier of an interned keyword in a [`crate::Vocab`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeywordId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl KeywordId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for KeywordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for KeywordId {
    fn from(v: u32) -> Self {
        KeywordId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_index() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(EdgeId(9).index(), 9);
        assert_eq!(KeywordId(3).index(), 3);
    }

    #[test]
    fn debug_formats_match_paper_notation() {
        assert_eq!(format!("{:?}", NodeId(0)), "v0");
        assert_eq!(format!("{}", NodeId(12)), "v12");
        assert_eq!(format!("{:?}", KeywordId(1)), "t1");
        assert_eq!(format!("{:?}", EdgeId(4)), "e4");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(KeywordId(0) < KeywordId(5));
    }
}
