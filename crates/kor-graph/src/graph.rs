//! The immutable CSR graph.

use crate::ids::{EdgeId, KeywordId, NodeId};
use crate::keyword::{KeywordSet, Vocab};
use crate::stats::GraphStats;

/// A directed edge seen from one endpoint.
///
/// For [`Graph::out_edges`], `node` is the edge *target*; for
/// [`Graph::in_edges`], `node` is the edge *source*. `id` always refers to
/// the canonical forward edge id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Canonical edge id (stable across forward/backward views).
    pub id: EdgeId,
    /// The endpoint on the far side of the adjacency being iterated.
    pub node: NodeId,
    /// Objective value `o(v_i, v_j)`.
    pub objective: f64,
    /// Budget value `b(v_i, v_j)`.
    pub budget: f64,
}

/// An immutable directed graph with per-node keyword sets and two positive
/// weights per edge, stored as CSR adjacency in both directions.
///
/// Construct with [`crate::GraphBuilder`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_objective: Vec<f64>,
    out_budget: Vec<f64>,
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_objective: Vec<f64>,
    in_budget: Vec<f64>,
    in_edge_ids: Vec<EdgeId>,
    keywords: Vec<KeywordSet>,
    positions: Option<Vec<(f64, f64)>>,
    vocab: Vocab,
    /// `[o_min, o_max, b_min, b_max]`; `o_min`/`b_min` are `+inf` for an
    /// edgeless graph.
    extrema: [f64; 4],
}

// Reflexive `AsRef`, so APIs generic over "some handle to a graph"
// (`G: AsRef<Graph>`) accept `&Graph`, `Arc<Graph>`, and `&Arc<Graph>`
// alike — see `kor_core::KorEngine`.
impl AsRef<Graph> for Graph {
    fn as_ref(&self) -> &Graph {
        self
    }
}

impl Graph {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        out_objective: Vec<f64>,
        out_budget: Vec<f64>,
        in_offsets: Vec<u32>,
        in_sources: Vec<NodeId>,
        in_objective: Vec<f64>,
        in_budget: Vec<f64>,
        in_edge_ids: Vec<EdgeId>,
        keywords: Vec<KeywordSet>,
        positions: Option<Vec<(f64, f64)>>,
        vocab: Vocab,
        extrema: [f64; 4],
    ) -> Self {
        Self {
            out_offsets,
            out_targets,
            out_objective,
            out_budget,
            in_offsets,
            in_sources,
            in_objective,
            in_budget,
            in_edge_ids,
            keywords,
            positions,
            vocab,
            extrema,
        }
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.keywords.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterates all node ids `v0..v_{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Whether `v` is a valid node id for this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Outgoing edges of `v` (the `node` field is the target).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            id: EdgeId(i as u32),
            node: self.out_targets[i],
            objective: self.out_objective[i],
            budget: self.out_budget[i],
        })
    }

    /// Incoming edges of `v` (the `node` field is the source).
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            id: self.in_edge_ids[i],
            node: self.in_sources[i],
            objective: self.in_objective[i],
            budget: self.in_budget[i],
        })
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Largest out-degree in the graph (`d` in the paper's brute-force
    /// complexity `O(d^{⌊Δ/b_min⌋})`).
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// The directed edge `from → to`, if present (linear scan of the
    /// out-adjacency of `from`, which is short in practice).
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeRef> {
        self.out_edges(from).find(|e| e.node == to)
    }

    /// Keyword set `v.ψ` of node `v`.
    #[inline]
    pub fn keywords(&self, v: NodeId) -> &KeywordSet {
        &self.keywords[v.index()]
    }

    /// Whether node `v` contains keyword `t`.
    #[inline]
    pub fn node_has_keyword(&self, v: NodeId, t: KeywordId) -> bool {
        self.keywords[v.index()].contains(t)
    }

    /// Planar position of `v`, if the graph was built with positions.
    pub fn position(&self, v: NodeId) -> Option<(f64, f64)> {
        self.positions.as_ref().map(|p| p[v.index()])
    }

    /// Whether positional data is available.
    pub fn has_positions(&self) -> bool {
        self.positions.is_some()
    }

    /// The keyword vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Smallest edge objective value `o_min` (`+inf` if edgeless).
    #[inline]
    pub fn o_min(&self) -> f64 {
        self.extrema[0]
    }

    /// Largest edge objective value `o_max` (`0` if edgeless).
    #[inline]
    pub fn o_max(&self) -> f64 {
        self.extrema[1]
    }

    /// Smallest edge budget value `b_min` (`+inf` if edgeless).
    #[inline]
    pub fn b_min(&self) -> f64 {
        self.extrema[2]
    }

    /// Largest edge budget value `b_max` (`0` if edgeless).
    #[inline]
    pub fn b_max(&self) -> f64 {
        self.extrema[3]
    }

    /// Summary statistics (degree distribution, weight extrema, keywords).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }

    /// Iterates `(node, keyword)` pairs — the raw postings used to build
    /// inverted indexes.
    pub fn keyword_postings(&self) -> impl Iterator<Item = (NodeId, KeywordId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.keywords(v).iter().map(move |t| (v, t)))
    }

    /// Restores internal lookup tables after deserialization.
    #[cfg(feature = "serde")]
    pub fn rebuild_after_deserialize(&mut self) {
        self.vocab.rebuild_lookup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // v0 -> v1 -> v3, v0 -> v2 -> v3
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["s"]);
        let v1 = b.add_node(["a"]);
        let v2 = b.add_node(["b"]);
        let v3 = b.add_node(["t"]);
        b.add_edge(v0, v1, 1.0, 1.0).unwrap();
        b.add_edge(v0, v2, 2.0, 2.0).unwrap();
        b.add_edge(v1, v3, 3.0, 3.0).unwrap();
        b.add_edge(v2, v3, 4.0, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn edge_between_finds_weights() {
        let g = diamond();
        let e = g.edge_between(NodeId(1), NodeId(3)).unwrap();
        assert_eq!(e.objective, 3.0);
        assert_eq!(e.budget, 3.0);
        assert!(g.edge_between(NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn in_edges_report_canonical_edge_ids() {
        let g = diamond();
        for v in g.nodes() {
            for e in g.in_edges(v) {
                // The forward view of the same edge id must agree.
                let fwd = g
                    .out_edges(e.node)
                    .find(|f| f.id == e.id)
                    .expect("in-edge id must exist in source's out list");
                assert_eq!(fwd.node, v);
                assert_eq!(fwd.objective, e.objective);
                assert_eq!(fwd.budget, e.budget);
            }
        }
    }

    #[test]
    fn keyword_postings_cover_all_nodes() {
        let g = diamond();
        let postings: Vec<_> = g.keyword_postings().collect();
        assert_eq!(postings.len(), 4);
        assert!(postings.iter().any(|&(v, _)| v == NodeId(2)));
    }

    #[test]
    fn contains_checks_range() {
        let g = diamond();
        assert!(g.contains(NodeId(3)));
        assert!(!g.contains(NodeId(4)));
    }

    #[test]
    fn node_has_keyword() {
        let g = diamond();
        let s = g.vocab().get("s").unwrap();
        assert!(g.node_has_keyword(NodeId(0), s));
        assert!(!g.node_has_keyword(NodeId(1), s));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn graph_clone_preserves_structure() {
        let g = diamond();
        let g2 = g.clone();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.out_edges(NodeId(0)).collect::<Vec<_>>(),
            g.out_edges(NodeId(0)).collect::<Vec<_>>()
        );
    }
}
