//! The immutable CSR graph.

use crate::ids::{EdgeId, KeywordId, NodeId};
use crate::keyword::{KeywordSet, Vocab};
use crate::stats::GraphStats;

/// A directed edge seen from one endpoint.
///
/// For [`Graph::out_edges`], `node` is the edge *target*; for
/// [`Graph::in_edges`], `node` is the edge *source*. `id` always refers to
/// the canonical forward edge id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Canonical edge id (stable across forward/backward views).
    pub id: EdgeId,
    /// The endpoint on the far side of the adjacency being iterated.
    pub node: NodeId,
    /// Objective value `o(v_i, v_j)`.
    pub objective: f64,
    /// Budget value `b(v_i, v_j)`.
    pub budget: f64,
}

/// Borrowed view of the forward CSR arrays — the serialization surface
/// used by binary dataset snapshots (`kor-data`'s `.korbin` format).
///
/// Together with [`Graph::keywords`], [`Graph::positions`], and
/// [`Graph::vocab`], these four parallel arrays fully determine a graph;
/// [`Graph::from_csr_parts`] rebuilds one (re-deriving the backward CSR
/// and weight extrema) after validating every invariant the
/// [`crate::GraphBuilder`] enforces.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    /// `node_count + 1` offsets into the edge arrays.
    pub out_offsets: &'a [u32],
    /// Edge targets, grouped by source node.
    pub out_targets: &'a [NodeId],
    /// Objective value per edge, parallel to `out_targets`.
    pub out_objective: &'a [f64],
    /// Budget value per edge, parallel to `out_targets`.
    pub out_budget: &'a [f64],
}

/// An immutable directed graph with per-node keyword sets and two positive
/// weights per edge, stored as CSR adjacency in both directions.
///
/// Construct with [`crate::GraphBuilder`].
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Graph {
    out_offsets: Vec<u32>,
    out_targets: Vec<NodeId>,
    out_objective: Vec<f64>,
    out_budget: Vec<f64>,
    in_offsets: Vec<u32>,
    in_sources: Vec<NodeId>,
    in_objective: Vec<f64>,
    in_budget: Vec<f64>,
    in_edge_ids: Vec<EdgeId>,
    keywords: Vec<KeywordSet>,
    positions: Option<Vec<(f64, f64)>>,
    vocab: Vocab,
    /// `[o_min, o_max, b_min, b_max]`; `o_min`/`b_min` are `+inf` for an
    /// edgeless graph.
    extrema: [f64; 4],
    /// Mutation generation counter — bumped by
    /// [`Graph::apply_mutations`]. Runtime-only: snapshots do not store
    /// it, so a freshly loaded or deserialized graph is always epoch 0.
    #[cfg_attr(feature = "serde", serde(skip))]
    epoch: u64,
}

// Reflexive `AsRef`, so APIs generic over "some handle to a graph"
// (`G: AsRef<Graph>`) accept `&Graph`, `Arc<Graph>`, and `&Arc<Graph>`
// alike — see `kor_core::KorEngine`.
impl AsRef<Graph> for Graph {
    fn as_ref(&self) -> &Graph {
        self
    }
}

impl Graph {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        out_objective: Vec<f64>,
        out_budget: Vec<f64>,
        in_offsets: Vec<u32>,
        in_sources: Vec<NodeId>,
        in_objective: Vec<f64>,
        in_budget: Vec<f64>,
        in_edge_ids: Vec<EdgeId>,
        keywords: Vec<KeywordSet>,
        positions: Option<Vec<(f64, f64)>>,
        vocab: Vocab,
        extrema: [f64; 4],
    ) -> Self {
        Self {
            out_offsets,
            out_targets,
            out_objective,
            out_budget,
            in_offsets,
            in_sources,
            in_objective,
            in_budget,
            in_edge_ids,
            keywords,
            positions,
            vocab,
            extrema,
            epoch: 0,
        }
    }

    /// Mutation generation of this graph value: 0 for a freshly built or
    /// loaded graph, incremented once per applied mutation batch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Renumbers this graph's epoch without touching its structure.
    ///
    /// Snapshots do not store the epoch, so a graph reloaded from a
    /// checkpoint taken at epoch `E` comes back as epoch 0; journal
    /// recovery uses this to restore the pre-crash numbering before
    /// replaying the batches that follow the checkpoint. Outside
    /// recovery, the epoch should only ever move via
    /// [`Graph::apply_mutations`].
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.keywords.len()
    }

    /// Number of directed edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterates all node ids `v0..v_{n-1}`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Whether `v` is a valid node id for this graph.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        v.index() < self.node_count()
    }

    /// Outgoing edges of `v` (the `node` field is the target).
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.out_offsets[v.index()] as usize;
        let hi = self.out_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            id: EdgeId(i as u32),
            node: self.out_targets[i],
            objective: self.out_objective[i],
            budget: self.out_budget[i],
        })
    }

    /// Incoming edges of `v` (the `node` field is the source).
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        let lo = self.in_offsets[v.index()] as usize;
        let hi = self.in_offsets[v.index() + 1] as usize;
        (lo..hi).map(move |i| EdgeRef {
            id: self.in_edge_ids[i],
            node: self.in_sources[i],
            objective: self.in_objective[i],
            budget: self.in_budget[i],
        })
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: NodeId) -> usize {
        (self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        (self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]) as usize
    }

    /// Largest out-degree in the graph (`d` in the paper's brute-force
    /// complexity `O(d^{⌊Δ/b_min⌋})`).
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// The directed edge `from → to`, if present (linear scan of the
    /// out-adjacency of `from`, which is short in practice).
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeRef> {
        self.out_edges(from).find(|e| e.node == to)
    }

    /// Keyword set `v.ψ` of node `v`.
    #[inline]
    pub fn keywords(&self, v: NodeId) -> &KeywordSet {
        &self.keywords[v.index()]
    }

    /// Whether node `v` contains keyword `t`.
    #[inline]
    pub fn node_has_keyword(&self, v: NodeId, t: KeywordId) -> bool {
        self.keywords[v.index()].contains(t)
    }

    /// Planar position of `v`, if the graph was built with positions.
    pub fn position(&self, v: NodeId) -> Option<(f64, f64)> {
        self.positions.as_ref().map(|p| p[v.index()])
    }

    /// Whether positional data is available.
    pub fn has_positions(&self) -> bool {
        self.positions.is_some()
    }

    /// The keyword vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Smallest edge objective value `o_min` (`+inf` if edgeless).
    #[inline]
    pub fn o_min(&self) -> f64 {
        self.extrema[0]
    }

    /// Largest edge objective value `o_max` (`0` if edgeless).
    #[inline]
    pub fn o_max(&self) -> f64 {
        self.extrema[1]
    }

    /// Smallest edge budget value `b_min` (`+inf` if edgeless).
    #[inline]
    pub fn b_min(&self) -> f64 {
        self.extrema[2]
    }

    /// Largest edge budget value `b_max` (`0` if edgeless).
    #[inline]
    pub fn b_max(&self) -> f64 {
        self.extrema[3]
    }

    /// Summary statistics (degree distribution, weight extrema, keywords).
    pub fn stats(&self) -> GraphStats {
        GraphStats::compute(self)
    }

    /// Iterates `(node, keyword)` pairs — the raw postings used to build
    /// inverted indexes.
    pub fn keyword_postings(&self) -> impl Iterator<Item = (NodeId, KeywordId)> + '_ {
        self.nodes()
            .flat_map(move |v| self.keywords(v).iter().map(move |t| (v, t)))
    }

    /// Restores internal lookup tables after deserialization.
    #[cfg(feature = "serde")]
    pub fn rebuild_after_deserialize(&mut self) {
        self.vocab.rebuild_lookup();
    }

    /// Borrowed view of the forward CSR arrays (see [`CsrView`]).
    pub fn csr(&self) -> CsrView<'_> {
        CsrView {
            out_offsets: &self.out_offsets,
            out_targets: &self.out_targets,
            out_objective: &self.out_objective,
            out_budget: &self.out_budget,
        }
    }

    /// All planar positions, if the graph was built with them.
    pub fn positions(&self) -> Option<&[(f64, f64)]> {
        self.positions.as_deref()
    }

    /// Rebuilds a graph from forward CSR parts — the inverse of
    /// [`Self::csr`] plus the node payloads.
    ///
    /// Every invariant the [`crate::GraphBuilder`] enforces is
    /// re-validated (offset monotonicity, endpoint ranges, self-loops,
    /// duplicate edges, positive finite weights, keyword ids within the
    /// vocabulary), so a corrupt or hand-crafted snapshot can never
    /// produce a graph other code paths could not have built. The
    /// backward CSR and weight extrema are re-derived, which makes the
    /// deserialized graph structurally identical to the original without
    /// storing the redundant arrays.
    ///
    /// # Errors
    ///
    /// [`crate::GraphError::InvalidCsr`] describes the first violated
    /// invariant; [`crate::GraphError::SelfLoop`],
    /// [`crate::GraphError::DuplicateEdge`], and
    /// [`crate::GraphError::InvalidWeight`] are reused for the
    /// per-edge checks.
    pub fn from_csr_parts(
        out_offsets: Vec<u32>,
        out_targets: Vec<NodeId>,
        out_objective: Vec<f64>,
        out_budget: Vec<f64>,
        keywords: Vec<KeywordSet>,
        positions: Option<Vec<(f64, f64)>>,
        vocab: Vocab,
    ) -> Result<Graph, crate::error::GraphError> {
        use crate::error::GraphError;

        let n = keywords.len();
        let m = out_targets.len();
        if out_offsets.len() != n + 1 {
            return Err(GraphError::InvalidCsr(format!(
                "offset array has {} entries, expected {}",
                out_offsets.len(),
                n + 1
            )));
        }
        if out_offsets[0] != 0 || out_offsets[n] as usize != m {
            return Err(GraphError::InvalidCsr(format!(
                "offsets must span 0..{m}, got {}..{}",
                out_offsets[0], out_offsets[n]
            )));
        }
        if out_objective.len() != m || out_budget.len() != m {
            return Err(GraphError::InvalidCsr(format!(
                "weight arrays ({}, {}) do not match {m} edges",
                out_objective.len(),
                out_budget.len()
            )));
        }
        if let Some(p) = &positions {
            if p.len() != n {
                return Err(GraphError::InvalidCsr(format!(
                    "{} positions for {n} nodes",
                    p.len()
                )));
            }
        }
        for w in out_offsets.windows(2) {
            if w[0] > w[1] {
                return Err(GraphError::InvalidCsr(format!(
                    "offsets must be non-decreasing, got {} before {}",
                    w[0], w[1]
                )));
            }
        }
        for set in &keywords {
            for t in set.iter() {
                if t.index() >= vocab.len() {
                    return Err(GraphError::InvalidCsr(format!(
                        "keyword id {} outside the {}-term vocabulary",
                        t.0,
                        vocab.len()
                    )));
                }
            }
        }
        // Per-edge checks. `seen_from` is a stamp array giving O(V + E)
        // duplicate detection without hashing: a slot holds the id of the
        // last source that targeted it (u32::MAX = never).
        let mut seen_from = vec![u32::MAX; n];
        let mut o_min = f64::INFINITY;
        let mut o_max = 0.0f64;
        let mut b_min = f64::INFINITY;
        let mut b_max = 0.0f64;
        for v in 0..n {
            let (lo, hi) = (out_offsets[v] as usize, out_offsets[v + 1] as usize);
            let from = NodeId(v as u32);
            for slot in lo..hi {
                let to = out_targets[slot];
                if to.index() >= n {
                    return Err(GraphError::UnknownNode(to));
                }
                if to == from {
                    return Err(GraphError::SelfLoop(from));
                }
                if seen_from[to.index()] == v as u32 {
                    return Err(GraphError::DuplicateEdge { from, to });
                }
                seen_from[to.index()] = v as u32;
                for (attribute, value) in [
                    ("objective", out_objective[slot]),
                    ("budget", out_budget[slot]),
                ] {
                    if !value.is_finite() || value <= 0.0 {
                        return Err(GraphError::InvalidWeight {
                            from,
                            to,
                            attribute,
                            value,
                        });
                    }
                }
                o_min = o_min.min(out_objective[slot]);
                o_max = o_max.max(out_objective[slot]);
                b_min = b_min.min(out_budget[slot]);
                b_max = b_max.max(out_budget[slot]);
            }
        }

        // Backward CSR, remembering the forward edge id of each in-edge
        // (the same derivation as GraphBuilder::build).
        let mut in_offsets = vec![0u32; n + 1];
        for t in &out_targets {
            in_offsets[t.index() + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor = in_offsets.clone();
        let mut in_sources = vec![NodeId(0); m];
        let mut in_objective = vec![0.0f64; m];
        let mut in_budget = vec![0.0f64; m];
        let mut in_edge_ids = vec![EdgeId(0); m];
        for v in 0..n {
            let (lo, hi) = (out_offsets[v] as usize, out_offsets[v + 1] as usize);
            for slot in lo..hi {
                let t = out_targets[slot];
                let dst = cursor[t.index()] as usize;
                cursor[t.index()] += 1;
                in_sources[dst] = NodeId(v as u32);
                in_objective[dst] = out_objective[slot];
                in_budget[dst] = out_budget[slot];
                in_edge_ids[dst] = EdgeId(slot as u32);
            }
        }

        Ok(Graph::from_parts(
            out_offsets,
            out_targets,
            out_objective,
            out_budget,
            in_offsets,
            in_sources,
            in_objective,
            in_budget,
            in_edge_ids,
            keywords,
            positions,
            vocab,
            [o_min, o_max, b_min, b_max],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // v0 -> v1 -> v3, v0 -> v2 -> v3
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["s"]);
        let v1 = b.add_node(["a"]);
        let v2 = b.add_node(["b"]);
        let v3 = b.add_node(["t"]);
        b.add_edge(v0, v1, 1.0, 1.0).unwrap();
        b.add_edge(v0, v2, 2.0, 2.0).unwrap();
        b.add_edge(v1, v3, 3.0, 3.0).unwrap();
        b.add_edge(v2, v3, 4.0, 4.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degrees() {
        let g = diamond();
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.max_out_degree(), 2);
    }

    #[test]
    fn edge_between_finds_weights() {
        let g = diamond();
        let e = g.edge_between(NodeId(1), NodeId(3)).unwrap();
        assert_eq!(e.objective, 3.0);
        assert_eq!(e.budget, 3.0);
        assert!(g.edge_between(NodeId(3), NodeId(0)).is_none());
    }

    #[test]
    fn in_edges_report_canonical_edge_ids() {
        let g = diamond();
        for v in g.nodes() {
            for e in g.in_edges(v) {
                // The forward view of the same edge id must agree.
                let fwd = g
                    .out_edges(e.node)
                    .find(|f| f.id == e.id)
                    .expect("in-edge id must exist in source's out list");
                assert_eq!(fwd.node, v);
                assert_eq!(fwd.objective, e.objective);
                assert_eq!(fwd.budget, e.budget);
            }
        }
    }

    #[test]
    fn keyword_postings_cover_all_nodes() {
        let g = diamond();
        let postings: Vec<_> = g.keyword_postings().collect();
        assert_eq!(postings.len(), 4);
        assert!(postings.iter().any(|&(v, _)| v == NodeId(2)));
    }

    #[test]
    fn contains_checks_range() {
        let g = diamond();
        assert!(g.contains(NodeId(3)));
        assert!(!g.contains(NodeId(4)));
    }

    #[test]
    fn node_has_keyword() {
        let g = diamond();
        let s = g.vocab().get("s").unwrap();
        assert!(g.node_has_keyword(NodeId(0), s));
        assert!(!g.node_has_keyword(NodeId(1), s));
    }

    /// Decomposes a graph via the serialization accessors and rebuilds it.
    fn csr_round_trip(g: &Graph) -> Result<Graph, crate::error::GraphError> {
        let csr = g.csr();
        Graph::from_csr_parts(
            csr.out_offsets.to_vec(),
            csr.out_targets.to_vec(),
            csr.out_objective.to_vec(),
            csr.out_budget.to_vec(),
            g.nodes().map(|v| g.keywords(v).clone()).collect(),
            g.positions().map(<[_]>::to_vec),
            g.vocab().clone(),
        )
    }

    #[test]
    fn from_csr_parts_round_trips() {
        let g = diamond();
        let g2 = csr_round_trip(&g).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            assert_eq!(
                g2.out_edges(v).collect::<Vec<_>>(),
                g.out_edges(v).collect::<Vec<_>>()
            );
            assert_eq!(
                g2.in_edges(v).collect::<Vec<_>>(),
                g.in_edges(v).collect::<Vec<_>>()
            );
            assert_eq!(g2.keywords(v), g.keywords(v));
        }
        assert_eq!(g2.o_min(), g.o_min());
        assert_eq!(g2.o_max(), g.o_max());
        assert_eq!(g2.b_min(), g.b_min());
        assert_eq!(g2.b_max(), g.b_max());
        assert_eq!(g2.vocab().get("s"), g.vocab().get("s"));
        // An empty graph survives too.
        let empty = crate::builder::GraphBuilder::new().build().unwrap();
        let empty2 = csr_round_trip(&empty).unwrap();
        assert_eq!(empty2.node_count(), 0);
        assert_eq!(empty2.edge_count(), 0);
    }

    #[test]
    fn from_csr_parts_rejects_corruption() {
        use crate::error::GraphError;
        let g = diamond();
        let csr = g.csr();
        let kw = || -> Vec<KeywordSet> { g.nodes().map(|v| g.keywords(v).clone()).collect() };

        // Wrong offset shape.
        let err = Graph::from_csr_parts(
            vec![0, 1],
            csr.out_targets.to_vec(),
            csr.out_objective.to_vec(),
            csr.out_budget.to_vec(),
            kw(),
            None,
            g.vocab().clone(),
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidCsr(_)), "{err}");

        // Target outside the node range.
        let mut targets = csr.out_targets.to_vec();
        targets[0] = NodeId(99);
        let err = Graph::from_csr_parts(
            csr.out_offsets.to_vec(),
            targets,
            csr.out_objective.to_vec(),
            csr.out_budget.to_vec(),
            kw(),
            None,
            g.vocab().clone(),
        )
        .unwrap_err();
        assert_eq!(err, GraphError::UnknownNode(NodeId(99)));

        // Self loop.
        let mut targets = csr.out_targets.to_vec();
        targets[0] = NodeId(0);
        assert!(matches!(
            Graph::from_csr_parts(
                csr.out_offsets.to_vec(),
                targets,
                csr.out_objective.to_vec(),
                csr.out_budget.to_vec(),
                kw(),
                None,
                g.vocab().clone(),
            ),
            Err(GraphError::SelfLoop(NodeId(0)))
        ));

        // Duplicate edge (v0 -> v1 twice).
        let mut targets = csr.out_targets.to_vec();
        targets[1] = targets[0];
        assert!(matches!(
            Graph::from_csr_parts(
                csr.out_offsets.to_vec(),
                targets,
                csr.out_objective.to_vec(),
                csr.out_budget.to_vec(),
                kw(),
                None,
                g.vocab().clone(),
            ),
            Err(GraphError::DuplicateEdge { .. })
        ));

        // Non-positive weight.
        let mut objective = csr.out_objective.to_vec();
        objective[2] = -1.0;
        assert!(matches!(
            Graph::from_csr_parts(
                csr.out_offsets.to_vec(),
                csr.out_targets.to_vec(),
                objective,
                csr.out_budget.to_vec(),
                kw(),
                None,
                g.vocab().clone(),
            ),
            Err(GraphError::InvalidWeight { .. })
        ));

        // Keyword id outside the vocabulary.
        let mut bad_kw = kw();
        bad_kw[0] = KeywordSet::new(vec![crate::ids::KeywordId(1000)]);
        assert!(matches!(
            Graph::from_csr_parts(
                csr.out_offsets.to_vec(),
                csr.out_targets.to_vec(),
                csr.out_objective.to_vec(),
                csr.out_budget.to_vec(),
                bad_kw,
                None,
                g.vocab().clone(),
            ),
            Err(GraphError::InvalidCsr(_))
        ));

        // Position count mismatch.
        assert!(matches!(
            Graph::from_csr_parts(
                csr.out_offsets.to_vec(),
                csr.out_targets.to_vec(),
                csr.out_objective.to_vec(),
                csr.out_budget.to_vec(),
                kw(),
                Some(vec![(0.0, 0.0)]),
                g.vocab().clone(),
            ),
            Err(GraphError::InvalidCsr(_))
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn graph_clone_preserves_structure() {
        let g = diamond();
        let g2 = g.clone();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        assert_eq!(
            g2.out_edges(NodeId(0)).collect::<Vec<_>>(),
            g.out_edges(NodeId(0)).collect::<Vec<_>>()
        );
    }
}
