//! Directed two-weight keyword graph substrate for keyword-aware optimal
//! route search (KOR, Cao et al., VLDB 2012).
//!
//! The paper defines a graph `G = (V, E)` (Definition 1) where every node is
//! a location carrying a set of keywords `v.ψ`, and every directed edge
//! carries two positive attributes: an **objective value** `o(v_i, v_j)`
//! (e.g. unpopularity) and a **budget value** `b(v_i, v_j)` (e.g. travel
//! distance). This crate provides that substrate:
//!
//! * [`Vocab`] — interned keyword vocabulary,
//! * [`GraphBuilder`] / [`Graph`] — validated CSR adjacency in both
//!   directions, with per-node keyword sets and optional geo positions,
//! * [`QueryKeywords`] — a query-local keyword→bit mapping so that search
//!   labels can track covered keywords as a `u32` bitmask,
//! * [`fixtures`] — the reverse-engineered Figure-1 example graph used as a
//!   golden test fixture across the workspace.
//!
//! # Example
//!
//! ```
//! use kor_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new();
//! let cafe = b.add_node(["cafe"]);
//! let pub_ = b.add_node(["pub"]);
//! b.add_edge(cafe, pub_, 1.5, 0.3).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.out_edges(cafe).count(), 1);
//! assert_eq!(g.vocab().get("pub"), Some(g.keywords(NodeId(1)).as_slice()[0]));
//! ```

#![deny(missing_docs)]

mod builder;
mod error;
mod graph;
mod ids;
mod keyword;
mod mutate;
mod query;
mod route;
mod stats;

pub mod fixtures;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{CsrView, EdgeRef, Graph};
pub use ids::{EdgeId, KeywordId, NodeId};
pub use keyword::{KeywordSet, Vocab};
pub use mutate::{EdgeMutation, MutationCodecError, MutationError, MutationKind};
pub use query::{
    subsets_of, supersets_of, QueryKeywords, QueryKeywordsError, SubsetIter, SupersetIter,
    MAX_QUERY_KEYWORDS,
};
pub use route::{Route, RouteError};
pub use stats::GraphStats;
