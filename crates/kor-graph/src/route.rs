//! Routes (paths through the graph) and their scores.

use std::fmt;

use crate::graph::Graph;
use crate::ids::{KeywordId, NodeId};
use crate::keyword::KeywordSet;

/// Errors when evaluating a route against a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The route has no nodes.
    Empty,
    /// A node id is out of range for the graph.
    UnknownNode(NodeId),
    /// Two consecutive route nodes are not connected by a directed edge.
    MissingEdge {
        /// Step source.
        from: NodeId,
        /// Step target.
        to: NodeId,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Empty => write!(f, "route has no nodes"),
            RouteError::UnknownNode(v) => write!(f, "route refers to unknown node {v}"),
            RouteError::MissingEdge { from, to } => {
                write!(f, "no edge {from}->{to} in the graph")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A route `R = ⟨v_0, v_1, …, v_n⟩` (Definition 2).
///
/// Routes need not be simple: the paper explicitly notes that restricting
/// the search to simple paths is insufficient for KOR, so nodes may repeat.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Route {
    nodes: Vec<NodeId>,
}

impl Route {
    /// Wraps a node sequence as a route (no validation; use
    /// [`Route::scores`] or [`Route::validate`] against a graph).
    pub fn new(nodes: Vec<NodeId>) -> Self {
        Self { nodes }
    }

    /// A route that starts and ends at `v` without moving.
    pub fn trivial(v: NodeId) -> Self {
        Self { nodes: vec![v] }
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes (edges + 1 for non-empty routes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the route has no nodes at all (invalid).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges traversed.
    pub fn edge_count(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// First node, if any.
    pub fn source(&self) -> Option<NodeId> {
        self.nodes.first().copied()
    }

    /// Last node, if any.
    pub fn target(&self) -> Option<NodeId> {
        self.nodes.last().copied()
    }

    /// Checks every consecutive pair is a graph edge.
    pub fn validate(&self, g: &Graph) -> Result<(), RouteError> {
        self.scores(g).map(|_| ())
    }

    /// Computes `(OS(R), BS(R))` per Definition 3: the sums of edge
    /// objective and budget values along the route.
    pub fn scores(&self, g: &Graph) -> Result<(f64, f64), RouteError> {
        if self.nodes.is_empty() {
            return Err(RouteError::Empty);
        }
        for &v in &self.nodes {
            if !g.contains(v) {
                return Err(RouteError::UnknownNode(v));
            }
        }
        let mut os = 0.0;
        let mut bs = 0.0;
        for w in self.nodes.windows(2) {
            let (from, to) = (w[0], w[1]);
            let e = g
                .edge_between(from, to)
                .ok_or(RouteError::MissingEdge { from, to })?;
            os += e.objective;
            bs += e.budget;
        }
        Ok((os, bs))
    }

    /// Objective score `OS(R)`.
    pub fn objective_score(&self, g: &Graph) -> Result<f64, RouteError> {
        self.scores(g).map(|(os, _)| os)
    }

    /// Budget score `BS(R)`.
    pub fn budget_score(&self, g: &Graph) -> Result<f64, RouteError> {
        self.scores(g).map(|(_, bs)| bs)
    }

    /// Union of keywords over all route nodes, `⋃_{v∈R} v.ψ`.
    pub fn covered_keywords(&self, g: &Graph) -> KeywordSet {
        self.nodes
            .iter()
            .flat_map(|&v| g.keywords(v).iter())
            .collect()
    }

    /// Whether the route covers every keyword in `required`.
    pub fn covers(&self, g: &Graph, required: &[KeywordId]) -> bool {
        let covered = self.covered_keywords(g);
        required.iter().all(|&t| covered.contains(t))
    }

    /// Appends another route that starts where this one ends, without
    /// duplicating the junction node.
    ///
    /// # Panics
    ///
    /// Panics if the junction nodes disagree.
    pub fn extend_with(&mut self, suffix: &Route) {
        if suffix.nodes.is_empty() {
            return;
        }
        match self.nodes.last() {
            None => self.nodes.extend_from_slice(&suffix.nodes),
            Some(&last) => {
                assert_eq!(
                    last, suffix.nodes[0],
                    "cannot join routes: {last} != {}",
                    suffix.nodes[0]
                );
                self.nodes.extend_from_slice(&suffix.nodes[1..]);
            }
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, v) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟩")
    }
}

impl From<Vec<NodeId>> for Route {
    fn from(nodes: Vec<NodeId>) -> Self {
        Route::new(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn line_graph() -> Graph {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        let v2 = b.add_node(["c"]);
        b.add_edge(v0, v1, 1.0, 10.0).unwrap();
        b.add_edge(v1, v2, 2.0, 20.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn scores_sum_edges() {
        let g = line_graph();
        let r = Route::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(r.scores(&g).unwrap(), (3.0, 30.0));
        assert_eq!(r.objective_score(&g).unwrap(), 3.0);
        assert_eq!(r.budget_score(&g).unwrap(), 30.0);
    }

    #[test]
    fn trivial_route_scores_zero() {
        let g = line_graph();
        let r = Route::trivial(NodeId(1));
        assert_eq!(r.scores(&g).unwrap(), (0.0, 0.0));
        assert_eq!(r.edge_count(), 0);
        assert_eq!(r.source(), Some(NodeId(1)));
        assert_eq!(r.target(), Some(NodeId(1)));
    }

    #[test]
    fn missing_edge_detected() {
        let g = line_graph();
        let r = Route::new(vec![NodeId(2), NodeId(0)]);
        assert_eq!(
            r.scores(&g),
            Err(RouteError::MissingEdge {
                from: NodeId(2),
                to: NodeId(0)
            })
        );
    }

    #[test]
    fn unknown_node_detected() {
        let g = line_graph();
        let r = Route::new(vec![NodeId(0), NodeId(7)]);
        assert_eq!(r.scores(&g), Err(RouteError::UnknownNode(NodeId(7))));
    }

    #[test]
    fn empty_route_is_error() {
        let g = line_graph();
        assert_eq!(Route::new(vec![]).scores(&g), Err(RouteError::Empty));
        assert!(Route::new(vec![]).is_empty());
    }

    #[test]
    fn covered_keywords_union() {
        let g = line_graph();
        let r = Route::new(vec![NodeId(0), NodeId(1)]);
        let a = g.vocab().get("a").unwrap();
        let b = g.vocab().get("b").unwrap();
        let c = g.vocab().get("c").unwrap();
        assert!(r.covers(&g, &[a, b]));
        assert!(!r.covers(&g, &[a, c]));
        assert_eq!(r.covered_keywords(&g).len(), 2);
    }

    #[test]
    fn extend_with_joins_at_junction() {
        let mut r = Route::new(vec![NodeId(0), NodeId(1)]);
        r.extend_with(&Route::new(vec![NodeId(1), NodeId(2)]));
        assert_eq!(r.nodes(), &[NodeId(0), NodeId(1), NodeId(2)]);
        // extending with empty is a no-op
        r.extend_with(&Route::new(vec![]));
        assert_eq!(r.len(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot join")]
    fn extend_with_mismatched_junction_panics() {
        let mut r = Route::new(vec![NodeId(0)]);
        r.extend_with(&Route::new(vec![NodeId(1), NodeId(2)]));
    }

    #[test]
    fn display_uses_paper_notation() {
        let r = Route::new(vec![NodeId(0), NodeId(3), NodeId(5)]);
        assert_eq!(r.to_string(), "⟨v0, v3, v5⟩");
    }

    #[test]
    fn non_simple_routes_allowed() {
        let mut b = GraphBuilder::new();
        let v0 = b.add_node(["a"]);
        let v1 = b.add_node(["b"]);
        b.add_edge(v0, v1, 1.0, 1.0).unwrap();
        b.add_edge(v1, v0, 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let r = Route::new(vec![v0, v1, v0, v1]);
        assert_eq!(r.scores(&g).unwrap(), (3.0, 3.0));
    }
}
