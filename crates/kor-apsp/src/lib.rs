//! Pre-processing structures for keyword-aware optimal route search.
//!
//! The paper's §3.1 pre-computes, for every node pair `(v_i, v_j)`, two
//! paths: `τ_{i,j}` with the smallest **objective** score and `σ_{i,j}`
//! with the smallest **budget** score (only their scores are consumed by
//! the algorithms). This crate provides that information in two forms:
//!
//! * [`DenseApsp`] — the faithful all-pairs matrices, computed either with
//!   Floyd–Warshall (as in the paper) or with repeated Dijkstra, including
//!   next-hop matrices for path reconstruction;
//! * lazy per-query structures that deliver exactly the values the search
//!   algorithms read, without `O(|V|²)` space:
//!   [`QueryContext`] (to-target `τ`/`σ` trees), [`KeywordReach`]
//!   (per-query-keyword nearest-node trees for Optimization Strategy 1),
//!   and [`CachedPairCosts`] (memoized forward trees for the greedy
//!   algorithm).
//!
//! Both forms agree exactly; `DenseApsp` doubles as the test oracle for
//! the lazy structures. [`PartitionedApsp`] additionally implements the
//! paper's §6 future-work scheme: partition the graph, pre-process within
//! clusters, and keep an all-pairs table only over border nodes.

mod dense;
mod keyword_reach;
mod landmark;
mod pair;
mod partition;
mod query;
mod tree;

pub use dense::DenseApsp;
pub use keyword_reach::KeywordReach;
pub use landmark::{Landmarks, TargetBounds, DEFAULT_LANDMARKS};
pub use pair::{CachedPairCosts, PairCosts, PathCost};
pub use partition::{partition, PartitionConfig, PartitionedApsp};
pub use query::QueryContext;
pub use tree::{backward_tree, forward_tree, Metric, SptNode, Tree, NO_NODE};
