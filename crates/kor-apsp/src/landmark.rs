//! Landmark (ALT) lower bounds, built once per dataset.
//!
//! The τ/σ trees of [`crate::QueryContext`] give *exact* remaining
//! distances to one target — but they cost two Dijkstras per distinct
//! target. Landmarks are the classic ALT complement: pick `K` nodes once
//! per dataset, precompute every node's distance to and from each of
//! them, and the triangle inequality turns those vectors into an
//! admissible lower bound on `d(v, t)` for **any** pair:
//!
//! ```text
//! d(v, t) ≥ d(v, ℓ) − d(t, ℓ)      (both reach the landmark)
//! d(v, t) ≥ d(ℓ, t) − d(ℓ, v)      (the landmark reaches both)
//! ```
//!
//! Landmarks are seeded from partition boundaries (via
//! [`crate::partition`]): boundary nodes sit on the cuts most shortest
//! paths must cross, which is where triangle bounds are tightest. The
//! distance vectors are node-major (`vec[v * k + i]`) so one node's `K`
//! distances share a cache line at query time.
//!
//! Because the engines already hold the exact to-target distances, the
//! combined prune bound `max(exact, ALT)` equals the exact bound on every
//! node — which is precisely what keeps cached and cold searches
//! bit-identical. The ALT layer's value is its *pair-independence*: the
//! vectors are built once and answer for every `(v, t)`, so any future
//! pruning site that lacks a per-target tree (cross-shard planning,
//! speculative batch ordering) gets an admissible bound for free. The
//! admissibility property (`bound ≤ exact`) is pinned by the property
//! tests in `kor-core`.

use kor_graph::{Graph, NodeId};

use crate::partition;
use crate::tree::{backward_tree, forward_tree, Metric, Tree};

/// Default number of landmarks per dataset.
pub const DEFAULT_LANDMARKS: usize = 4;

/// Per-dataset landmark distance vectors (both metrics, both directions).
#[derive(Debug, Clone)]
pub struct Landmarks {
    k: usize,
    nodes: Vec<NodeId>,
    /// `d(ℓ_i → v)` objective metric, node-major: `[v * k + i]`.
    from_lm_obj: Vec<f64>,
    /// `d(ℓ_i → v)` budget metric.
    from_lm_bud: Vec<f64>,
    /// `d(v → ℓ_i)` objective metric.
    to_lm_obj: Vec<f64>,
    /// `d(v → ℓ_i)` budget metric.
    to_lm_bud: Vec<f64>,
}

impl Landmarks {
    /// Builds landmark vectors for `graph` with at most `k` landmarks
    /// (4 Dijkstras each). Deterministic for a given graph.
    pub fn build(graph: &Graph, k: usize) -> Self {
        let nodes = select_landmarks(graph, k);
        let k = nodes.len();
        let n = graph.node_count();
        let mut lm = Self {
            k,
            nodes: nodes.clone(),
            from_lm_obj: vec![f64::INFINITY; n * k],
            from_lm_bud: vec![f64::INFINITY; n * k],
            to_lm_obj: vec![f64::INFINITY; n * k],
            to_lm_bud: vec![f64::INFINITY; n * k],
        };
        for (i, &l) in nodes.iter().enumerate() {
            let seeds = [(l, 0.0, 0.0)];
            lm.fill(i, &forward_tree(graph, Metric::Objective, l), |s| {
                &mut s.from_lm_obj
            });
            lm.fill(i, &forward_tree(graph, Metric::Budget, l), |s| {
                &mut s.from_lm_bud
            });
            lm.fill(i, &backward_tree(graph, Metric::Objective, &seeds), |s| {
                &mut s.to_lm_obj
            });
            lm.fill(i, &backward_tree(graph, Metric::Budget, &seeds), |s| {
                &mut s.to_lm_bud
            });
        }
        lm
    }

    fn fill(&mut self, i: usize, tree: &Tree, select: impl Fn(&mut Self) -> &mut Vec<f64>) {
        let k = self.k;
        let n = select(self).len() / k;
        for v in 0..n {
            let d = match tree.metric() {
                Metric::Objective => tree.objective(NodeId(v as u32)),
                Metric::Budget => tree.budget(NodeId(v as u32)),
            };
            select(self)[v * k + i] = d;
        }
    }

    /// Number of landmarks actually selected.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether no landmark could be selected (empty graph).
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }

    /// The selected landmark nodes.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The per-target slice of the vectors, fixed once per query.
    pub fn for_target(&self, target: NodeId) -> TargetBounds {
        let base = target.index() * self.k;
        TargetBounds {
            k: self.k,
            to_lm_obj_t: self.to_lm_obj[base..base + self.k].to_vec(),
            to_lm_bud_t: self.to_lm_bud[base..base + self.k].to_vec(),
            from_lm_obj_t: self.from_lm_obj[base..base + self.k].to_vec(),
            from_lm_bud_t: self.from_lm_bud[base..base + self.k].to_vec(),
        }
    }

    #[inline]
    fn slice(&self, vecs: &[f64], v: NodeId) -> std::ops::Range<usize> {
        debug_assert_eq!(vecs.len() % self.k.max(1), 0);
        let base = v.index() * self.k;
        base..base + self.k
    }

    /// `max_i` triangle lower bound on the **objective** distance
    /// `d(v → t)`, given `t`'s cached vector slice. Always admissible;
    /// `0` when no landmark constrains the pair (including unreachable /
    /// infinite cases: `f64::max` ignores the NaN from `inf − inf`).
    #[inline]
    pub fn objective_bound(&self, v: NodeId, t: &TargetBounds) -> f64 {
        let r = self.slice(&self.to_lm_obj, v);
        bound_from(
            &self.to_lm_obj[r.clone()],
            &t.to_lm_obj_t,
            &self.from_lm_obj[r],
            &t.from_lm_obj_t,
        )
    }

    /// `max_i` triangle lower bound on the **budget** distance
    /// `d(v → t)`. Same admissibility guarantees as
    /// [`Self::objective_bound`].
    #[inline]
    pub fn budget_bound(&self, v: NodeId, t: &TargetBounds) -> f64 {
        let r = self.slice(&self.to_lm_bud, v);
        bound_from(
            &self.to_lm_bud[r.clone()],
            &t.to_lm_bud_t,
            &self.from_lm_bud[r],
            &t.from_lm_bud_t,
        )
    }
}

/// The target-side landmark distances of one query, copied out once so
/// the per-label bound needs no second strided load.
#[derive(Debug, Clone)]
pub struct TargetBounds {
    k: usize,
    to_lm_obj_t: Vec<f64>,
    to_lm_bud_t: Vec<f64>,
    from_lm_obj_t: Vec<f64>,
    from_lm_bud_t: Vec<f64>,
}

impl TargetBounds {
    /// Number of landmarks backing these bounds.
    pub fn len(&self) -> usize {
        self.k
    }

    /// Whether the bound is vacuous (no landmarks).
    pub fn is_empty(&self) -> bool {
        self.k == 0
    }
}

/// Relative safety margin shaved off every finite triangle bound.
///
/// `d(v→ℓ)` and `d(t→ℓ)` come from *different* Dijkstra runs summing
/// edge weights in different orders, so their difference can exceed the
/// true `d(v→t)` by a few ulps — enough to break bit-level admissibility
/// against the exact τ/σ trees. Summation error over a path of `L`
/// edges is below `L · 2⁻⁵² · d`, so for any real path length a margin
/// of `10⁻⁹ · d` dominates it by orders of magnitude while costing a
/// negligible sliver of bound quality. Infinite bounds carry no
/// rounding error (they are reachability facts) and pass through
/// unscaled (`∞ × (1 − 10⁻⁹) = ∞`).
const FP_MARGIN: f64 = 1e-9;

/// `(1 − FP_MARGIN) · max_i max(to_v[i] − to_t[i], from_t[i] − from_v[i], 0)`.
///
/// `inf − inf = NaN` and `inf − finite = inf` can both occur; the first
/// is skipped (`f64::max` returns the non-NaN argument), and the second
/// is genuinely admissible — `d(v→ℓ)` infinite with `d(t→ℓ)` finite
/// means `v` cannot reach `ℓ` while `t` can, so `v` cannot reach `t`
/// either and `d(v→t) = ∞`.
#[inline]
fn bound_from(to_v: &[f64], to_t: &[f64], from_v: &[f64], from_t: &[f64]) -> f64 {
    let mut best = 0.0f64;
    for i in 0..to_v.len() {
        best = best.max(to_v[i] - to_t[i]).max(from_t[i] - from_v[i]);
    }
    best * (1.0 - FP_MARGIN)
}

/// Picks up to `k` landmark nodes, one per partition cluster, preferring
/// boundary nodes (an out-edge crossing into another cluster) and
/// falling back to the lowest-id node of the cluster. Deterministic.
fn select_landmarks(graph: &Graph, k: usize) -> Vec<NodeId> {
    let n = graph.node_count();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let assignment = partition(graph, k.min(n));
    let clusters = assignment
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m as usize + 1);
    // Per cluster: (boundary pick, any pick) — both lowest-id.
    let mut boundary: Vec<Option<NodeId>> = vec![None; clusters];
    let mut any: Vec<Option<NodeId>> = vec![None; clusters];
    for v in graph.nodes() {
        let c = assignment[v.index()] as usize;
        if any[c].is_none() {
            any[c] = Some(v);
        }
        if boundary[c].is_none()
            && graph
                .out_edges(v)
                .any(|e| assignment[e.node.index()] != assignment[v.index()])
        {
            boundary[c] = Some(v);
        }
    }
    (0..clusters)
        .filter_map(|c| boundary[c].or(any[c]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryContext;
    use kor_graph::fixtures::figure1;

    #[test]
    fn bounds_are_admissible_on_figure1() {
        let g = figure1();
        let lm = Landmarks::build(&g, DEFAULT_LANDMARKS);
        assert!(!lm.is_empty());
        for target in g.nodes() {
            let ctx = QueryContext::new(&g, target);
            let tb = lm.for_target(target);
            for node in g.nodes() {
                let ob = lm.objective_bound(node, &tb);
                let bb = lm.budget_bound(node, &tb);
                assert!(ob >= 0.0 && bb >= 0.0, "bounds are non-negative");
                // os_tau is the exact min-objective distance v → t;
                // bs_sigma the exact min-budget distance. ALT ≤ exact.
                assert!(
                    ob <= ctx.os_tau(node),
                    "objective bound {ob} > exact {} for {node:?} → {target:?}",
                    ctx.os_tau(node)
                );
                assert!(
                    bb <= ctx.bs_sigma(node),
                    "budget bound {bb} > exact {} for {node:?} → {target:?}",
                    ctx.bs_sigma(node)
                );
            }
        }
    }

    #[test]
    fn bound_is_tight_at_a_landmark() {
        let g = figure1();
        let lm = Landmarks::build(&g, 8);
        // For t = ℓ the backward-distance term is d(v→ℓ) − 0 = d(v→ℓ):
        // the bound reaches the exact distance up to the FP_MARGIN
        // shave (and, per admissibility, never beyond it).
        let ctx_target = lm.nodes()[0];
        let ctx = QueryContext::new(&g, ctx_target);
        let tb = lm.for_target(ctx_target);
        for node in g.nodes() {
            let exact = ctx.os_tau(node);
            if exact.is_finite() {
                let bound = lm.objective_bound(node, &tb);
                assert!(bound <= exact);
                assert!(bound >= exact * (1.0 - 2.0 * FP_MARGIN));
            }
        }
    }

    #[test]
    fn unreachable_pairs_get_infinite_bound() {
        let g = figure1();
        let lm = Landmarks::build(&g, 8);
        // v1 has no outgoing edges: d(v1 → anything) = ∞. If some
        // landmark is reachable from the target but not from v1, the
        // bound correctly explodes; it must never be NaN.
        for target in g.nodes() {
            let tb = lm.for_target(target);
            for node in g.nodes() {
                assert!(!lm.objective_bound(node, &tb).is_nan());
                assert!(!lm.budget_bound(node, &tb).is_nan());
            }
        }
    }

    #[test]
    fn empty_graph_yields_no_landmarks() {
        use kor_graph::GraphBuilder;
        let g = GraphBuilder::new().build().unwrap();
        let lm = Landmarks::build(&g, 4);
        assert!(lm.is_empty());
        assert_eq!(lm.len(), 0);
    }

    #[test]
    fn deterministic_selection() {
        let g = figure1();
        let a = Landmarks::build(&g, 4);
        let b = Landmarks::build(&g, 4);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.to_lm_obj.len(), b.to_lm_obj.len());
        for (x, y) in a.to_lm_obj.iter().zip(&b.to_lm_obj) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
