//! Per-query-keyword reachability trees (Optimization Strategy 1 support).
//!
//! Optimization Strategy 1 (§3.2) jumps from the node of the label being
//! processed to a node `v_j` holding an uncovered query keyword with the
//! smallest `BS(σ_{i,j})`. For each query keyword we therefore build one
//! multi-seed backward Dijkstra tree (budget metric) rooted at all nodes
//! containing that keyword: it answers "nearest keyword node by budget"
//! for *every* `v_i` at once and reconstructs the actual `σ_{i,j}` path so
//! the jump label can be extended edge-by-edge with exact scores and
//! coverage.

use std::sync::Arc;

use kor_graph::{Graph, NodeId, QueryKeywords};

use crate::tree::{backward_tree, Metric, Tree};

/// One budget-metric multi-seed tree per query keyword bit.
///
/// Trees are held behind `Arc` so a pre-processing cache can share one
/// build across every query mentioning the keyword: each tree depends
/// only on `(graph, keyword)` — never on the query's source, target, or
/// budget.
#[derive(Debug, Clone)]
pub struct KeywordReach {
    trees: Vec<Arc<Tree>>,
}

impl KeywordReach {
    /// Builds the trees. `postings[bit]` must list the nodes containing
    /// the query keyword at `bit` (as produced by an inverted index).
    pub fn new(graph: &Graph, query: &QueryKeywords, postings: &[Vec<NodeId>]) -> Self {
        assert_eq!(
            postings.len(),
            query.len(),
            "one posting list per query keyword"
        );
        let trees = postings
            .iter()
            .map(|nodes| Arc::new(Self::build_tree(graph, nodes)))
            .collect();
        Self { trees }
    }

    /// Builds the single-keyword reach tree for the given posting list —
    /// the unit a cache memoizes per keyword.
    pub fn build_tree(graph: &Graph, postings: &[NodeId]) -> Tree {
        let seeds: Vec<(NodeId, f64, f64)> = postings.iter().map(|&n| (n, 0.0, 0.0)).collect();
        backward_tree(graph, Metric::Budget, &seeds)
    }

    /// Assembles a reach from already-built (possibly cached) per-keyword
    /// trees, in query-bit order. Equivalent to [`Self::new`] when each
    /// tree came from [`Self::build_tree`] on the matching postings.
    pub fn from_trees(trees: Vec<Arc<Tree>>) -> Self {
        Self { trees }
    }

    /// Number of query keywords covered.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether there are no query keywords.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// `min_j BS(σ_{i,j})` over nodes `j` containing the keyword at `bit`,
    /// together with the minimizing node. `None` if no such node is
    /// forward-reachable from `i`.
    pub fn nearest(&self, bit: u32, i: NodeId) -> Option<(f64, NodeId)> {
        let tree = &self.trees[bit as usize];
        let terminal = tree.terminal(i)?;
        Some((tree.budget(i), terminal))
    }

    /// The `σ_{i,j}` path from `i` to the nearest keyword node (inclusive).
    pub fn path_to_nearest(&self, bit: u32, i: NodeId) -> Option<Vec<NodeId>> {
        self.trees[bit as usize].walk_to_seed(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, t, v};

    fn postings_for(g: &Graph, q: &QueryKeywords) -> Vec<Vec<NodeId>> {
        q.ids()
            .iter()
            .map(|&kw| g.nodes().filter(|&n| g.node_has_keyword(n, kw)).collect())
            .collect()
    }

    #[test]
    fn nearest_keyword_node_by_budget() {
        let g = figure1();
        let q = QueryKeywords::new(vec![t(1), t(2)]).unwrap();
        let reach = KeywordReach::new(&g, &q, &postings_for(&g, &q));
        assert_eq!(reach.len(), 2);
        // t1 lives at v3 and v6. From v2: v6 via budget 1 beats v3 via 2.
        let bit_t1 = q.bit(t(1)).unwrap();
        assert_eq!(reach.nearest(bit_t1, v(2)), Some((1.0, v(6))));
        assert_eq!(
            reach.path_to_nearest(bit_t1, v(2)).unwrap(),
            vec![v(2), v(6)]
        );
        // From v0: v3 via budget 2.
        assert_eq!(reach.nearest(bit_t1, v(0)), Some((2.0, v(3))));
        // A node holding the keyword is its own nearest at distance 0.
        assert_eq!(reach.nearest(bit_t1, v(3)), Some((0.0, v(3))));
    }

    #[test]
    fn unreachable_keyword_is_none() {
        let g = figure1();
        // t5 lives only at v1, which has no outgoing edges; v4's only
        // forward continuation is v7, so no t5 node is reachable from v4.
        let q = QueryKeywords::new(vec![t(5)]).unwrap();
        let reach = KeywordReach::new(&g, &q, &postings_for(&g, &q));
        assert_eq!(reach.nearest(0, v(4)), None);
        assert_eq!(reach.path_to_nearest(0, v(4)), None);
        // v1 itself holds t5.
        assert_eq!(reach.nearest(0, v(1)), Some((0.0, v(1))));
        // From v0, the cheapest budget path to v1 is the direct edge (1).
        assert_eq!(reach.nearest(0, v(0)), Some((1.0, v(1))));
    }

    #[test]
    fn empty_postings_reach_nothing() {
        let g = figure1();
        let q = QueryKeywords::new(vec![t(4)]).unwrap();
        let reach = KeywordReach::new(&g, &q, &[vec![]]);
        for n in g.nodes() {
            assert_eq!(reach.nearest(0, n), None);
        }
    }

    #[test]
    #[should_panic(expected = "one posting list per query keyword")]
    fn posting_arity_mismatch_panics() {
        let g = figure1();
        let q = QueryKeywords::new(vec![t(1), t(2)]).unwrap();
        let _ = KeywordReach::new(&g, &q, &[vec![]]);
    }
}
