//! Lexicographic single-source / multi-seed Dijkstra trees.
//!
//! Every pre-processing value the KOR algorithms consume is a shortest
//! path under one of two lexicographic orders:
//!
//! * [`Metric::Objective`] — minimize objective score, tie-break on budget
//!   (yields `τ` paths: `OS(τ)` primary, `BS(τ)` secondary);
//! * [`Metric::Budget`] — minimize budget score, tie-break on objective
//!   (yields `σ` paths).
//!
//! Trees run either *backward* (costs **to** a seed set, following
//! forward edges — used for to-target bounds and keyword reachability) or
//! *forward* (costs **from** a single source — used by the greedy
//! algorithm). Seeds may carry initial potentials, which turns the tree
//! into a "min over seeds of (path cost + potential)" oracle as needed by
//! Optimization Strategy 2.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use kor_graph::{Graph, NodeId};

/// Sentinel for "no next hop" (seed nodes / unreachable nodes).
pub const NO_NODE: u32 = u32::MAX;

/// Which edge attribute the tree minimizes (the other tie-breaks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Minimize objective, tie-break budget (`τ` paths).
    Objective,
    /// Minimize budget, tie-break objective (`σ` paths).
    Budget,
}

impl Metric {
    #[inline]
    fn key(self, objective: f64, budget: f64) -> (f64, f64) {
        match self {
            Metric::Objective => (objective, budget),
            Metric::Budget => (budget, objective),
        }
    }
}

/// Per-node result of a tree computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SptNode {
    /// Accumulated objective score of the chosen path (`+inf` if
    /// unreachable).
    pub objective: f64,
    /// Accumulated budget score of the chosen path (`+inf` if
    /// unreachable).
    pub budget: f64,
    /// Next hop toward the seed set (backward trees) or predecessor on the
    /// path from the source (forward trees); [`NO_NODE`] at seeds, the
    /// source, and unreachable nodes.
    pub link: u32,
}

impl SptNode {
    const UNREACHED: SptNode = SptNode {
        objective: f64::INFINITY,
        budget: f64::INFINITY,
        link: NO_NODE,
    };

    /// Whether the node can reach (or be reached from) the seed set.
    #[inline]
    pub fn is_reachable(&self) -> bool {
        self.objective.is_finite()
    }
}

/// A computed shortest-path tree (forward or backward).
#[derive(Debug, Clone)]
pub struct Tree {
    metric: Metric,
    nodes: Vec<SptNode>,
}

impl Tree {
    /// The minimized metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Per-node costs and link.
    #[inline]
    pub fn node(&self, v: NodeId) -> SptNode {
        self.nodes[v.index()]
    }

    /// Objective score of the chosen path for `v` (`+inf` if unreachable).
    #[inline]
    pub fn objective(&self, v: NodeId) -> f64 {
        self.nodes[v.index()].objective
    }

    /// Budget score of the chosen path for `v` (`+inf` if unreachable).
    #[inline]
    pub fn budget(&self, v: NodeId) -> f64 {
        self.nodes[v.index()].budget
    }

    /// Whether `v` is connected to the seed set / source.
    #[inline]
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.nodes[v.index()].is_reachable()
    }

    /// For a **backward** tree: the node sequence `v, …, seed` following
    /// forward edges. `None` if unreachable.
    pub fn walk_to_seed(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while self.nodes[cur.index()].link != NO_NODE {
            cur = NodeId(self.nodes[cur.index()].link);
            path.push(cur);
        }
        Some(path)
    }

    /// For a **forward** tree: the node sequence `source, …, v`. `None` if
    /// unreachable.
    pub fn walk_from_source(&self, v: NodeId) -> Option<Vec<NodeId>> {
        let mut path = self.walk_to_seed(v)?;
        path.reverse();
        Some(path)
    }

    /// The seed (terminal) node of `v`'s backward path — for multi-seed
    /// trees this identifies the nearest seed. `None` if unreachable.
    pub fn terminal(&self, v: NodeId) -> Option<NodeId> {
        if !self.is_reachable(v) {
            return None;
        }
        let mut cur = v;
        while self.nodes[cur.index()].link != NO_NODE {
            cur = NodeId(self.nodes[cur.index()].link);
        }
        Some(cur)
    }
}

#[derive(PartialEq)]
struct HeapItem {
    key: (f64, f64),
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need smallest key first.
        // Keys are finite (infinities never enter the heap), but total_cmp
        // keeps this robust anyway. Node id breaks ties deterministically.
        other
            .key
            .0
            .total_cmp(&self.key.0)
            .then_with(|| other.key.1.total_cmp(&self.key.1))
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

fn run_dijkstra<E>(
    n: usize,
    metric: Metric,
    seeds: &[(NodeId, f64, f64)],
    mut edges_into: impl FnMut(NodeId) -> E,
) -> Tree
where
    E: Iterator<Item = (NodeId, f64, f64)>,
{
    let mut nodes = vec![SptNode::UNREACHED; n];
    let mut heap = BinaryHeap::new();
    for &(seed, pot_obj, pot_bud) in seeds {
        let cand = SptNode {
            objective: pot_obj,
            budget: pot_bud,
            link: NO_NODE,
        };
        let entry = &mut nodes[seed.index()];
        if metric.key(cand.objective, cand.budget) < metric.key(entry.objective, entry.budget) {
            *entry = cand;
            heap.push(HeapItem {
                key: metric.key(cand.objective, cand.budget),
                node: seed,
            });
        }
    }
    while let Some(HeapItem { key, node }) = heap.pop() {
        let cur = nodes[node.index()];
        if key > metric.key(cur.objective, cur.budget) {
            continue; // stale entry
        }
        for (other, eo, eb) in edges_into(node) {
            let cand_obj = cur.objective + eo;
            let cand_bud = cur.budget + eb;
            let entry = &mut nodes[other.index()];
            if metric.key(cand_obj, cand_bud) < metric.key(entry.objective, entry.budget) {
                *entry = SptNode {
                    objective: cand_obj,
                    budget: cand_bud,
                    link: node.0,
                };
                heap.push(HeapItem {
                    key: metric.key(cand_obj, cand_bud),
                    node: other,
                });
            }
        }
    }
    Tree { metric, nodes }
}

/// Computes a backward tree: for every node `v`, the lexicographically
/// minimal cost of a forward path from `v` into the seed set, where each
/// seed contributes an initial potential `(objective, budget)`.
///
/// With a single seed `(t, 0, 0)` and [`Metric::Objective`] this yields
/// `OS(τ_{v,t})` / `BS(τ_{v,t})` for all `v` — the to-target bounds used
/// throughout Algorithms 1 and 2.
pub fn backward_tree(graph: &Graph, metric: Metric, seeds: &[(NodeId, f64, f64)]) -> Tree {
    run_dijkstra(graph.node_count(), metric, seeds, |v| {
        graph.in_edges(v).map(|e| (e.node, e.objective, e.budget))
    })
}

/// Computes a forward tree: costs of paths **from** `source` to every
/// node. Used by the greedy algorithm's pairwise lookups.
pub fn forward_tree(graph: &Graph, metric: Metric, source: NodeId) -> Tree {
    run_dijkstra(graph.node_count(), metric, &[(source, 0.0, 0.0)], |v| {
        graph.out_edges(v).map(|e| (e.node, e.objective, e.budget))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, v};
    use kor_graph::GraphBuilder;

    #[test]
    fn tau_to_target_matches_paper() {
        // §3.1: τ(0,7) has OS 4, BS 7; Example 2: OS(τ3,7)=2 with BS 5,
        // OS(τ5,7)=3 with BS 4.
        let g = figure1();
        let tau = backward_tree(&g, Metric::Objective, &[(v(7), 0.0, 0.0)]);
        assert_eq!(tau.objective(v(0)), 4.0);
        assert_eq!(tau.budget(v(0)), 7.0);
        assert_eq!(tau.objective(v(3)), 2.0);
        assert_eq!(tau.budget(v(3)), 5.0);
        assert_eq!(tau.objective(v(5)), 3.0);
        assert_eq!(tau.budget(v(5)), 4.0);
        assert_eq!(
            tau.walk_to_seed(v(0)).unwrap(),
            vec![v(0), v(3), v(4), v(7)]
        );
    }

    #[test]
    fn sigma_to_target_matches_paper() {
        // §3.1: σ(0,7) has OS 9, BS 5; Example 2: BS(σ6,7) = 7.
        let g = figure1();
        let sigma = backward_tree(&g, Metric::Budget, &[(v(7), 0.0, 0.0)]);
        assert_eq!(sigma.budget(v(0)), 5.0);
        assert_eq!(sigma.objective(v(0)), 9.0);
        assert_eq!(sigma.budget(v(6)), 7.0);
        assert_eq!(
            sigma.walk_to_seed(v(0)).unwrap(),
            vec![v(0), v(3), v(5), v(7)]
        );
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let g = figure1();
        // v1 (keyword t5) has no outgoing edges, so it cannot reach v7.
        let tau = backward_tree(&g, Metric::Objective, &[(v(7), 0.0, 0.0)]);
        assert!(!tau.is_reachable(v(1)));
        assert!(tau.objective(v(1)).is_infinite());
        assert_eq!(tau.walk_to_seed(v(1)), None);
        assert_eq!(tau.terminal(v(1)), None);
    }

    #[test]
    fn seed_has_zero_cost_and_is_own_terminal() {
        let g = figure1();
        let tau = backward_tree(&g, Metric::Objective, &[(v(7), 0.0, 0.0)]);
        assert_eq!(tau.objective(v(7)), 0.0);
        assert_eq!(tau.budget(v(7)), 0.0);
        assert_eq!(tau.terminal(v(7)), Some(v(7)));
        assert_eq!(tau.walk_to_seed(v(7)).unwrap(), vec![v(7)]);
    }

    #[test]
    fn multi_seed_picks_nearest() {
        let g = figure1();
        // Seeds at the two t1 nodes, v3 and v6, minimizing budget: from v2
        // the nearest t1 node by budget is v6 (edge budget 1) not v3 (2).
        let t1_tree = backward_tree(&g, Metric::Budget, &[(v(3), 0.0, 0.0), (v(6), 0.0, 0.0)]);
        assert_eq!(t1_tree.budget(v(2)), 1.0);
        assert_eq!(t1_tree.terminal(v(2)), Some(v(6)));
        assert_eq!(t1_tree.budget(v(0)), 2.0);
        assert_eq!(t1_tree.terminal(v(0)), Some(v(3)));
    }

    #[test]
    fn potentials_shift_the_optimum() {
        let g = figure1();
        // Same seeds, but v6 starts with a potential of 5 budget: now v3
        // wins from v2 (2 < 1+5).
        let tree = backward_tree(&g, Metric::Budget, &[(v(3), 0.0, 0.0), (v(6), 0.0, 5.0)]);
        assert_eq!(tree.budget(v(2)), 2.0);
        assert_eq!(tree.terminal(v(2)), Some(v(3)));
    }

    #[test]
    fn forward_tree_from_source() {
        let g = figure1();
        let from0 = forward_tree(&g, Metric::Objective, v(0));
        assert_eq!(from0.objective(v(7)), 4.0);
        assert_eq!(from0.budget(v(7)), 7.0);
        assert_eq!(
            from0.walk_from_source(v(7)).unwrap(),
            vec![v(0), v(3), v(4), v(7)]
        );
        assert_eq!(from0.objective(v(0)), 0.0);
    }

    #[test]
    fn lexicographic_tie_break_prefers_smaller_secondary() {
        // Two parallel routes with equal objective but different budget:
        // the tree must pick the cheaper-budget one.
        let mut b = GraphBuilder::new();
        let s = b.add_node(["s"]);
        let a = b.add_node(["a"]);
        let c = b.add_node(["c"]);
        let t = b.add_node(["t"]);
        b.add_edge(s, a, 1.0, 10.0).unwrap();
        b.add_edge(a, t, 1.0, 10.0).unwrap();
        b.add_edge(s, c, 1.0, 1.0).unwrap();
        b.add_edge(c, t, 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let tau = backward_tree(&g, Metric::Objective, &[(t, 0.0, 0.0)]);
        assert_eq!(tau.objective(s), 2.0);
        assert_eq!(tau.budget(s), 2.0);
        assert_eq!(tau.walk_to_seed(s).unwrap(), vec![s, c, t]);
    }

    #[test]
    fn empty_seed_set_reaches_nothing() {
        let g = figure1();
        let tree = backward_tree(&g, Metric::Budget, &[]);
        for n in g.nodes() {
            assert!(!tree.is_reachable(n));
        }
    }

    #[test]
    fn metric_accessor() {
        let g = figure1();
        let tree = backward_tree(&g, Metric::Budget, &[(v(7), 0.0, 0.0)]);
        assert_eq!(tree.metric(), Metric::Budget);
    }
}
