//! Pairwise `τ`/`σ` cost lookups.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kor_graph::{Graph, NodeId};

use crate::tree::{forward_tree, Metric, Tree};

/// The two scores of a pre-processed path (`OS`, `BS`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Objective score of the path.
    pub objective: f64,
    /// Budget score of the path.
    pub budget: f64,
}

/// Access to the paper's pre-processing products for arbitrary node pairs:
/// the minimum-objective path `τ_{i,j}` and minimum-budget path `σ_{i,j}`
/// with their `(OS, BS)` scores and, unlike the paper (which discards
/// them), the paths themselves for route materialization.
pub trait PairCosts {
    /// Scores of `τ_{i,j}`, or `None` if `j` is unreachable from `i`.
    fn tau(&self, i: NodeId, j: NodeId) -> Option<PathCost>;
    /// Scores of `σ_{i,j}`, or `None` if unreachable.
    fn sigma(&self, i: NodeId, j: NodeId) -> Option<PathCost>;
    /// Node sequence of `τ_{i,j}` (inclusive), or `None` if unreachable.
    fn tau_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>>;
    /// Node sequence of `σ_{i,j}` (inclusive), or `None` if unreachable.
    fn sigma_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>>;
}

/// Lazy [`PairCosts`] backed by memoized forward Dijkstra trees.
///
/// Each distinct `(source, metric)` pair computes one tree on first use;
/// the greedy algorithm touches only a handful of sources per query, so
/// this avoids any `O(|V|²)` pre-processing while returning exactly the
/// same values as [`crate::DenseApsp`].
///
/// The cache is generic over how it holds the graph: `G` may be a plain
/// `&Graph` (scoped use, as in tests and the batch front end) or an
/// `Arc<Graph>` (long-lived services that must own their dataset). The
/// memo table sits behind a `Mutex`, so a single cache can be shared by
/// any number of threads — a tree computed for one query is reused by
/// every later query regardless of which thread runs it.
pub struct CachedPairCosts<G> {
    graph: G,
    trees: Mutex<HashMap<(NodeId, u8), Arc<Tree>>>,
}

impl<G: AsRef<Graph>> CachedPairCosts<G> {
    /// Creates an empty cache over `graph`.
    pub fn new(graph: G) -> Self {
        Self {
            graph,
            trees: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph.as_ref()
    }

    /// Number of trees computed so far (for instrumentation).
    pub fn cached_tree_count(&self) -> usize {
        self.trees.lock().unwrap().len()
    }

    fn tree(&self, source: NodeId, metric: Metric) -> Arc<Tree> {
        let key = (source, metric as u8);
        let mut guard = self.trees.lock().unwrap();
        guard
            .entry(key)
            .or_insert_with(|| Arc::new(forward_tree(self.graph.as_ref(), metric, source)))
            .clone()
    }
}

impl<G: AsRef<Graph>> PairCosts for CachedPairCosts<G> {
    fn tau(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let t = self.tree(i, Metric::Objective);
        t.is_reachable(j).then(|| PathCost {
            objective: t.objective(j),
            budget: t.budget(j),
        })
    }

    fn sigma(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let t = self.tree(i, Metric::Budget);
        t.is_reachable(j).then(|| PathCost {
            objective: t.objective(j),
            budget: t.budget(j),
        })
    }

    fn tau_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.tree(i, Metric::Objective).walk_from_source(j)
    }

    fn sigma_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.tree(i, Metric::Budget).walk_from_source(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseApsp;
    use kor_graph::fixtures::{figure1, v};

    #[test]
    fn cached_agrees_with_dense() {
        let g = figure1();
        let dense = DenseApsp::floyd_warshall(&g);
        let cached = CachedPairCosts::new(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(dense.tau(i, j), cached.tau(i, j), "tau {i}->{j}");
                assert_eq!(dense.sigma(i, j), cached.sigma(i, j), "sigma {i}->{j}");
            }
        }
    }

    #[test]
    fn cached_paths_match_costs() {
        let g = figure1();
        let cached = CachedPairCosts::new(&g);
        let p = cached.tau_path(v(0), v(7)).unwrap();
        assert_eq!(p, vec![v(0), v(3), v(4), v(7)]);
        assert_eq!(
            cached.sigma_path(v(0), v(7)).unwrap(),
            vec![v(0), v(3), v(5), v(7)]
        );
        assert!(cached.tau_path(v(1), v(7)).is_none());
    }

    #[test]
    fn trees_are_memoized() {
        let g = figure1();
        let cached = CachedPairCosts::new(&g);
        assert_eq!(cached.cached_tree_count(), 0);
        let _ = cached.tau(v(0), v(7));
        let _ = cached.tau(v(0), v(5));
        assert_eq!(cached.cached_tree_count(), 1);
        let _ = cached.sigma(v(0), v(7));
        assert_eq!(cached.cached_tree_count(), 2);
    }
}
