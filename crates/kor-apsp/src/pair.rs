//! Pairwise `τ`/`σ` cost lookups.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use kor_graph::{Graph, NodeId};

use crate::tree::{forward_tree, Metric, Tree};

/// The two scores of a pre-processed path (`OS`, `BS`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathCost {
    /// Objective score of the path.
    pub objective: f64,
    /// Budget score of the path.
    pub budget: f64,
}

/// Access to the paper's pre-processing products for arbitrary node pairs:
/// the minimum-objective path `τ_{i,j}` and minimum-budget path `σ_{i,j}`
/// with their `(OS, BS)` scores and, unlike the paper (which discards
/// them), the paths themselves for route materialization.
pub trait PairCosts {
    /// Scores of `τ_{i,j}`, or `None` if `j` is unreachable from `i`.
    fn tau(&self, i: NodeId, j: NodeId) -> Option<PathCost>;
    /// Scores of `σ_{i,j}`, or `None` if unreachable.
    fn sigma(&self, i: NodeId, j: NodeId) -> Option<PathCost>;
    /// Node sequence of `τ_{i,j}` (inclusive), or `None` if unreachable.
    fn tau_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>>;
    /// Node sequence of `σ_{i,j}` (inclusive), or `None` if unreachable.
    fn sigma_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>>;
}

/// Lazy [`PairCosts`] backed by memoized forward Dijkstra trees.
///
/// Each distinct `(source, metric)` pair computes one tree on first use;
/// the greedy algorithm touches only a handful of sources per query, so
/// this avoids any `O(|V|²)` pre-processing while returning exactly the
/// same values as [`crate::DenseApsp`].
///
/// The cache is generic over how it holds the graph: `G` may be a plain
/// `&Graph` (scoped use, as in tests and the batch front end) or an
/// `Arc<Graph>` (long-lived services that must own their dataset). The
/// memo table sits behind a `Mutex`, so a single cache can be shared by
/// any number of threads — a tree computed for one query is reused by
/// every later query regardless of which thread runs it.
pub struct CachedPairCosts<G> {
    graph: G,
    trees: Mutex<HashMap<(NodeId, u8), Arc<Tree>>>,
}

impl<G: AsRef<Graph>> CachedPairCosts<G> {
    /// Creates an empty cache over `graph`.
    pub fn new(graph: G) -> Self {
        Self {
            graph,
            trees: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph.as_ref()
    }

    /// Number of trees computed so far (for instrumentation).
    pub fn cached_tree_count(&self) -> usize {
        self.trees.lock().unwrap().len()
    }

    fn tree(&self, source: NodeId, metric: Metric) -> Arc<Tree> {
        let key = (source, metric as u8);
        let mut guard = self.trees.lock().unwrap();
        guard
            .entry(key)
            .or_insert_with(|| Arc::new(forward_tree(self.graph.as_ref(), metric, source)))
            .clone()
    }

    /// Rebinds the cache to a mutated graph, carrying over every tree
    /// that provably avoided all changed edges. A forward tree from `s`
    /// can only be affected by an edge whose *tail* is reachable from
    /// `s`; because mutation rebuilds preserve the relative CSR order
    /// of surviving edges, a carried tree is bit-for-bit the tree a
    /// cold engine would compute on the new graph (identical scan
    /// order, identical weights, identical ties).
    ///
    /// `changed_tails` must hold the `from` node of every mutation in
    /// the batch (closures, reopenings, and scalings alike — a reopened
    /// edge adds paths only below its tail, so the same test covers
    /// it). The new graph must have the same node count as the old one.
    ///
    /// Returns the rebound cache plus `(retained, evicted)` tree
    /// counts.
    pub fn carry_over(&self, graph: G, changed_tails: &[NodeId]) -> (Self, usize, usize) {
        let old = self.trees.lock().unwrap();
        let mut kept = HashMap::with_capacity(old.len());
        let mut evicted = 0usize;
        for (&key, tree) in old.iter() {
            if changed_tails.iter().any(|&u| tree.is_reachable(u)) {
                evicted += 1;
            } else {
                kept.insert(key, Arc::clone(tree));
            }
        }
        let retained = kept.len();
        (
            Self {
                graph,
                trees: Mutex::new(kept),
            },
            retained,
            evicted,
        )
    }
}

impl<G: AsRef<Graph>> PairCosts for CachedPairCosts<G> {
    fn tau(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let t = self.tree(i, Metric::Objective);
        t.is_reachable(j).then(|| PathCost {
            objective: t.objective(j),
            budget: t.budget(j),
        })
    }

    fn sigma(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let t = self.tree(i, Metric::Budget);
        t.is_reachable(j).then(|| PathCost {
            objective: t.objective(j),
            budget: t.budget(j),
        })
    }

    fn tau_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.tree(i, Metric::Objective).walk_from_source(j)
    }

    fn sigma_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.tree(i, Metric::Budget).walk_from_source(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseApsp;
    use kor_graph::fixtures::{figure1, v};

    #[test]
    fn cached_agrees_with_dense() {
        let g = figure1();
        let dense = DenseApsp::floyd_warshall(&g);
        let cached = CachedPairCosts::new(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(dense.tau(i, j), cached.tau(i, j), "tau {i}->{j}");
                assert_eq!(dense.sigma(i, j), cached.sigma(i, j), "sigma {i}->{j}");
            }
        }
    }

    #[test]
    fn cached_paths_match_costs() {
        let g = figure1();
        let cached = CachedPairCosts::new(&g);
        let p = cached.tau_path(v(0), v(7)).unwrap();
        assert_eq!(p, vec![v(0), v(3), v(4), v(7)]);
        assert_eq!(
            cached.sigma_path(v(0), v(7)).unwrap(),
            vec![v(0), v(3), v(5), v(7)]
        );
        assert!(cached.tau_path(v(1), v(7)).is_none());
    }

    #[test]
    fn carry_over_keeps_only_trees_that_avoid_changed_tails() {
        use kor_graph::{EdgeMutation, GraphBuilder};

        // Diamond: 0 -> 1 -> 3, 0 -> 2 -> 3.
        let mut b = GraphBuilder::new();
        let s = b.add_node(["s"]);
        let a = b.add_node(["a"]);
        let c = b.add_node(["c"]);
        let t = b.add_node(["t"]);
        b.add_edge(s, a, 1.0, 1.0).unwrap();
        b.add_edge(s, c, 2.0, 2.0).unwrap();
        b.add_edge(a, t, 1.0, 1.0).unwrap();
        b.add_edge(c, t, 1.0, 1.0).unwrap();
        let g = b.build().unwrap();

        let cached = CachedPairCosts::new(&g);
        let _ = cached.tau(s, t); // tree from s: reaches a -> must evict
        let _ = cached.tau(c, t); // tree from c: never sees a -> retained
        let _ = cached.sigma(t, s); // tree from t: only {t} -> retained
        assert_eq!(cached.cached_tree_count(), 3);

        let g2 = g
            .apply_mutations(&[EdgeMutation::scale(a, t, 3.0, 1.0)])
            .unwrap();
        let (warm, retained, evicted) = cached.carry_over(&g2, &[a]);
        assert_eq!((retained, evicted), (2, 1));
        assert_eq!(warm.cached_tree_count(), 2);

        // Every answer matches a cold cache on the mutated graph,
        // bit for bit, whether the tree was carried or recomputed.
        let cold = CachedPairCosts::new(&g2);
        for i in g2.nodes() {
            for j in g2.nodes() {
                let (w, c) = (warm.tau(i, j), cold.tau(i, j));
                assert_eq!(w.is_some(), c.is_some(), "tau {i}->{j}");
                if let (Some(w), Some(c)) = (w, c) {
                    assert_eq!(w.objective.to_bits(), c.objective.to_bits());
                    assert_eq!(w.budget.to_bits(), c.budget.to_bits());
                }
                assert_eq!(warm.tau_path(i, j), cold.tau_path(i, j));
                assert_eq!(warm.sigma(i, j), cold.sigma(i, j), "sigma {i}->{j}");
            }
        }
    }

    #[test]
    fn trees_are_memoized() {
        let g = figure1();
        let cached = CachedPairCosts::new(&g);
        assert_eq!(cached.cached_tree_count(), 0);
        let _ = cached.tau(v(0), v(7));
        let _ = cached.tau(v(0), v(5));
        assert_eq!(cached.cached_tree_count(), 1);
        let _ = cached.sigma(v(0), v(7));
        assert_eq!(cached.cached_tree_count(), 2);
    }
}
