//! Dense all-pairs pre-processing (`τ` and `σ` matrices).
//!
//! Faithful to §3.1: for every node pair the objective/budget scores of
//! the minimum-objective path `τ_{i,j}` and the minimum-budget path
//! `σ_{i,j}`, with next-hop matrices so that the paths themselves can be
//! reconstructed (needed to materialize result routes). Two builders:
//!
//! * [`DenseApsp::floyd_warshall`] — the paper's `O(|V|³)` algorithm;
//! * [`DenseApsp::by_dijkstra`] — `O(|V|·(|E| + |V| log |V|))`, better for
//!   sparse graphs; produces identical values (cross-checked in tests).
//!
//! Space is `O(|V|²)`; intended for graphs up to a few thousand nodes.
//! Larger experiments use the lazy per-query structures instead.

use kor_graph::{Graph, NodeId};

use crate::pair::{PairCosts, PathCost};
use crate::tree::{forward_tree, Metric, NO_NODE};

/// Dense `τ`/`σ` matrices with next-hop path reconstruction.
#[derive(Debug, Clone)]
pub struct DenseApsp {
    n: usize,
    tau_obj: Vec<f64>,
    tau_bud: Vec<f64>,
    tau_next: Vec<u32>,
    sigma_obj: Vec<f64>,
    sigma_bud: Vec<f64>,
    sigma_next: Vec<u32>,
}

impl DenseApsp {
    /// Builds the matrices with the Floyd–Warshall algorithm, relaxing the
    /// lexicographic keys `(objective, budget)` for `τ` and
    /// `(budget, objective)` for `σ`.
    pub fn floyd_warshall(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut apsp = Self::empty(n);
        for v in graph.nodes() {
            let i = v.index();
            apsp.tau_obj[i * n + i] = 0.0;
            apsp.tau_bud[i * n + i] = 0.0;
            apsp.sigma_obj[i * n + i] = 0.0;
            apsp.sigma_bud[i * n + i] = 0.0;
            for e in graph.out_edges(v) {
                let j = e.node.index();
                // Parallel edges are rejected by the builder, so direct
                // assignment is safe; self-loops likewise.
                apsp.tau_obj[i * n + j] = e.objective;
                apsp.tau_bud[i * n + j] = e.budget;
                apsp.tau_next[i * n + j] = e.node.0;
                apsp.sigma_obj[i * n + j] = e.objective;
                apsp.sigma_bud[i * n + j] = e.budget;
                apsp.sigma_next[i * n + j] = e.node.0;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let (tik_o, tik_b) = (apsp.tau_obj[i * n + k], apsp.tau_bud[i * n + k]);
                let (sik_b, sik_o) = (apsp.sigma_bud[i * n + k], apsp.sigma_obj[i * n + k]);
                if !tik_o.is_finite() && !sik_b.is_finite() {
                    continue;
                }
                let tau_next_ik = apsp.tau_next[i * n + k];
                let sigma_next_ik = apsp.sigma_next[i * n + k];
                for j in 0..n {
                    // τ: lexicographic (objective, budget)
                    let cand_o = tik_o + apsp.tau_obj[k * n + j];
                    if cand_o.is_finite() {
                        let cand_b = tik_b + apsp.tau_bud[k * n + j];
                        let cur_o = apsp.tau_obj[i * n + j];
                        let cur_b = apsp.tau_bud[i * n + j];
                        if cand_o < cur_o || (cand_o == cur_o && cand_b < cur_b) {
                            apsp.tau_obj[i * n + j] = cand_o;
                            apsp.tau_bud[i * n + j] = cand_b;
                            apsp.tau_next[i * n + j] = tau_next_ik;
                        }
                    }
                    // σ: lexicographic (budget, objective)
                    let cand_b = sik_b + apsp.sigma_bud[k * n + j];
                    if cand_b.is_finite() {
                        let cand_o = sik_o + apsp.sigma_obj[k * n + j];
                        let cur_b = apsp.sigma_bud[i * n + j];
                        let cur_o = apsp.sigma_obj[i * n + j];
                        if cand_b < cur_b || (cand_b == cur_b && cand_o < cur_o) {
                            apsp.sigma_bud[i * n + j] = cand_b;
                            apsp.sigma_obj[i * n + j] = cand_o;
                            apsp.sigma_next[i * n + j] = sigma_next_ik;
                        }
                    }
                }
            }
        }
        apsp
    }

    /// Builds the same matrices with one forward Dijkstra per node and
    /// metric; preferable for sparse graphs.
    pub fn by_dijkstra(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut apsp = Self::empty(n);
        for v in graph.nodes() {
            let i = v.index();
            for (metric, obj, bud, next) in [
                (
                    Metric::Objective,
                    &mut apsp.tau_obj,
                    &mut apsp.tau_bud,
                    &mut apsp.tau_next,
                ),
                (
                    Metric::Budget,
                    &mut apsp.sigma_obj,
                    &mut apsp.sigma_bud,
                    &mut apsp.sigma_next,
                ),
            ] {
                let tree = forward_tree(graph, metric, v);
                for u in graph.nodes() {
                    let j = u.index();
                    let spt = tree.node(u);
                    obj[i * n + j] = spt.objective;
                    bud[i * n + j] = spt.budget;
                }
                // First hops: next[i][j] = j if parent(j) == i, else the
                // first hop toward parent(j); resolved iteratively with
                // memoization inside the row.
                for u in graph.nodes() {
                    if u == v || !tree.is_reachable(u) {
                        continue;
                    }
                    if next[i * n + u.index()] != NO_NODE {
                        continue;
                    }
                    // Walk up to a node whose first hop is known (or to v).
                    let mut chain = vec![u];
                    let mut cur = u;
                    let hop = loop {
                        let parent = NodeId(tree.node(cur).link);
                        if parent == v {
                            break cur; // cur is the first hop itself
                        }
                        let known = next[i * n + parent.index()];
                        if known != NO_NODE {
                            break NodeId(known);
                        }
                        chain.push(parent);
                        cur = parent;
                    };
                    for node in chain {
                        next[i * n + node.index()] = hop.0;
                    }
                }
            }
        }
        apsp
    }

    fn empty(n: usize) -> Self {
        Self {
            n,
            tau_obj: vec![f64::INFINITY; n * n],
            tau_bud: vec![f64::INFINITY; n * n],
            tau_next: vec![NO_NODE; n * n],
            sigma_obj: vec![f64::INFINITY; n * n],
            sigma_bud: vec![f64::INFINITY; n * n],
            sigma_next: vec![NO_NODE; n * n],
        }
    }

    /// Number of nodes covered by the matrices.
    pub fn node_count(&self) -> usize {
        self.n
    }

    fn path_from_next(&self, next: &[u32], i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        if i == j {
            return Some(vec![i]);
        }
        let mut path = vec![i];
        let mut cur = i;
        while cur != j {
            let hop = next[cur.index() * self.n + j.index()];
            if hop == NO_NODE {
                return None;
            }
            cur = NodeId(hop);
            path.push(cur);
            debug_assert!(path.len() <= self.n, "next-hop matrix contains a cycle");
        }
        Some(path)
    }
}

impl PairCosts for DenseApsp {
    fn tau(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let o = self.tau_obj[i.index() * self.n + j.index()];
        o.is_finite().then(|| PathCost {
            objective: o,
            budget: self.tau_bud[i.index() * self.n + j.index()],
        })
    }

    fn sigma(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        let b = self.sigma_bud[i.index() * self.n + j.index()];
        b.is_finite().then(|| PathCost {
            objective: self.sigma_obj[i.index() * self.n + j.index()],
            budget: b,
        })
    }

    fn tau_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.path_from_next(&self.tau_next, i, j)
    }

    fn sigma_path(&self, i: NodeId, j: NodeId) -> Option<Vec<NodeId>> {
        self.path_from_next(&self.sigma_next, i, j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, v};
    use kor_graph::Route;

    #[test]
    fn floyd_matches_paper_preprocessing_example() {
        let g = figure1();
        let apsp = DenseApsp::floyd_warshall(&g);
        // τ(0,7) = ⟨v0,v3,v4,v7⟩ with OS 4, BS 7
        let tau = apsp.tau(v(0), v(7)).unwrap();
        assert_eq!((tau.objective, tau.budget), (4.0, 7.0));
        assert_eq!(
            apsp.tau_path(v(0), v(7)).unwrap(),
            vec![v(0), v(3), v(4), v(7)]
        );
        // σ(0,7) = ⟨v0,v3,v5,v7⟩ with OS 9, BS 5
        let sigma = apsp.sigma(v(0), v(7)).unwrap();
        assert_eq!((sigma.objective, sigma.budget), (9.0, 5.0));
        assert_eq!(
            apsp.sigma_path(v(0), v(7)).unwrap(),
            vec![v(0), v(3), v(5), v(7)]
        );
    }

    #[test]
    fn self_pairs_are_zero() {
        let g = figure1();
        let apsp = DenseApsp::floyd_warshall(&g);
        let c = apsp.tau(v(4), v(4)).unwrap();
        assert_eq!((c.objective, c.budget), (0.0, 0.0));
        assert_eq!(apsp.tau_path(v(4), v(4)).unwrap(), vec![v(4)]);
    }

    #[test]
    fn unreachable_pairs_are_none() {
        let g = figure1();
        let apsp = DenseApsp::floyd_warshall(&g);
        // v1 has no outgoing edges
        assert!(apsp.tau(v(1), v(7)).is_none());
        assert!(apsp.sigma(v(1), v(0)).is_none());
        assert!(apsp.tau_path(v(1), v(7)).is_none());
    }

    #[test]
    fn dijkstra_builder_agrees_with_floyd_on_fixture() {
        let g = figure1();
        let a = DenseApsp::floyd_warshall(&g);
        let b = DenseApsp::by_dijkstra(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                assert_eq!(a.tau(i, j), b.tau(i, j), "tau {i}->{j}");
                assert_eq!(a.sigma(i, j), b.sigma(i, j), "sigma {i}->{j}");
            }
        }
    }

    #[test]
    fn dijkstra_paths_are_valid_and_score_correctly() {
        let g = figure1();
        let apsp = DenseApsp::by_dijkstra(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                if let Some(cost) = apsp.tau(i, j) {
                    let path = apsp.tau_path(i, j).expect("cost implies path");
                    let r = Route::new(path);
                    let (os, bs) = r.scores(&g).expect("path must be valid");
                    assert!((os - cost.objective).abs() < 1e-9, "tau OS {i}->{j}");
                    assert!((bs - cost.budget).abs() < 1e-9, "tau BS {i}->{j}");
                }
                if let Some(cost) = apsp.sigma(i, j) {
                    let path = apsp.sigma_path(i, j).expect("cost implies path");
                    let (os, bs) = Route::new(path).scores(&g).unwrap();
                    assert!((os - cost.objective).abs() < 1e-9, "sigma OS {i}->{j}");
                    assert!((bs - cost.budget).abs() < 1e-9, "sigma BS {i}->{j}");
                }
            }
        }
    }

    #[test]
    fn tau_minimizes_objective_sigma_minimizes_budget() {
        let g = figure1();
        let apsp = DenseApsp::floyd_warshall(&g);
        for i in g.nodes() {
            for j in g.nodes() {
                if let (Some(t), Some(s)) = (apsp.tau(i, j), apsp.sigma(i, j)) {
                    assert!(t.objective <= s.objective + 1e-12);
                    assert!(s.budget <= t.budget + 1e-12);
                }
            }
        }
    }
}
