//! Per-query to-target cost context.

use kor_graph::{Graph, NodeId, Route};

use crate::pair::PathCost;
use crate::tree::{backward_tree, Metric, Tree};

/// The to-target pre-processing values consumed by Algorithms 1 and 2.
///
/// For a query targeting `v_t`, the label algorithms read four quantities
/// per node `v_i`:
///
/// * `OS(τ_{i,t})`, `BS(τ_{i,t})` — scores of the minimum-objective path
///   to the target (upper-bound updates and pruning, Alg. 1 lines 7/10/17);
/// * `BS(σ_{i,t})`, `OS(σ_{i,t})` — scores of the minimum-budget path to
///   the target (budget feasibility, Alg. 1 line 10).
///
/// Computed with two backward Dijkstra trees, which also reconstruct the
/// completion paths needed to materialize result routes — values identical
/// to a [`crate::DenseApsp`] row.
///
/// The context owns its trees outright (no borrow of the graph), so
/// long-lived services can keep contexts for popular targets in a shared
/// cache behind `Arc` and skip the two Dijkstras on repeat queries — see
/// `kor_core`'s pre-processing cache.
#[derive(Debug, Clone)]
pub struct QueryContext {
    target: NodeId,
    tau: Tree,
    sigma: Tree,
}

impl QueryContext {
    /// Builds the two to-target trees for `target`.
    pub fn new(graph: &Graph, target: NodeId) -> Self {
        let seeds = [(target, 0.0, 0.0)];
        Self {
            target,
            tau: backward_tree(graph, Metric::Objective, &seeds),
            sigma: backward_tree(graph, Metric::Budget, &seeds),
        }
    }

    /// The target node `v_t`.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Whether `i` can reach the target at all.
    #[inline]
    pub fn reaches_target(&self, i: NodeId) -> bool {
        self.tau.is_reachable(i)
    }

    /// Scores of `τ_{i,t}`, or `None` if the target is unreachable.
    #[inline]
    pub fn tau_to_target(&self, i: NodeId) -> Option<PathCost> {
        self.tau.is_reachable(i).then(|| PathCost {
            objective: self.tau.objective(i),
            budget: self.tau.budget(i),
        })
    }

    /// Scores of `σ_{i,t}`, or `None` if the target is unreachable.
    #[inline]
    pub fn sigma_to_target(&self, i: NodeId) -> Option<PathCost> {
        self.sigma.is_reachable(i).then(|| PathCost {
            objective: self.sigma.objective(i),
            budget: self.sigma.budget(i),
        })
    }

    /// `OS(τ_{i,t})` with `+inf` for unreachable nodes (pruning-friendly).
    #[inline]
    pub fn os_tau(&self, i: NodeId) -> f64 {
        self.tau.objective(i)
    }

    /// `BS(τ_{i,t})` with `+inf` for unreachable nodes.
    #[inline]
    pub fn bs_tau(&self, i: NodeId) -> f64 {
        self.tau.budget(i)
    }

    /// `BS(σ_{i,t})` with `+inf` for unreachable nodes.
    #[inline]
    pub fn bs_sigma(&self, i: NodeId) -> f64 {
        self.sigma.budget(i)
    }

    /// `OS(σ_{i,t})` with `+inf` for unreachable nodes.
    #[inline]
    pub fn os_sigma(&self, i: NodeId) -> f64 {
        self.sigma.objective(i)
    }

    /// The completion path `τ_{i,t}` as a route.
    pub fn tau_route(&self, i: NodeId) -> Option<Route> {
        self.tau.walk_to_seed(i).map(Route::new)
    }

    /// The completion path `σ_{i,t}` as a route.
    pub fn sigma_route(&self, i: NodeId) -> Option<Route> {
        self.sigma.walk_to_seed(i).map(Route::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, v};

    #[test]
    fn to_target_values_match_paper() {
        let g = figure1();
        let ctx = QueryContext::new(&g, v(7));
        assert_eq!(ctx.target(), v(7));
        let tau0 = ctx.tau_to_target(v(0)).unwrap();
        assert_eq!((tau0.objective, tau0.budget), (4.0, 7.0));
        let sigma0 = ctx.sigma_to_target(v(0)).unwrap();
        assert_eq!((sigma0.objective, sigma0.budget), (9.0, 5.0));
        assert_eq!(ctx.os_tau(v(3)), 2.0);
        assert_eq!(ctx.bs_tau(v(3)), 5.0);
        assert_eq!(ctx.bs_sigma(v(6)), 7.0);
        assert_eq!(ctx.os_tau(v(5)), 3.0);
        assert_eq!(ctx.bs_tau(v(5)), 4.0);
    }

    #[test]
    fn unreachable_nodes() {
        let g = figure1();
        let ctx = QueryContext::new(&g, v(7));
        assert!(!ctx.reaches_target(v(1)));
        assert!(ctx.os_tau(v(1)).is_infinite());
        assert!(ctx.tau_to_target(v(1)).is_none());
        assert!(ctx.sigma_to_target(v(1)).is_none());
        assert!(ctx.tau_route(v(1)).is_none());
    }

    #[test]
    fn completion_routes_materialize() {
        let g = figure1();
        let ctx = QueryContext::new(&g, v(7));
        let r = ctx.tau_route(v(3)).unwrap();
        assert_eq!(r.nodes(), &[v(3), v(4), v(7)]);
        assert_eq!(r.scores(&g).unwrap(), (2.0, 5.0));
        let s = ctx.sigma_route(v(0)).unwrap();
        assert_eq!(s.nodes(), &[v(0), v(3), v(5), v(7)]);
    }

    #[test]
    fn target_costs_zero() {
        let g = figure1();
        let ctx = QueryContext::new(&g, v(7));
        assert_eq!(ctx.os_tau(v(7)), 0.0);
        assert_eq!(ctx.bs_sigma(v(7)), 0.0);
        assert_eq!(ctx.tau_route(v(7)).unwrap().nodes(), &[v(7)]);
    }
}
