//! Partition-based pre-processing (the paper's §6 future work).
//!
//! The paper's conclusion sketches a cheaper pre-processing scheme:
//! *"employ a graph partition algorithm to divide a large graph into
//! several subgraphs … only do the pre-processing within each subgraph …
//! compute and store the best objective and budget score between every
//! pair of border nodes"*. This module implements that scheme:
//!
//! * nodes are partitioned into clusters (by spatial grid when positions
//!   exist, else by BFS chunks);
//! * **intra tables** hold cluster-restricted path costs (node→border,
//!   border→node, node→node within one cluster);
//! * an **overlay graph** over all border nodes — cluster-restricted
//!   border→border costs plus the original inter-cluster edges — is
//!   solved all-pairs;
//! * a query `cost(i, j)` minimizes over
//!   `intra(i, b₁) + overlay(b₁, b₂) + intra(b₂, j)` and, for same-cluster
//!   pairs, the direct intra cost.
//!
//! This yields the **exact** minimum objective (τ) / budget (σ) scores —
//! any path decomposes at its border crossings — while storing
//! `O(Σ|C|² + |B|²)` entries instead of `O(|V|²)`. Like the paper's
//! pre-processing, only *scores* are produced, not paths.
//!
//! Tie-breaking caveat: the secondary score (e.g. `BS(τ)`) is the weight
//! of *a* minimum-primary path, which may differ from [`crate::DenseApsp`]'s
//! lexicographically minimal choice when several optimal paths exist.

use std::collections::HashMap;

use kor_graph::{Graph, NodeId};

use crate::pair::PathCost;
use crate::tree::Metric;

/// Configuration for the partitioning.
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Target number of clusters (actual count may differ slightly).
    pub clusters: usize,
}

impl PartitionConfig {
    /// Roughly `√|V|` clusters — balances intra-table and overlay sizes.
    pub fn auto(graph: &Graph) -> Self {
        Self {
            clusters: (graph.node_count() as f64).sqrt().ceil() as usize,
        }
    }
}

/// A `(objective, budget)` cost pair under one lexicographic metric.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cost {
    primary: f64,
    secondary: f64,
}

impl Cost {
    const INF: Cost = Cost {
        primary: f64::INFINITY,
        secondary: f64::INFINITY,
    };

    #[inline]
    fn better_than(&self, other: &Cost) -> bool {
        self.primary < other.primary
            || (self.primary == other.primary && self.secondary < other.secondary)
    }

    #[inline]
    fn plus(&self, other: &Cost) -> Cost {
        Cost {
            primary: self.primary + other.primary,
            secondary: self.secondary + other.secondary,
        }
    }
}

/// Per-metric tables (one instance for τ, one for σ).
struct MetricTables {
    /// `intra[c]`: dense `|C|×|C|` cluster-restricted costs.
    intra: Vec<Vec<Cost>>,
    /// `overlay[b1 * nb + b2]`: all-pairs costs over border nodes.
    overlay: Vec<Cost>,
}

/// Partition-based replacement for dense APSP (scores only).
pub struct PartitionedApsp {
    cluster_of: Vec<u32>,
    /// Node's index within its cluster.
    local_of: Vec<u32>,
    /// Nodes per cluster.
    members: Vec<Vec<NodeId>>,
    /// Border list per cluster (indices into `borders`).
    cluster_borders: Vec<Vec<u32>>,
    /// All border nodes.
    borders: Vec<NodeId>,
    border_index: HashMap<NodeId, u32>,
    tau: MetricTables,
    sigma: MetricTables,
}

impl PartitionedApsp {
    /// Builds the tables.
    pub fn build(graph: &Graph, config: &PartitionConfig) -> Self {
        let cluster_of = partition(graph, config.clusters.max(1));
        let n_clusters = cluster_of
            .iter()
            .copied()
            .max()
            .map_or(0, |m| m as usize + 1);
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); n_clusters];
        let mut local_of = vec![0u32; graph.node_count()];
        for v in graph.nodes() {
            let c = cluster_of[v.index()] as usize;
            local_of[v.index()] = members[c].len() as u32;
            members[c].push(v);
        }

        // Border nodes: endpoints of inter-cluster edges.
        let mut borders: Vec<NodeId> = Vec::new();
        let mut border_index: HashMap<NodeId, u32> = HashMap::new();
        let add_border = |v: NodeId, borders: &mut Vec<NodeId>, idx: &mut HashMap<NodeId, u32>| {
            idx.entry(v).or_insert_with(|| {
                borders.push(v);
                (borders.len() - 1) as u32
            });
        };
        for v in graph.nodes() {
            for e in graph.out_edges(v) {
                if cluster_of[v.index()] != cluster_of[e.node.index()] {
                    add_border(v, &mut borders, &mut border_index);
                    add_border(e.node, &mut borders, &mut border_index);
                }
            }
        }
        let mut cluster_borders: Vec<Vec<u32>> = vec![Vec::new(); n_clusters];
        for (bi, &b) in borders.iter().enumerate() {
            cluster_borders[cluster_of[b.index()] as usize].push(bi as u32);
        }

        let tau = build_metric(
            graph,
            Metric::Objective,
            &cluster_of,
            &local_of,
            &members,
            &borders,
            &border_index,
        );
        let sigma = build_metric(
            graph,
            Metric::Budget,
            &cluster_of,
            &local_of,
            &members,
            &borders,
            &border_index,
        );

        Self {
            cluster_of,
            local_of,
            members,
            cluster_borders,
            borders,
            border_index,
            tau,
            sigma,
        }
    }

    /// Number of border nodes (the overlay dimension).
    pub fn border_count(&self) -> usize {
        self.borders.len()
    }

    /// Number of clusters.
    pub fn cluster_count(&self) -> usize {
        self.members.len()
    }

    /// Stored table entries (for comparing against `|V|²` dense storage).
    pub fn stored_entries(&self) -> usize {
        let intra: usize = self.members.iter().map(|m| m.len() * m.len()).sum();
        2 * (intra + self.borders.len() * self.borders.len())
    }

    /// Scores of the minimum-objective path `τ(i, j)`.
    pub fn tau_cost(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        self.query(&self.tau, i, j).map(|c| PathCost {
            objective: c.primary,
            budget: c.secondary,
        })
    }

    /// Scores of the minimum-budget path `σ(i, j)`.
    pub fn sigma_cost(&self, i: NodeId, j: NodeId) -> Option<PathCost> {
        self.query(&self.sigma, i, j).map(|c| PathCost {
            objective: c.secondary,
            budget: c.primary,
        })
    }

    fn query(&self, tables: &MetricTables, i: NodeId, j: NodeId) -> Option<Cost> {
        let ci = self.cluster_of[i.index()] as usize;
        let cj = self.cluster_of[j.index()] as usize;
        let mut best = Cost::INF;
        if ci == cj {
            let size = self.members[ci].len();
            let c = tables.intra[ci]
                [self.local_of[i.index()] as usize * size + self.local_of[j.index()] as usize];
            if c.better_than(&best) {
                best = c;
            }
        }
        // Through the overlay: i → b1 (intra), b1 → b2 (overlay), b2 → j
        // (intra). Border nodes of the own cluster include i itself when
        // i is a border.
        let nb = self.borders.len();
        let size_i = self.members[ci].len();
        let size_j = self.members[cj].len();
        for &b1 in &self.cluster_borders[ci] {
            let b1_node = self.borders[b1 as usize];
            let leg1 = tables.intra[ci][self.local_of[i.index()] as usize * size_i
                + self.local_of[b1_node.index()] as usize];
            if !leg1.primary.is_finite() {
                continue;
            }
            for &b2 in &self.cluster_borders[cj] {
                let b2_node = self.borders[b2 as usize];
                let mid = tables.overlay[b1 as usize * nb + b2 as usize];
                if !mid.primary.is_finite() {
                    continue;
                }
                let leg2 = tables.intra[cj][self.local_of[b2_node.index()] as usize * size_j
                    + self.local_of[j.index()] as usize];
                if !leg2.primary.is_finite() {
                    continue;
                }
                let total = leg1.plus(&mid).plus(&leg2);
                if total.better_than(&best) {
                    best = total;
                }
            }
        }
        best.primary.is_finite().then_some(best)
    }

    /// The border index of a node, if it is a border.
    pub fn is_border(&self, v: NodeId) -> bool {
        self.border_index.contains_key(&v)
    }
}

/// Splits `graph` into at most `clusters` node groups and returns the
/// per-node assignment (`assignment[v] = cluster id`, ids dense in
/// `0..k` with every id non-empty).
///
/// When the graph carries positions (the generator's grid/ring worlds
/// do) the cut is geometric: a `⌈√clusters⌉ × ⌈√clusters⌉` spatial grid
/// over the bounding box, empty cells compacted away. Otherwise nodes
/// are grouped into BFS chunks of roughly `|V| / clusters` over the
/// undirected structure, so chunks stay connected where the topology
/// allows.
///
/// This is the same assignment [`PartitionedApsp::build`] uses
/// internally; it is exported so front ends (the shard splitter, the
/// scatter-gather router) can partition a dataset without paying for
/// the border-overlay tables.
pub fn partition(graph: &Graph, clusters: usize) -> Vec<u32> {
    let clusters = clusters.max(1);
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    if graph.has_positions() {
        let side = (clusters as f64).sqrt().ceil() as usize;
        let (mut min_x, mut max_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_y, mut max_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in graph.nodes() {
            let (x, y) = graph.position(v).expect("positions exist");
            min_x = min_x.min(x);
            max_x = max_x.max(x);
            min_y = min_y.min(y);
            max_y = max_y.max(y);
        }
        let w = (max_x - min_x).max(1e-9);
        let h = (max_y - min_y).max(1e-9);
        let mut assignment = vec![0u32; n];
        for v in graph.nodes() {
            let (x, y) = graph.position(v).expect("positions exist");
            let gx = (((x - min_x) / w * side as f64) as usize).min(side - 1);
            let gy = (((y - min_y) / h * side as f64) as usize).min(side - 1);
            assignment[v.index()] = (gy * side + gx) as u32;
        }
        compact(&mut assignment);
        assignment
    } else {
        // BFS chunks over the undirected structure.
        let target = n.div_ceil(clusters);
        let mut assignment = vec![u32::MAX; n];
        let mut next_cluster = 0u32;
        for start in graph.nodes() {
            if assignment[start.index()] != u32::MAX {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            let mut filled = 0usize;
            while let Some(v) = queue.pop_front() {
                if assignment[v.index()] != u32::MAX {
                    continue;
                }
                assignment[v.index()] = next_cluster;
                filled += 1;
                if filled >= target {
                    break;
                }
                for e in graph.out_edges(v).chain(graph.in_edges(v)) {
                    if assignment[e.node.index()] == u32::MAX {
                        queue.push_back(e.node);
                    }
                }
            }
            next_cluster += 1;
        }
        assignment
    }
}

/// Renumbers cluster ids densely (grid cells may be empty).
fn compact(assignment: &mut [u32]) {
    let mut remap: HashMap<u32, u32> = HashMap::new();
    for a in assignment.iter_mut() {
        let next = remap.len() as u32;
        *a = *remap.entry(*a).or_insert(next);
    }
}

/// Cluster-restricted Dijkstra from `source` (forward edges, staying
/// inside `cluster`).
fn restricted_dijkstra(
    graph: &Graph,
    metric: Metric,
    cluster_of: &[u32],
    local_of: &[u32],
    members: &[NodeId],
    source: NodeId,
) -> Vec<Cost> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let cluster = cluster_of[source.index()];
    let mut dist = vec![Cost::INF; members.len()];
    let key = |c: &Cost| (c.primary, c.secondary);
    let mut heap: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
    let pack = |c: &Cost, v: NodeId| {
        // Non-negative finite floats order like their bit patterns.
        Reverse((c.primary.to_bits(), c.secondary.to_bits(), v.0))
    };
    dist[local_of[source.index()] as usize] = Cost {
        primary: 0.0,
        secondary: 0.0,
    };
    heap.push(pack(&dist[local_of[source.index()] as usize], source));
    while let Some(Reverse((p, s, raw))) = heap.pop() {
        let v = NodeId(raw);
        let cur = dist[local_of[v.index()] as usize];
        if (f64::from_bits(p), f64::from_bits(s)) != key(&cur) {
            continue;
        }
        for e in graph.out_edges(v) {
            if cluster_of[e.node.index()] != cluster {
                continue;
            }
            let (ep, es) = match metric {
                Metric::Objective => (e.objective, e.budget),
                Metric::Budget => (e.budget, e.objective),
            };
            let cand = Cost {
                primary: cur.primary + ep,
                secondary: cur.secondary + es,
            };
            let slot = &mut dist[local_of[e.node.index()] as usize];
            if cand.better_than(slot) {
                *slot = cand;
                heap.push(pack(&cand, e.node));
            }
        }
    }
    dist
}

fn build_metric(
    graph: &Graph,
    metric: Metric,
    cluster_of: &[u32],
    local_of: &[u32],
    members: &[Vec<NodeId>],
    borders: &[NodeId],
    border_index: &HashMap<NodeId, u32>,
) -> MetricTables {
    // Intra tables: restricted Dijkstra from every node of every cluster.
    let mut intra: Vec<Vec<Cost>> = Vec::with_capacity(members.len());
    for cluster_members in members {
        let size = cluster_members.len();
        let mut table = vec![Cost::INF; size * size];
        for (li, &node) in cluster_members.iter().enumerate() {
            let row =
                restricted_dijkstra(graph, metric, cluster_of, local_of, cluster_members, node);
            table[li * size..(li + 1) * size].copy_from_slice(&row);
        }
        intra.push(table);
    }

    // Overlay adjacency: restricted border→border costs + crossing edges.
    let nb = borders.len();
    let mut adj: Vec<Vec<(u32, Cost)>> = vec![Vec::new(); nb];
    for (bi, &b) in borders.iter().enumerate() {
        let c = cluster_of[b.index()] as usize;
        let size = members[c].len();
        for &other in borders {
            if cluster_of[other.index()] as usize != c || other == b {
                continue;
            }
            let cost =
                intra[c][local_of[b.index()] as usize * size + local_of[other.index()] as usize];
            if cost.primary.is_finite() {
                adj[bi].push((border_index[&other], cost));
            }
        }
        for e in graph.out_edges(b) {
            if cluster_of[e.node.index()] != cluster_of[b.index()] {
                let (p, s) = match metric {
                    Metric::Objective => (e.objective, e.budget),
                    Metric::Budget => (e.budget, e.objective),
                };
                adj[bi].push((
                    border_index[&e.node],
                    Cost {
                        primary: p,
                        secondary: s,
                    },
                ));
            }
        }
    }

    // All-pairs over the overlay: Dijkstra from every border.
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut overlay = vec![Cost::INF; nb * nb];
    for src in 0..nb {
        let dist = &mut overlay[src * nb..(src + 1) * nb];
        dist[src] = Cost {
            primary: 0.0,
            secondary: 0.0,
        };
        let mut heap = BinaryHeap::from([Reverse((0u64, 0u64, src as u32))]);
        while let Some(Reverse((p, s, at))) = heap.pop() {
            let cur = dist[at as usize];
            if (f64::from_bits(p), f64::from_bits(s)) != (cur.primary, cur.secondary) {
                continue;
            }
            for &(to, ref w) in &adj[at as usize] {
                let cand = cur.plus(w);
                if cand.better_than(&dist[to as usize]) {
                    dist[to as usize] = cand;
                    heap.push(Reverse((
                        cand.primary.to_bits(),
                        cand.secondary.to_bits(),
                        to,
                    )));
                }
            }
        }
    }

    MetricTables { intra, overlay }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseApsp;
    use crate::pair::PairCosts;
    use kor_graph::fixtures::figure1;
    use kor_graph::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_graph(n: usize, edges: usize, seed: u64, with_positions: bool) -> kor_graph::Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new();
        for i in 0..n {
            let tag = format!("t{}", i % 5);
            if with_positions {
                let (x, y) = (rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
                b.add_node_at([tag.as_str()], x, y);
            } else {
                b.add_node([tag.as_str()]);
            }
        }
        let mut added = 0;
        while added < edges {
            let u = rng.gen_range(0..n as u32);
            let v = rng.gen_range(0..n as u32);
            if u == v {
                continue;
            }
            let o = rng.gen_range(0.1..5.0);
            let bu = rng.gen_range(0.1..5.0);
            if b.add_edge(kor_graph::NodeId(u), kor_graph::NodeId(v), o, bu)
                .is_ok()
            {
                added += 1;
            }
        }
        b.build().unwrap()
    }

    fn check_against_dense(graph: &kor_graph::Graph, clusters: usize) {
        let dense = DenseApsp::by_dijkstra(graph);
        let part = PartitionedApsp::build(graph, &PartitionConfig { clusters });
        for i in graph.nodes() {
            for j in graph.nodes() {
                let (d_tau, p_tau) = (dense.tau(i, j), part.tau_cost(i, j));
                match (d_tau, p_tau) {
                    (None, None) => {}
                    (Some(d), Some(p)) => {
                        assert!(
                            (d.objective - p.objective).abs() < 1e-9,
                            "tau objective mismatch {i}->{j}: dense {} vs partitioned {}",
                            d.objective,
                            p.objective
                        );
                        // Secondary may differ in ties but never beats the
                        // lexicographic minimum.
                        assert!(p.budget >= d.budget - 1e-9);
                    }
                    (d, p) => panic!("tau reachability mismatch {i}->{j}: {d:?} vs {p:?}"),
                }
                let (d_sig, p_sig) = (dense.sigma(i, j), part.sigma_cost(i, j));
                match (d_sig, p_sig) {
                    (None, None) => {}
                    (Some(d), Some(p)) => {
                        assert!(
                            (d.budget - p.budget).abs() < 1e-9,
                            "sigma budget mismatch {i}->{j}"
                        );
                        assert!(p.objective >= d.objective - 1e-9);
                    }
                    (d, p) => panic!("sigma reachability mismatch {i}->{j}: {d:?} vs {p:?}"),
                }
            }
        }
    }

    #[test]
    fn matches_dense_on_figure1() {
        let g = figure1();
        for clusters in [1, 2, 3, 8] {
            check_against_dense(&g, clusters);
        }
    }

    #[test]
    fn matches_dense_on_random_graphs_without_positions() {
        for seed in 0..4 {
            let g = random_graph(40, 160, seed, false);
            check_against_dense(&g, 6);
        }
    }

    #[test]
    fn matches_dense_on_random_geometric_graphs() {
        for seed in 0..3 {
            let g = random_graph(50, 220, 100 + seed, true);
            check_against_dense(&g, 9);
        }
    }

    /// A 12×12 lattice with bidirectional neighbor edges — the locality
    /// structure of a road network, where partitioning pays off.
    fn lattice(side: usize) -> kor_graph::Graph {
        let mut rng = StdRng::seed_from_u64(5);
        let mut b = GraphBuilder::new();
        for y in 0..side {
            for x in 0..side {
                b.add_node_at([format!("t{}", (x + y) % 5).as_str()], x as f64, y as f64);
            }
        }
        let id = |x: usize, y: usize| kor_graph::NodeId((y * side + x) as u32);
        for y in 0..side {
            for x in 0..side {
                if x + 1 < side {
                    b.add_bidirectional(id(x, y), id(x + 1, y), rng.gen_range(0.1..2.0), 1.0)
                        .unwrap();
                }
                if y + 1 < side {
                    b.add_bidirectional(id(x, y), id(x, y + 1), rng.gen_range(0.1..2.0), 1.0)
                        .unwrap();
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn storage_is_smaller_than_dense_on_local_graphs() {
        let g = lattice(24);
        let part = PartitionedApsp::build(&g, &PartitionConfig { clusters: 9 });
        let dense_entries = 2 * g.node_count() * g.node_count();
        assert!(
            part.stored_entries() < dense_entries / 2,
            "partitioned {} vs dense {dense_entries}",
            part.stored_entries()
        );
        assert!(part.cluster_count() > 1);
        assert!(part.border_count() > 0);
        assert!(part.border_count() < g.node_count());
        assert!(part.is_border(kor_graph::NodeId(0)) || !part.is_border(kor_graph::NodeId(0)));
    }

    #[test]
    fn matches_dense_on_lattice() {
        let g = lattice(7);
        check_against_dense(&g, 9);
    }

    #[test]
    fn single_cluster_degenerates_to_plain_apsp() {
        let g = figure1();
        let part = PartitionedApsp::build(&g, &PartitionConfig { clusters: 1 });
        assert_eq!(part.cluster_count(), 1);
        assert_eq!(part.border_count(), 0);
        let c = part
            .tau_cost(kor_graph::NodeId(0), kor_graph::NodeId(7))
            .unwrap();
        assert_eq!((c.objective, c.budget), (4.0, 7.0));
    }

    #[test]
    fn self_pairs_are_zero() {
        let g = figure1();
        let part = PartitionedApsp::build(&g, &PartitionConfig { clusters: 4 });
        for v in g.nodes() {
            let c = part.tau_cost(v, v).unwrap();
            assert_eq!((c.objective, c.budget), (0.0, 0.0));
        }
    }
}
