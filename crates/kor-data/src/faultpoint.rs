//! Deterministic fault injection for crash-safety tests.
//!
//! A *fault point* is a named place in the code (today: the mutation
//! journal's append path and the serve request loop) that consults this
//! registry before proceeding. Arming a point makes its Nth execution
//! fail in a chosen way — return an injected I/O error, write a torn
//! record and die, crash outright, or panic — so the crash-recovery
//! batteries can hit the exact byte-level windows the journal's
//! torn-tail tolerance is about, repeatably.
//!
//! Points are armed either programmatically with [`arm`] (in-process
//! tests) or through the `KOR_FAULTPOINT` environment variable
//! (child-process and CI smoke tests): a comma-separated list of
//! `name:action[:nth]` specs, e.g.
//!
//! ```text
//! KOR_FAULTPOINT=journal-append:torn:3,serve-request:panic:2
//! ```
//!
//! `nth` defaults to 1 and counts executions of that point
//! process-wide; the fault fires on exactly the Nth hit and never
//! again, so a retry after an injected error goes through. An unarmed
//! process pays one mutex lock plus an empty-vec scan per point — the
//! registry is not on any per-query path.

use std::fmt;
use std::io;
use std::sync::{Mutex, OnceLock};

/// Environment variable holding fault-point specs for a process.
pub const ENV_VAR: &str = "KOR_FAULTPOINT";

/// What an armed fault point does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Abort the process on the spot (no unwinding, no flushing) —
    /// `kill -9` as seen from inside.
    Crash,
    /// Write only a prefix of the pending record, flush that much, then
    /// abort — a torn tail exactly as a mid-write power cut leaves one.
    /// Only meaningful at write-path points; elsewhere it acts like
    /// [`FaultAction::Crash`].
    Torn,
    /// Make the operation fail with an injected [`io::Error`] instead
    /// of performing it. The process survives.
    IoError,
    /// Panic with the point's name, for exercising `catch_unwind`
    /// isolation.
    Panic,
}

impl FaultAction {
    fn parse(s: &str) -> Result<FaultAction, String> {
        match s {
            "crash" => Ok(FaultAction::Crash),
            "torn" => Ok(FaultAction::Torn),
            "io-error" => Ok(FaultAction::IoError),
            "panic" => Ok(FaultAction::Panic),
            other => Err(format!(
                "unknown fault action {other:?} (expected crash, torn, io-error, or panic)"
            )),
        }
    }

    /// The spec spelling of this action.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultAction::Crash => "crash",
            FaultAction::Torn => "torn",
            FaultAction::IoError => "io-error",
            FaultAction::Panic => "panic",
        }
    }
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

struct ArmedPoint {
    name: String,
    action: FaultAction,
    nth: u64,
    hits: u64,
}

fn registry() -> &'static Mutex<Vec<ArmedPoint>> {
    static REGISTRY: OnceLock<Mutex<Vec<ArmedPoint>>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut points = Vec::new();
        if let Ok(specs) = std::env::var(ENV_VAR) {
            for spec in specs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                match parse_spec(spec) {
                    Ok(point) => points.push(point),
                    // A typo in the env var must not silently disarm a
                    // crash test; be loud on stderr and keep going.
                    Err(e) => eprintln!("kor: ignoring fault point {spec:?}: {e}"),
                }
            }
        }
        Mutex::new(points)
    })
}

fn parse_spec(spec: &str) -> Result<ArmedPoint, String> {
    let mut parts = spec.split(':');
    let name = parts.next().unwrap_or_default();
    if name.is_empty() {
        return Err("empty fault point name".into());
    }
    let action = FaultAction::parse(parts.next().ok_or("missing action")?)?;
    let nth = match parts.next() {
        None => 1,
        Some(n) => n
            .parse::<u64>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("nth must be a positive integer, got {n:?}"))?,
    };
    if parts.next().is_some() {
        return Err("too many ':' fields (expected name:action[:nth])".into());
    }
    Ok(ArmedPoint {
        name: name.to_string(),
        action,
        nth,
        hits: 0,
    })
}

/// Arms a fault point from a `name:action[:nth]` spec, exactly as the
/// [`ENV_VAR`] variable would. Used by in-process tests; multiple arms
/// of the same name stack (each keeps its own hit counter).
pub fn arm(spec: &str) -> Result<(), String> {
    let point = parse_spec(spec)?;
    registry().lock().unwrap().push(point);
    Ok(())
}

/// Records one execution of the named point and reports the action to
/// take, if this hit is the one an armed spec targets. Each armed spec
/// fires exactly once, on its Nth hit.
pub fn hit(name: &str) -> Option<FaultAction> {
    let mut points = registry().lock().unwrap();
    for p in points.iter_mut() {
        if p.name == name {
            p.hits += 1;
            if p.hits == p.nth {
                return Some(p.action);
            }
        }
    }
    None
}

/// The error an [`FaultAction::IoError`] injection produces.
pub fn injected_error(name: &str) -> io::Error {
    io::Error::other(format!("injected fault at point {name:?}"))
}

/// Kills the process the way a power cut would: a note on stderr (so
/// test logs show the fault fired, not a mystery death), then `abort` —
/// no unwinding, no destructors, no buffered-write flushing.
pub fn die(name: &str) -> ! {
    eprintln!("kor: fault point {name:?} firing: aborting process");
    std::process::abort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        for _ in 0..100 {
            assert_eq!(hit("test-unarmed-point"), None);
        }
    }

    #[test]
    fn fires_exactly_on_the_nth_hit_and_once() {
        arm("test-nth-point:io-error:3").unwrap();
        assert_eq!(hit("test-nth-point"), None);
        assert_eq!(hit("test-nth-point"), None);
        assert_eq!(hit("test-nth-point"), Some(FaultAction::IoError));
        // Fired once; later hits (a retry, say) pass.
        assert_eq!(hit("test-nth-point"), None);
    }

    #[test]
    fn specs_parse_strictly() {
        for bad in [
            "",
            ":panic",
            "p",
            "p:demolish",
            "p:panic:0",
            "p:panic:-1",
            "p:panic:two",
            "p:panic:1:extra",
        ] {
            assert!(arm(bad).is_err(), "spec {bad:?} should be rejected");
        }
        for (action, parsed) in [
            ("crash", FaultAction::Crash),
            ("torn", FaultAction::Torn),
            ("io-error", FaultAction::IoError),
            ("panic", FaultAction::Panic),
        ] {
            assert_eq!(FaultAction::parse(action), Ok(parsed));
            assert_eq!(parsed.as_str(), action);
        }
    }

    #[test]
    fn injected_errors_name_the_point() {
        let e = injected_error("some-point");
        assert!(e.to_string().contains("some-point"));
    }
}
