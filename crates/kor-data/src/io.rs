//! Plain-text graph interchange format.
//!
//! A dependency-free line format so generated datasets can be saved,
//! inspected, and reloaded:
//!
//! ```text
//! kor-graph v1
//! nodes <n>
//! node <id> <x> <y> <tag>[,<tag>…]
//! …
//! edges <m>
//! edge <from> <to> <objective> <budget>
//! …
//! ```
//!
//! Tags are percent-escaped for spaces/commas/percent signs.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use kor_graph::{Graph, GraphBuilder, NodeId};

/// Errors from loading a graph file.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file content.
    Parse(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "graph file I/O error: {e}"),
            LoadError::Parse(msg) => write!(f, "graph file parse error: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn escape(tag: &str) -> String {
    let mut out = String::with_capacity(tag.len());
    for c in tag.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2C"),
            ' ' => out.push_str("%20"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(tag: &str) -> String {
    tag.replace("%20", " ")
        .replace("%2C", ",")
        .replace("%0A", "\n")
        .replace("%25", "%")
}

/// Serializes a graph to the text format.
pub fn graph_to_string(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("kor-graph v1\n");
    let _ = writeln!(out, "nodes {}", graph.node_count());
    for v in graph.nodes() {
        let (x, y) = graph.position(v).unwrap_or((0.0, 0.0));
        let tags: Vec<String> = graph
            .keywords(v)
            .iter()
            .map(|k| escape(graph.vocab().resolve(k).expect("interned")))
            .collect();
        let _ = writeln!(out, "node {} {} {} {}", v.0, x, y, tags.join(","));
    }
    let _ = writeln!(out, "edges {}", graph.edge_count());
    for v in graph.nodes() {
        for e in graph.out_edges(v) {
            let _ = writeln!(
                out,
                "edge {} {} {} {}",
                v.0, e.node.0, e.objective, e.budget
            );
        }
    }
    out
}

/// Saves a graph to `path`.
pub fn save_graph(path: &Path, graph: &Graph) -> io::Result<()> {
    fs::write(path, graph_to_string(graph))
}

/// Parses a graph from the text format.
pub fn graph_from_str(text: &str) -> Result<Graph, LoadError> {
    let mut lines = text.lines();
    match lines.next() {
        Some("kor-graph v1") => {}
        other => return Err(LoadError::Parse(format!("bad header: {other:?}"))),
    }
    let mut builder = GraphBuilder::new();
    let node_count: usize = expect_count(lines.next(), "nodes")?;
    for i in 0..node_count {
        let line = lines
            .next()
            .ok_or_else(|| LoadError::Parse(format!("missing node line {i}")))?;
        let mut parts = line.split(' ');
        if parts.next() != Some("node") {
            return Err(LoadError::Parse(format!(
                "expected node line, got {line:?}"
            )));
        }
        let id: u32 = parse(parts.next(), "node id")?;
        if id as usize != i {
            return Err(LoadError::Parse(format!(
                "node ids must be dense, got {id} at {i}"
            )));
        }
        let x: f64 = parse(parts.next(), "x")?;
        let y: f64 = parse(parts.next(), "y")?;
        let tags_field = parts.next().unwrap_or("");
        let tags: Vec<String> = if tags_field.is_empty() {
            Vec::new()
        } else {
            tags_field.split(',').map(unescape).collect()
        };
        builder.add_node_at(tags.iter().map(String::as_str), x, y);
    }
    let edge_count: usize = expect_count(lines.next(), "edges")?;
    for i in 0..edge_count {
        let line = lines
            .next()
            .ok_or_else(|| LoadError::Parse(format!("missing edge line {i}")))?;
        let mut parts = line.split(' ');
        if parts.next() != Some("edge") {
            return Err(LoadError::Parse(format!(
                "expected edge line, got {line:?}"
            )));
        }
        let from: u32 = parse(parts.next(), "edge from")?;
        let to: u32 = parse(parts.next(), "edge to")?;
        let objective: f64 = parse(parts.next(), "objective")?;
        let budget: f64 = parse(parts.next(), "budget")?;
        builder
            .add_edge(NodeId(from), NodeId(to), objective, budget)
            .map_err(|e| LoadError::Parse(e.to_string()))?;
    }
    builder.build().map_err(|e| LoadError::Parse(e.to_string()))
}

/// Loads a graph from `path`.
pub fn load_graph(path: &Path) -> Result<Graph, LoadError> {
    graph_from_str(&fs::read_to_string(path)?)
}

/// Loads a whole world from either supported on-disk format, sniffing
/// the content: files starting with the [`crate::snapshot::MAGIC`]
/// bytes are parsed as `.korbin` binary snapshots, anything else as the
/// text format above (which carries no canned queries, so those worlds
/// load with empty query sets).
pub fn read_world_auto(path: &Path) -> Result<crate::snapshot::Snapshot, LoadError> {
    let bytes = fs::read(path)?;
    if bytes.starts_with(&crate::snapshot::MAGIC) {
        return crate::snapshot::snapshot_from_bytes(&bytes).map_err(|e| match e {
            crate::snapshot::SnapshotError::Io(e) => LoadError::Io(e),
            other => LoadError::Parse(other.to_string()),
        });
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| LoadError::Parse("graph file is neither .korbin nor UTF-8 text".into()))?;
    graph_from_str(&text).map(crate::snapshot::Snapshot::graph_only)
}

/// [`read_world_auto`] keeping only the graph — what every front end
/// (`kor query/batch/bench`, `kor serve`'s `load_dataset`) loads
/// through, so one generated artifact feeds them all regardless of its
/// file name.
pub fn load_graph_auto(path: &Path) -> Result<Graph, LoadError> {
    read_world_auto(path).map(|w| w.graph)
}

fn expect_count(line: Option<&str>, keyword: &str) -> Result<usize, LoadError> {
    let line = line.ok_or_else(|| LoadError::Parse(format!("missing {keyword} line")))?;
    let mut parts = line.split(' ');
    if parts.next() != Some(keyword) {
        return Err(LoadError::Parse(format!(
            "expected {keyword} line, got {line:?}"
        )));
    }
    parse(parts.next(), keyword)
}

fn parse<T: std::str::FromStr>(field: Option<&str>, what: &str) -> Result<T, LoadError> {
    field
        .ok_or_else(|| LoadError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| LoadError::Parse(format!("unparsable {what}: {field:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::figure1;

    #[test]
    fn round_trip_figure1() {
        let g = figure1();
        let text = graph_to_string(&g);
        let g2 = graph_from_str(&text).unwrap();
        assert_eq!(g2.node_count(), g.node_count());
        assert_eq!(g2.edge_count(), g.edge_count());
        for v in g.nodes() {
            // tag names survive (ids may be renumbered)
            let t1: Vec<&str> = g
                .keywords(v)
                .iter()
                .map(|k| g.vocab().resolve(k).unwrap())
                .collect();
            let t2: Vec<&str> = g2
                .keywords(v)
                .iter()
                .map(|k| g2.vocab().resolve(k).unwrap())
                .collect();
            let (mut a, mut b) = (t1.clone(), t2.clone());
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{v}");
            let e1: Vec<(u32, f64, f64)> = g
                .out_edges(v)
                .map(|e| (e.node.0, e.objective, e.budget))
                .collect();
            let e2: Vec<(u32, f64, f64)> = g2
                .out_edges(v)
                .map(|e| (e.node.0, e.objective, e.budget))
                .collect();
            assert_eq!(e1, e2, "{v}");
        }
    }

    #[test]
    fn round_trip_via_file() {
        let dir = std::env::temp_dir().join("kor-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.korg");
        let g = figure1();
        save_graph(&path, &g).unwrap();
        let g2 = load_graph(&path).unwrap();
        assert_eq!(g2.node_count(), 8);
        assert_eq!(g2.edge_count(), 12);
    }

    #[test]
    fn tags_with_spaces_and_commas_survive() {
        let mut b = kor_graph::GraphBuilder::new();
        let a = b.add_node(["shopping mall", "fish, chips", "100%"]);
        let c = b.add_node(["plain"]);
        b.add_edge(a, c, 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let g2 = graph_from_str(&graph_to_string(&g)).unwrap();
        let tags: Vec<&str> = g2
            .keywords(NodeId(0))
            .iter()
            .map(|k| g2.vocab().resolve(k).unwrap())
            .collect();
        assert!(tags.contains(&"shopping mall"));
        assert!(tags.contains(&"fish, chips"));
        assert!(tags.contains(&"100%"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(graph_from_str("not a graph").is_err());
        assert!(graph_from_str("kor-graph v1\nnodes 1\n").is_err());
        assert!(graph_from_str("kor-graph v1\nnodes 0\nedges 1\nedge 0 1 1 1\n").is_err());
    }

    #[test]
    fn load_auto_sniffs_both_formats() {
        let dir = std::env::temp_dir().join(format!("kor-io-auto-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = figure1();

        // Text format, with a misleading extension.
        let text_path = dir.join("fig1.korbin");
        save_graph(&text_path, &g).unwrap();
        assert_eq!(load_graph_auto(&text_path).unwrap().node_count(), 8);

        // Binary snapshot.
        let bin_path = dir.join("fig1.anything");
        crate::snapshot::write_snapshot(&bin_path, &crate::snapshot::Snapshot::graph_only(g))
            .unwrap();
        assert_eq!(load_graph_auto(&bin_path).unwrap().node_count(), 8);

        // Garbage is a parse error either way.
        let junk = dir.join("junk");
        std::fs::write(&junk, b"\xFF\xFE not a graph").unwrap();
        assert!(matches!(load_graph_auto(&junk), Err(LoadError::Parse(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            load_graph(Path::new("/nonexistent/x.korg")),
            Err(LoadError::Io(_))
        ));
    }
}
