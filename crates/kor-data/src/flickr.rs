//! Flickr-like dataset pipeline (§4.1 of the paper, on synthetic photos).
//!
//! The paper's pipeline: geo-tagged photos → cluster into locations →
//! aggregate tags per location → build a trip edge between the locations
//! of consecutive same-user photos taken less than a day apart → edge
//! budget = Euclidean distance, edge popularity
//! `Pr_{i,j} = Num(v_i,v_j)/TotalTrips`, objective `o = ln(1/Pr)` so that
//! minimizing `OS` maximizes route popularity.
//!
//! We reproduce every step on a synthetic photo stream: users wander
//! between Gaussian attraction centers (tourist hot spots) taking photos;
//! photos cluster on a regular grid (the clustering of \[15\] is
//! grid-based at city scale); tags follow the Zipf model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

use kor_graph::{Graph, GraphBuilder};

use crate::tags::TagModel;

/// Configuration for the Flickr-like generator.
#[derive(Debug, Clone)]
pub struct FlickrConfig {
    /// Number of simulated users.
    pub users: usize,
    /// Mean photos per user (geometric-ish spread around this).
    pub photos_per_user: usize,
    /// Number of Gaussian attraction centers.
    pub attraction_centers: usize,
    /// City extent (square of `city_km × city_km`).
    pub city_km: f64,
    /// Clustering grid cell edge length in km.
    pub cell_km: f64,
    /// Minimum photos for a cell to become a location.
    pub min_photos_per_location: usize,
    /// Tag vocabulary size (the paper reports 9,785 tags).
    pub vocab_size: usize,
    /// Zipf exponent for tag frequencies.
    pub tag_exponent: f64,
    /// Tags per location: uniform in `1..=max_tags_per_location`.
    pub max_tags_per_location: usize,
    /// Locality of user movement: the next attraction center is sampled
    /// with weight `exp(−distance/hop_scale_km)`. Small values concentrate
    /// trips on short, popular corridors (like real city mobility).
    pub hop_scale_km: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlickrConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

impl FlickrConfig {
    /// A configuration calibrated to land near the paper's dataset shape
    /// (≈5.2k locations from ≈30k users).
    pub fn paper_scale() -> Self {
        Self {
            users: 12_000,
            photos_per_user: 40,
            attraction_centers: 60,
            city_km: 30.0,
            cell_km: 0.35,
            min_photos_per_location: 12,
            vocab_size: 9_785,
            tag_exponent: 1.0,
            max_tags_per_location: 24,
            hop_scale_km: 2.0,
            seed: 2012,
        }
    }

    /// A small configuration for unit tests and examples (hundreds of
    /// locations, generated in milliseconds).
    pub fn small() -> Self {
        Self {
            users: 400,
            photos_per_user: 30,
            attraction_centers: 12,
            city_km: 10.0,
            cell_km: 0.5,
            min_photos_per_location: 4,
            vocab_size: 600,
            tag_exponent: 1.0,
            max_tags_per_location: 6,
            hop_scale_km: 2.0,
            seed: 2012,
        }
    }
}

/// Pipeline statistics mirroring the paper's dataset description.
#[derive(Debug, Clone, PartialEq)]
pub struct FlickrStats {
    /// Photos simulated.
    pub photos: usize,
    /// Locations after clustering.
    pub locations: usize,
    /// Distinct tags actually used.
    pub tags_used: usize,
    /// Total trips (edge traversals) observed.
    pub total_trips: usize,
    /// Distinct directed edges.
    pub edges: usize,
}

/// Generates the Flickr-like graph; returns it with pipeline statistics.
pub fn generate_flickr(config: &FlickrConfig) -> (Graph, FlickrStats) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tags = TagModel::new(config.vocab_size, config.tag_exponent);

    // Attraction centers: tourist hot spots with individual popularity
    // and spread.
    let centers: Vec<(f64, f64, f64)> = (0..config.attraction_centers)
        .map(|_| {
            (
                rng.gen_range(0.0..config.city_km),
                rng.gen_range(0.0..config.city_km),
                rng.gen_range(0.3..1.5), // σ of the photo scatter, km
            )
        })
        .collect();

    // Locality model: from center c, the next center is sampled with
    // weight exp(−distance/hop_scale), so trips concentrate on nearby,
    // popular corridors. Pre-compute the cumulative tables.
    let hop_cdf: Vec<Vec<f64>> = (0..centers.len())
        .map(|c| {
            let (cx, cy, _) = centers[c];
            let mut acc = 0.0;
            centers
                .iter()
                .map(|&(x, y, _)| {
                    let d = ((cx - x).powi(2) + (cy - y).powi(2)).sqrt();
                    acc += (-d / config.hop_scale_km.max(1e-6)).exp();
                    acc
                })
                .collect()
        })
        .collect();

    // Photo stream: per user, a day-stamped sequence of positions. Users
    // hop between centers and take a burst of photos at each.
    let grid_cols = (config.city_km / config.cell_km).ceil() as i64;
    let cell_of = |x: f64, y: f64| -> i64 {
        let cx = (x / config.cell_km).floor() as i64;
        let cy = (y / config.cell_km).floor() as i64;
        cy * grid_cols + cx
    };

    let mut photos_per_cell: HashMap<i64, (usize, f64, f64)> = HashMap::new();
    // Per user: (day, order, cell) to derive trips later.
    let mut user_tracks: Vec<Vec<(u32, i64)>> = Vec::with_capacity(config.users);
    let mut photo_count = 0usize;

    for _ in 0..config.users {
        let n_photos = rng.gen_range(1..=config.photos_per_user * 2);
        let mut track = Vec::with_capacity(n_photos);
        let mut day: u32 = rng.gen_range(0..300);
        let mut remaining = n_photos;
        let mut at_center = rng.gen_range(0..centers.len());
        while remaining > 0 {
            // A burst at one center: 1–6 photos the same day.
            let (cx, cy, sigma) = centers[at_center];
            let burst = rng.gen_range(1..=6usize).min(remaining);
            for _ in 0..burst {
                let (dx, dy) = gaussian_pair(&mut rng);
                let x = (cx + dx * sigma).clamp(0.0, config.city_km - 1e-9);
                let y = (cy + dy * sigma).clamp(0.0, config.city_km - 1e-9);
                let cell = cell_of(x, y);
                let entry = photos_per_cell.entry(cell).or_insert((0, 0.0, 0.0));
                entry.0 += 1;
                entry.1 += x;
                entry.2 += y;
                track.push((day, cell));
                photo_count += 1;
            }
            remaining -= burst;
            // Hop to a (usually nearby) center for the next burst.
            let cdf = &hop_cdf[at_center];
            let total = *cdf.last().expect("centers exist");
            let x = rng.gen_range(0.0..total);
            at_center = cdf.partition_point(|&c| c <= x).min(centers.len() - 1);
            // Usually the next burst happens the same day (a trip within
            // the city); sometimes the user pauses for days.
            if rng.gen_bool(0.3) {
                day += rng.gen_range(1..10);
            }
        }
        user_tracks.push(track);
    }

    // Clustering: cells with enough photos become locations (centroid
    // position); each gets Zipf tags.
    let mut cell_to_loc: HashMap<i64, u32> = HashMap::new();
    let mut positions: Vec<(f64, f64)> = Vec::new();
    let mut builder = GraphBuilder::new();
    for name in tags.names() {
        builder.vocab_mut().intern(name);
    }
    let mut cells: Vec<(&i64, &(usize, f64, f64))> = photos_per_cell.iter().collect();
    cells.sort_by_key(|(cell, _)| **cell); // deterministic location ids
    for (cell, (count, sx, sy)) in cells {
        if *count < config.min_photos_per_location {
            continue;
        }
        let n_tags = rng.gen_range(1..=config.max_tags_per_location);
        let tag_ids: Vec<kor_graph::KeywordId> = tags
            .sample_distinct(&mut rng, n_tags)
            .into_iter()
            .map(|rank| kor_graph::KeywordId(rank as u32))
            .collect();
        let pos = (sx / *count as f64, sy / *count as f64);
        let node = builder.add_node_ids_at(tag_ids, pos.0, pos.1);
        debug_assert_eq!(node.index(), positions.len());
        positions.push(pos);
        cell_to_loc.insert(*cell, node.0);
    }

    // Trips: consecutive photos of the same user, different locations,
    // taken "less than 1 day apart" (same simulated day).
    let mut trip_counts: HashMap<(u32, u32), usize> = HashMap::new();
    let mut total_trips = 0usize;
    for track in &user_tracks {
        for w in track.windows(2) {
            let ((d1, c1), (d2, c2)) = (w[0], w[1]);
            if d2 - d1 >= 1 {
                continue;
            }
            let (Some(&a), Some(&b)) = (cell_to_loc.get(&c1), cell_to_loc.get(&c2)) else {
                continue;
            };
            if a == b {
                continue;
            }
            *trip_counts.entry((a, b)).or_insert(0) += 1;
            total_trips += 1;
        }
    }

    // Edges: budget = Euclidean km, objective = ln(1/Pr).
    let mut edges: Vec<(&(u32, u32), &usize)> = trip_counts.iter().collect();
    edges.sort_by_key(|(pair, _)| **pair);
    let mut edge_count = 0usize;
    for ((a, b), count) in edges {
        let pa = positions[*a as usize];
        let pb = positions[*b as usize];
        let dist = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2))
            .sqrt()
            .max(1e-6);
        let pr = *count as f64 / total_trips as f64;
        let objective = (1.0 / pr).ln().max(1e-6);
        builder
            .add_edge(
                kor_graph::NodeId(*a),
                kor_graph::NodeId(*b),
                objective,
                dist,
            )
            .expect("generated edges are valid");
        edge_count += 1;
    }

    let graph = builder.build().expect("generated graph is valid");
    let tags_used = {
        let mut used = std::collections::HashSet::new();
        for (_, kw) in graph.keyword_postings() {
            used.insert(kw);
        }
        used.len()
    };
    let stats = FlickrStats {
        photos: photo_count,
        locations: graph.node_count(),
        tags_used,
        total_trips,
        edges: edge_count,
    };
    (graph, stats)
}

/// Box–Muller transform (rand's normal distribution lives in the separate
/// `rand_distr` crate, which we avoid depending on).
fn gaussian_pair<R: Rng>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_generates_valid_graph() {
        let (g, stats) = generate_flickr(&FlickrConfig::small());
        assert!(stats.locations > 50, "{stats:?}");
        assert!(stats.edges > 100, "{stats:?}");
        assert!(stats.total_trips > stats.edges / 2, "{stats:?}");
        assert_eq!(g.node_count(), stats.locations);
        assert_eq!(g.edge_count(), stats.edges);
        assert!(g.has_positions());
        // All weights positive & finite (builder enforces, belt check).
        assert!(g.o_min() > 0.0 && g.o_max().is_finite());
        assert!(g.b_min() > 0.0 && g.b_max().is_finite());
    }

    #[test]
    fn generation_is_deterministic() {
        let (g1, s1) = generate_flickr(&FlickrConfig::small());
        let (g2, s2) = generate_flickr(&FlickrConfig::small());
        assert_eq!(s1, s2);
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.nodes() {
            assert_eq!(g1.keywords(v), g2.keywords(v));
            let e1: Vec<_> = g1.out_edges(v).map(|e| (e.node, e.objective)).collect();
            let e2: Vec<_> = g2.out_edges(v).map(|e| (e.node, e.objective)).collect();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = FlickrConfig::small();
        let (g1, _) = generate_flickr(&cfg);
        cfg.seed = 999;
        let (g2, _) = generate_flickr(&cfg);
        assert_ne!(
            (g1.node_count(), g1.edge_count()),
            (g2.node_count(), g2.edge_count())
        );
    }

    #[test]
    fn budgets_are_euclidean_distances() {
        let (g, _) = generate_flickr(&FlickrConfig::small());
        for v in g.nodes().take(50) {
            let (x1, y1) = g.position(v).unwrap();
            for e in g.out_edges(v) {
                let (x2, y2) = g.position(e.node).unwrap();
                let dist = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().max(1e-6);
                assert!((e.budget - dist).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn objectives_follow_log_inverse_popularity() {
        // The most popular edges must have the smallest objectives.
        let (g, stats) = generate_flickr(&FlickrConfig::small());
        let max_obj = (stats.total_trips as f64).ln();
        for v in g.nodes() {
            for e in g.out_edges(v) {
                assert!(e.objective <= max_obj + 1e-9, "{}", e.objective);
            }
        }
    }

    #[test]
    fn tag_usage_reported() {
        let (_, stats) = generate_flickr(&FlickrConfig::small());
        assert!(stats.tags_used > 100, "{stats:?}");
        assert!(stats.tags_used <= 600);
    }
}
