//! Synthetic datasets and query workloads for the KOR experiments.
//!
//! The paper evaluates on (1) a graph distilled from 1.5 M geo-tagged
//! Flickr photos of New York (5,199 locations, 9,785 tags, edges from
//! consecutive same-user photos less than a day apart, popularity-derived
//! objectives, Euclidean budgets) and (2) four New York road subgraphs of
//! 5k–20k nodes with random tags and uniform objectives. Neither dataset
//! is distributable, so this crate rebuilds both *pipelines* on synthetic
//! inputs with matching distributions (see DESIGN.md §6):
//!
//! * [`flickr`] — photo-stream simulation → grid clustering → location
//!   graph with `o = ln(1/Pr)` popularity objectives;
//! * [`roadnet`] — random geometric KNN graphs with Euclidean budgets and
//!   uniform objectives;
//! * [`gen`] — seeded scenario worlds (grid/ring topologies with
//!   perturbed weights) plus canned query sets with controllable budget
//!   tightness, for oracle cross-validation and stress testing;
//! * [`tags`] — the Zipf keyword model shared by all generators;
//! * [`queries`] — the 50-query workloads (keyword-count and Δ sweeps);
//! * [`io`] — a plain-text graph interchange format;
//! * [`snapshot`] — the versioned `.korbin` binary snapshot format
//!   (checksummed CSR graph + postings + canned queries) that ships a
//!   whole generated world as one artifact (see `docs/DATASETS.md`);
//! * [`shard`] — dataset sharding: deterministic node assignment, cut
//!   edges, and the escape/enter boundary summary a scatter-gather
//!   router uses to prove query confinement (stored in the snapshot's
//!   optional `SHRD`/`BNDR` sections);
//! * [`traffic`] — seeded traffic profiles (closure scripts, rush-hour
//!   multiplier schedules, reopenings) producing replayable mutation
//!   batches for the dynamic-world oracle battery and `kor mutate`;
//! * [`journal`] — the `.korj` append-only CRC-chained mutation journal
//!   (write-ahead durability for `update_edges`, torn-tail-tolerant
//!   recovery, checkpoint compaction — see `docs/OPERATIONS.md`);
//! * [`faultpoint`] — deterministic, env-armable crash/short-write/
//!   I/O-error injection points for the crash-recovery batteries.
//!
//! Every generator is deterministic under an explicit `u64` seed.

pub mod faultpoint;
pub mod flickr;
pub mod gen;
pub mod io;
pub mod journal;
pub mod queries;
pub mod roadnet;
pub mod shard;
pub mod snapshot;
pub mod tags;
pub mod traffic;

pub use faultpoint::FaultAction;
pub use flickr::{generate_flickr, FlickrConfig, FlickrStats};
pub use gen::{generate_world, GenConfig, Topology};
pub use io::{
    graph_from_str, graph_to_string, load_graph, load_graph_auto, read_world_auto, save_graph,
    LoadError,
};
pub use journal::{
    checkpoint_path, graph_digest, journal_path, read_journal, read_journal_bytes, replay, Journal,
    JournalError, RecoveredJournal,
};
pub use queries::{
    generate_workload, CannedQuery, CannedQuerySet, QuerySet, QuerySpec, WorkloadConfig,
};
pub use roadnet::{generate_roadnet, RoadNetConfig};
pub use shard::{
    boundary_budgets, compute_sharding, cut_edges, shard_assignment, shard_subgraph,
    sharding_from_assignment, validate_sharding, CutEdge, ShardingInfo,
};
pub use snapshot::{
    read_snapshot, snapshot_from_bytes, snapshot_to_bytes, write_snapshot, Snapshot, SnapshotError,
};
pub use tags::TagModel;
pub use traffic::{generate_traffic, TrafficConfig};
