//! Zipf-distributed keyword model.
//!
//! Flickr tag frequencies are heavy-tailed; we model the vocabulary as a
//! Zipf distribution so a few tags ("newyork", "food"…) appear on many
//! locations while most appear on a handful — the regime Optimization
//! Strategy 2 exploits. The most frequent ranks carry human-readable POI
//! words so examples read like the paper's ("jazz", "imax", …).

use rand::Rng;

/// Curated head-of-distribution tag names (rank order). The paper's
/// example query uses "jazz", "imax", "vegetation", "Cappuccino".
pub const THEMED_TAGS: &[&str] = &[
    "newyork",
    "food",
    "park",
    "museum",
    "shopping mall",
    "restaurant",
    "pub",
    "jazz",
    "imax",
    "vegetation",
    "cappuccino",
    "hotel",
    "theatre",
    "gallery",
    "pizza",
    "sushi",
    "bakery",
    "library",
    "cinema",
    "aquarium",
    "zoo",
    "opera",
    "ramen",
    "bbq",
    "brunch",
    "skyline",
    "bridge",
    "ferry",
    "market",
    "bookstore",
    "vinyl",
    "arcade",
    "karaoke",
    "rooftop",
    "garden",
    "fountain",
    "cathedral",
    "synagogue",
    "temple",
    "observatory",
    "planetarium",
    "speakeasy",
    "diner",
    "deli",
    "foodtruck",
    "tapas",
    "noodles",
    "espresso",
    "cocktails",
    "brewery",
];

/// A fixed vocabulary with Zipf-distributed sampling.
#[derive(Debug, Clone)]
pub struct TagModel {
    names: Vec<String>,
    cumulative: Vec<f64>,
}

impl TagModel {
    /// Builds a vocabulary of `size` tags with Zipf exponent `s`
    /// (frequency of rank `r` proportional to `1/r^s`; `s ≈ 1` matches
    /// web-tag data).
    pub fn new(size: usize, s: f64) -> Self {
        assert!(size > 0, "vocabulary must not be empty");
        assert!(s >= 0.0 && s.is_finite(), "Zipf exponent must be ≥ 0");
        let names = (0..size)
            .map(|i| {
                THEMED_TAGS
                    .get(i)
                    .map(|t| (*t).to_owned())
                    .unwrap_or_else(|| format!("tag{i:05}"))
            })
            .collect();
        let mut cumulative = Vec::with_capacity(size);
        let mut acc = 0.0;
        for r in 1..=size {
            acc += 1.0 / (r as f64).powf(s);
            cumulative.push(acc);
        }
        Self { names, cumulative }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the vocabulary is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The tag name at `rank` (0-based; lower rank = more frequent).
    pub fn name(&self, rank: usize) -> &str {
        &self.names[rank]
    }

    /// All names in rank order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Samples a tag rank from the Zipf distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= x)
    }

    /// Samples `n` *distinct* tag ranks (by rejection; `n` must be well
    /// below the vocabulary size).
    pub fn sample_distinct<R: Rng>(&self, rng: &mut R, n: usize) -> Vec<usize> {
        assert!(n <= self.names.len(), "cannot draw {n} distinct tags");
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let t = self.sample(rng);
            if !out.contains(&t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_ranks_use_themed_names() {
        let m = TagModel::new(100, 1.0);
        assert_eq!(m.name(0), "newyork");
        assert_eq!(m.name(7), "jazz");
        assert_eq!(m.name(8), "imax");
        assert!(m.name(60).starts_with("tag"));
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = TagModel::new(500, 1.0);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let sa: Vec<usize> = (0..50).map(|_| m.sample(&mut a)).collect();
        let sb: Vec<usize> = (0..50).map(|_| m.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn zipf_head_is_heavier_than_tail() {
        let m = TagModel::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut head = 0usize;
        let mut tail = 0usize;
        for _ in 0..20_000 {
            let r = m.sample(&mut rng);
            if r < 10 {
                head += 1;
            } else if r >= 500 {
                tail += 1;
            }
        }
        assert!(
            head > tail * 2,
            "head {head} should dominate tail {tail} under Zipf"
        );
    }

    #[test]
    fn samples_stay_in_range() {
        let m = TagModel::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            assert!(m.sample(&mut rng) < 50);
        }
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let m = TagModel::new(100, 0.8);
        let mut rng = StdRng::seed_from_u64(9);
        let tags = m.sample_distinct(&mut rng, 10);
        let set: std::collections::BTreeSet<_> = tags.iter().collect();
        assert_eq!(set.len(), 10);
    }

    #[test]
    fn uniform_exponent_zero_spreads() {
        let m = TagModel::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[m.sample(&mut rng)] += 1;
        }
        // Roughly uniform: every bucket within 3x of the mean.
        for c in counts {
            assert!(c > 300 && c < 3000, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "vocabulary must not be empty")]
    fn empty_vocab_panics() {
        let _ = TagModel::new(0, 1.0);
    }
}
