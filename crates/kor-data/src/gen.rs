//! Deterministic, seeded world generator for scenario-diversity testing.
//!
//! The Flickr ([`crate::flickr`]) and road-network ([`crate::roadnet`])
//! generators mimic the paper's two evaluation datasets. This module
//! opens the *scenario* axis instead: small-to-medium synthetic worlds
//! with controlled topology (grid or ring road networks with perturbed
//! edge weights), Zipf-distributed keyword assignment (the same
//! heavy-tailed regime as [`crate::tags`]), and **canned query sets**
//! whose budgets are derived from actual shortest-path distances so
//! their tightness is controllable — the workload style the multi-cost
//! index and Top-k OSR follow-up papers use to expose algorithmic corner
//! cases.
//!
//! Everything is deterministic under (`topology`, knobs, `seed`): the
//! same [`GenConfig`] always produces the same [`Snapshot`], and the
//! binary form written by [`crate::snapshot::write_snapshot`] is
//! byte-identical across runs and platforms (fixed iteration order,
//! little-endian IEEE-754 bit patterns).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kor_graph::{Graph, GraphBuilder, KeywordId, NodeId};

use crate::queries::{CannedQuery, CannedQuerySet};
use crate::snapshot::Snapshot;
use crate::tags::TagModel;

/// The road-network shape of a generated world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// A `width × height` lattice: every node connects to its 4-neighbors
    /// with bidirectional edges. Dense in short alternative paths — the
    /// regime where label dominance does the most work.
    Grid {
        /// Columns (≥ 2).
        width: usize,
        /// Rows (≥ 2).
        height: usize,
    },
    /// A ring of `nodes` plus `chords` random shortcut chords. Sparse
    /// with a few long shortcuts — the regime where budget tightness
    /// decides between the ring way and the chord way.
    Ring {
        /// Nodes on the ring (≥ 3).
        nodes: usize,
        /// Random chords added across the ring.
        chords: usize,
    },
}

impl Topology {
    /// Number of nodes this topology produces.
    pub fn node_count(&self) -> usize {
        match self {
            Topology::Grid { width, height } => width * height,
            Topology::Ring { nodes, .. } => *nodes,
        }
    }

    /// Stable name used in CLI output and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Topology::Grid { .. } => "grid",
            Topology::Ring { .. } => "ring",
        }
    }
}

/// All knobs of the world generator.
///
/// **Seed contract:** two [`generate_world`] calls with equal configs
/// (including `seed`) produce identical worlds, and the snapshots
/// written from them are byte-identical. Any knob change — not just the
/// seed — may change every sampled value downstream.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// World shape.
    pub topology: Topology,
    /// RNG seed (see the seed contract above).
    pub seed: u64,
    /// Keyword vocabulary size (≥ 1).
    pub vocab_size: usize,
    /// Zipf exponent for keyword assignment (`s ≈ 1` matches web tags).
    pub tag_exponent: f64,
    /// Tags per node: uniform in `1..=max_tags_per_node`.
    pub max_tags_per_node: usize,
    /// Relative edge-weight perturbation in `[0, 1)`: each edge budget is
    /// its geometric length scaled by `1 + jitter·U(-1, 1)`.
    pub weight_jitter: f64,
    /// Keyword counts, one canned query set per entry.
    pub keyword_counts: Vec<usize>,
    /// Queries per canned set.
    pub queries_per_set: usize,
    /// Budget tightness: each query's `Δ` is `tightness ×` the
    /// shortest-budget-path distance from its source to its target.
    /// `1.0` leaves no slack (detours are impossible), values well above
    /// `1` open the feasible region; values below `1` make every
    /// keyword-free query infeasible by construction.
    pub budget_tightness: f64,
}

impl GenConfig {
    /// A grid world with the default knobs.
    pub fn grid(width: usize, height: usize, seed: u64) -> Self {
        Self {
            topology: Topology::Grid { width, height },
            ..Self::base(seed)
        }
    }

    /// A ring world with the default knobs.
    pub fn ring(nodes: usize, chords: usize, seed: u64) -> Self {
        Self {
            topology: Topology::Ring { nodes, chords },
            ..Self::base(seed)
        }
    }

    fn base(seed: u64) -> Self {
        Self {
            topology: Topology::Grid {
                width: 8,
                height: 8,
            },
            seed,
            vocab_size: 50,
            tag_exponent: 1.0,
            max_tags_per_node: 3,
            weight_jitter: 0.3,
            keyword_counts: vec![2, 3],
            queries_per_set: 8,
            budget_tightness: 1.5,
        }
    }

    /// Validates the knob ranges, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match &self.topology {
            Topology::Grid { width, height } => {
                if *width < 2 || *height < 2 {
                    return Err(format!("grid must be at least 2×2, got {width}×{height}"));
                }
            }
            Topology::Ring { nodes, chords } => {
                if *nodes < 3 {
                    return Err(format!("ring needs at least 3 nodes, got {nodes}"));
                }
                // Chords connect non-adjacent pairs: n·(n−3)/2 of them.
                let max_chords = nodes * nodes.saturating_sub(3) / 2;
                if *chords > max_chords {
                    return Err(format!(
                        "a {nodes}-node ring fits at most {max_chords} chords, got {chords}"
                    ));
                }
            }
        }
        if self.vocab_size == 0 {
            return Err("vocabulary must not be empty".into());
        }
        if self.max_tags_per_node == 0 || self.max_tags_per_node > self.vocab_size {
            return Err(format!(
                "tags per node must be in 1..={}, got {}",
                self.vocab_size, self.max_tags_per_node
            ));
        }
        if !(0.0..1.0).contains(&self.weight_jitter) {
            return Err(format!(
                "weight jitter must be in [0, 1), got {}",
                self.weight_jitter
            ));
        }
        if !self.tag_exponent.is_finite() || self.tag_exponent < 0.0 {
            return Err(format!(
                "Zipf exponent must be ≥ 0, got {}",
                self.tag_exponent
            ));
        }
        if !self.budget_tightness.is_finite() || self.budget_tightness <= 0.0 {
            return Err(format!(
                "budget tightness must be > 0, got {}",
                self.budget_tightness
            ));
        }
        for &m in &self.keyword_counts {
            if m == 0 || m > self.vocab_size {
                return Err(format!(
                    "query keyword counts must be in 1..={}, got {m}",
                    self.vocab_size
                ));
            }
        }
        Ok(())
    }
}

/// Generates a full world — graph plus canned query sets — from the
/// config. Panics only on configs [`GenConfig::validate`] rejects.
pub fn generate_world(config: &GenConfig) -> Snapshot {
    config.validate().expect("invalid GenConfig");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tags = TagModel::new(config.vocab_size, config.tag_exponent);

    let positions = node_positions(&config.topology);
    let mut builder = GraphBuilder::with_capacity(positions.len(), positions.len() * 4);
    for name in tags.names() {
        builder.vocab_mut().intern(name);
    }
    for &(x, y) in &positions {
        let n_tags = rng.gen_range(1..=config.max_tags_per_node);
        let ids: Vec<KeywordId> = tags
            .sample_distinct(&mut rng, n_tags)
            .into_iter()
            .map(|r| KeywordId(r as u32))
            .collect();
        builder.add_node_ids_at(ids, x, y);
    }

    add_topology_edges(&mut builder, &positions, config, &mut rng);
    let graph = builder.build().expect("generated world is valid");
    let query_sets = synthesize_queries(&graph, config, &mut rng);
    Snapshot {
        graph,
        query_sets,
        sharding: None,
    }
}

/// Planar positions per topology, in node-id order.
fn node_positions(topology: &Topology) -> Vec<(f64, f64)> {
    match topology {
        Topology::Grid { width, height } => {
            let mut pts = Vec::with_capacity(width * height);
            for r in 0..*height {
                for c in 0..*width {
                    pts.push((c as f64, r as f64));
                }
            }
            pts
        }
        Topology::Ring { nodes, .. } => {
            // Radius chosen so adjacent nodes sit ~1 km apart.
            let n = *nodes as f64;
            let radius = n / (2.0 * std::f64::consts::PI);
            (0..*nodes)
                .map(|i| {
                    let angle = 2.0 * std::f64::consts::PI * i as f64 / n;
                    (radius * angle.cos(), radius * angle.sin())
                })
                .collect()
        }
    }
}

/// Adds one undirected (= two directed) edge with jittered weights: the
/// budget is the perturbed geometric length (identical in both
/// directions, like a road segment), the objective is an independent
/// uniform draw per direction.
fn jittered_edge(
    builder: &mut GraphBuilder,
    rng: &mut StdRng,
    positions: &[(f64, f64)],
    jitter: f64,
    a: usize,
    b: usize,
) {
    let (a_id, b_id) = (NodeId(a as u32), NodeId(b as u32));
    if builder.has_edge(a_id, b_id) {
        return;
    }
    let (x1, y1) = positions[a];
    let (x2, y2) = positions[b];
    let base = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().max(1e-6);
    let budget = (base * (1.0 + jitter * rng.gen_range(-1.0..1.0))).max(1e-6);
    let o_ab = rng.gen_range(1e-6..1.0);
    let o_ba = rng.gen_range(1e-6..1.0);
    builder
        .add_edge(a_id, b_id, o_ab, budget)
        .expect("valid edge");
    builder
        .add_edge(b_id, a_id, o_ba, budget)
        .expect("valid edge");
}

fn add_topology_edges(
    builder: &mut GraphBuilder,
    positions: &[(f64, f64)],
    config: &GenConfig,
    rng: &mut StdRng,
) {
    let jitter = config.weight_jitter;
    match config.topology {
        Topology::Grid { width, height } => {
            for r in 0..height {
                for c in 0..width {
                    let v = r * width + c;
                    if c + 1 < width {
                        jittered_edge(builder, rng, positions, jitter, v, v + 1);
                    }
                    if r + 1 < height {
                        jittered_edge(builder, rng, positions, jitter, v, v + width);
                    }
                }
            }
        }
        Topology::Ring { nodes, chords } => {
            for i in 0..nodes {
                jittered_edge(builder, rng, positions, jitter, i, (i + 1) % nodes);
            }
            // Rejection-sample the chords; near saturation (validate
            // caps the request at the number of non-adjacent pairs)
            // collisions would stall a pure rejection loop, so a
            // deterministic sweep tops up whatever the sampler missed —
            // the chord count is exact, never silently short.
            let mut added = 0;
            let mut attempts = 0;
            while added < chords && attempts < chords * 20 + 100 {
                attempts += 1;
                let a = rng.gen_range(0..nodes);
                let b = rng.gen_range(0..nodes);
                // Skip self-chords, ring-adjacent pairs, and repeats.
                let adjacent = (a + 1) % nodes == b || (b + 1) % nodes == a;
                if a == b || adjacent || builder.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                    continue;
                }
                jittered_edge(builder, rng, positions, jitter, a, b);
                added += 1;
            }
            'sweep: for a in 0..nodes {
                for b in a + 1..nodes {
                    if added >= chords {
                        break 'sweep;
                    }
                    let adjacent = (a + 1) % nodes == b || (b + 1) % nodes == a;
                    if adjacent || builder.has_edge(NodeId(a as u32), NodeId(b as u32)) {
                        continue;
                    }
                    jittered_edge(builder, rng, positions, jitter, a, b);
                    added += 1;
                }
            }
        }
    }
}

/// Shortest-budget-path distance `source → target` (plain forward
/// Dijkstra; worlds are strongly connected by construction, so this
/// always succeeds for distinct nodes).
fn budget_distance(graph: &Graph, source: NodeId, target: NodeId) -> Option<f64> {
    // Non-negative f64 distances order identically to their IEEE bit
    // patterns, so the heap can avoid a float wrapper type.
    let mut dist = vec![f64::INFINITY; graph.node_count()];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((0, source.0)));
    while let Some(Reverse((d_bits, v))) = heap.pop() {
        let d = f64::from_bits(d_bits);
        if v == target.0 {
            return Some(d);
        }
        if d > dist[v as usize] {
            continue;
        }
        for e in graph.out_edges(NodeId(v)) {
            let nd = d + e.budget;
            if nd < dist[e.node.index()] {
                dist[e.node.index()] = nd;
                heap.push(Reverse((nd.to_bits(), e.node.0)));
            }
        }
    }
    None
}

/// Synthesizes the canned query sets: frequency-weighted keyword draws
/// over the keywords that actually occur, endpoints sampled uniformly,
/// budgets scaled off the real shortest-path distance.
fn synthesize_queries(graph: &Graph, config: &GenConfig, rng: &mut StdRng) -> Vec<CannedQuerySet> {
    // Document-frequency pool with cumulative weights (mirrors
    // `crate::queries::generate_workload`, which serves graphs without
    // canned budgets).
    let mut df = vec![0usize; graph.vocab().len()];
    for (_, t) in graph.keyword_postings() {
        df[t.index()] += 1;
    }
    let pool: Vec<(KeywordId, usize)> = df
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(i, &c)| (KeywordId(i as u32), c))
        .collect();
    let mut cumulative: Vec<f64> = Vec::with_capacity(pool.len());
    let mut acc = 0.0;
    for (_, c) in &pool {
        acc += *c as f64;
        cumulative.push(acc);
    }

    let n = graph.node_count() as u32;
    config
        .keyword_counts
        .iter()
        .map(|&m| {
            // A small world may carry fewer *occurring* keywords than
            // the requested count; the set label reflects what the
            // queries actually hold, never the unmet request.
            let effective_m = m.min(pool.len());
            let queries = (0..config.queries_per_set)
                .map(|_| {
                    let (source, target, distance) = loop {
                        let s = NodeId(rng.gen_range(0..n));
                        let t = NodeId(rng.gen_range(0..n));
                        if s == t {
                            continue;
                        }
                        let d = budget_distance(graph, s, t)
                            .expect("generated worlds are strongly connected");
                        break (s, t, d);
                    };
                    let mut keywords: Vec<KeywordId> = Vec::with_capacity(effective_m);
                    let mut guard = 0;
                    while keywords.len() < effective_m && guard < 10_000 {
                        guard += 1;
                        let x = rng.gen_range(0.0..acc);
                        let at = cumulative.partition_point(|&c| c <= x);
                        let kw = pool[at.min(pool.len() - 1)].0;
                        if !keywords.contains(&kw) {
                            keywords.push(kw);
                        }
                    }
                    // Extreme frequency skews can starve the rejection
                    // sampler; top up deterministically so the set label
                    // is always exact.
                    for (kw, _) in &pool {
                        if keywords.len() >= effective_m {
                            break;
                        }
                        if !keywords.contains(kw) {
                            keywords.push(*kw);
                        }
                    }
                    keywords.sort_unstable();
                    CannedQuery {
                        source,
                        target,
                        keywords,
                        budget: distance * config.budget_tightness,
                    }
                })
                .collect();
            CannedQuerySet {
                keyword_count: effective_m,
                queries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_positions() {
        let world = generate_world(&GenConfig::grid(5, 4, 1));
        let g = &world.graph;
        assert_eq!(g.node_count(), 20);
        // Lattice edge count: 2 · (h·(w−1) + w·(h−1)) directed edges.
        assert_eq!(g.edge_count(), 2 * (4 * 4 + 5 * 3));
        assert_eq!(g.position(NodeId(7)), Some((2.0, 1.0)));
        assert!(g.has_positions());
    }

    #[test]
    fn ring_shape_and_chords() {
        let world = generate_world(&GenConfig::ring(12, 3, 2));
        let g = &world.graph;
        assert_eq!(g.node_count(), 12);
        // 12 ring segments + 3 chords, each bidirectional.
        assert_eq!(g.edge_count(), 2 * (12 + 3));
    }

    #[test]
    fn worlds_are_strongly_connected() {
        for cfg in [GenConfig::grid(4, 4, 3), GenConfig::ring(10, 2, 3)] {
            let g = generate_world(&cfg).graph;
            for v in g.nodes().skip(1) {
                assert!(
                    budget_distance(&g, NodeId(0), v).is_some(),
                    "{} world: v0 cannot reach {v}",
                    cfg.topology.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_world(&GenConfig::grid(6, 5, 42));
        let b = generate_world(&GenConfig::grid(6, 5, 42));
        assert_eq!(a.graph.node_count(), b.graph.node_count());
        for v in a.graph.nodes() {
            let ea: Vec<_> = a
                .graph
                .out_edges(v)
                .map(|e| (e.node, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            let eb: Vec<_> = b
                .graph
                .out_edges(v)
                .map(|e| (e.node, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            assert_eq!(ea, eb, "{v}");
            assert_eq!(a.graph.keywords(v), b.graph.keywords(v));
        }
        assert_eq!(a.query_sets, b.query_sets);

        let c = generate_world(&GenConfig::grid(6, 5, 43));
        assert_ne!(a.query_sets, c.query_sets, "different seed, same worlds?");
    }

    #[test]
    fn budgets_track_shortest_paths() {
        let cfg = GenConfig {
            budget_tightness: 2.0,
            ..GenConfig::grid(5, 5, 7)
        };
        let world = generate_world(&cfg);
        for set in &world.query_sets {
            assert_eq!(set.queries.len(), cfg.queries_per_set);
            for q in &set.queries {
                let d = budget_distance(&world.graph, q.source, q.target).unwrap();
                assert!((q.budget - 2.0 * d).abs() < 1e-9, "Δ={} d={d}", q.budget);
                assert_ne!(q.source, q.target);
                assert_eq!(q.keywords.len(), set.keyword_count);
                let mut sorted = q.keywords.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, q.keywords, "keywords sorted + deduplicated");
            }
        }
    }

    #[test]
    fn query_keywords_occur_in_the_graph() {
        let world = generate_world(&GenConfig::ring(15, 4, 9));
        let occurs: std::collections::BTreeSet<KeywordId> =
            world.graph.keyword_postings().map(|(_, t)| t).collect();
        for set in &world.query_sets {
            for q in &set.queries {
                for kw in &q.keywords {
                    assert!(occurs.contains(kw), "{kw:?} occurs nowhere");
                }
            }
        }
    }

    #[test]
    fn ring_chord_count_is_exact_even_at_saturation() {
        // A 6-node ring fits exactly 6·3/2 = 9 chords; requesting all of
        // them must yield all of them (the deterministic sweep tops up
        // whatever rejection sampling misses).
        let world = generate_world(&GenConfig::ring(6, 9, 5));
        assert_eq!(world.graph.edge_count(), 2 * (6 + 9));
        // One past the maximum is rejected up front.
        assert!(GenConfig::ring(6, 10, 5).validate().is_err());
    }

    #[test]
    fn set_labels_match_actual_keyword_counts_on_tiny_worlds() {
        // 4 nodes × 1 tag each can carry at most 4 occurring keywords;
        // requesting 10 per query must label the set with what the
        // queries actually hold.
        let cfg = GenConfig {
            vocab_size: 12,
            max_tags_per_node: 1,
            keyword_counts: vec![10],
            queries_per_set: 5,
            ..GenConfig::grid(2, 2, 8)
        };
        let world = generate_world(&cfg);
        let set = &world.query_sets[0];
        assert!(set.keyword_count >= 1 && set.keyword_count <= 4);
        for q in &set.queries {
            assert_eq!(q.keywords.len(), set.keyword_count);
        }
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        assert!(GenConfig::grid(1, 5, 0).validate().is_err());
        assert!(GenConfig::ring(2, 0, 0).validate().is_err());
        for bad in [
            GenConfig {
                vocab_size: 0,
                ..GenConfig::grid(4, 4, 0)
            },
            GenConfig {
                max_tags_per_node: 0,
                ..GenConfig::grid(4, 4, 0)
            },
            GenConfig {
                weight_jitter: 1.0,
                ..GenConfig::grid(4, 4, 0)
            },
            GenConfig {
                budget_tightness: 0.0,
                ..GenConfig::grid(4, 4, 0)
            },
            GenConfig {
                keyword_counts: vec![0],
                ..GenConfig::grid(4, 4, 0)
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
        assert!(GenConfig::grid(4, 4, 0).validate().is_ok());
    }
}
