//! Query workload generation (§4.1: "5 query sets … the number of
//! keywords are 2, 4, 6, 8, and 10 … starting and ending locations are
//! selected randomly. Each set comprises 50 queries.").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kor_graph::{Graph, KeywordId, NodeId};
use kor_index::InvertedIndex;

fn euclidean(graph: &Graph, a: NodeId, b: NodeId) -> Option<f64> {
    let (x1, y1) = graph.position(a)?;
    let (x2, y2) = graph.position(b)?;
    Some(((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt())
}

/// One query skeleton; combine with a budget `Δ` to form a full KOR
/// query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpec {
    /// Source location.
    pub source: NodeId,
    /// Target location.
    pub target: NodeId,
    /// Query keywords.
    pub keywords: Vec<KeywordId>,
}

/// A named set of query skeletons sharing a keyword count.
#[derive(Debug, Clone)]
pub struct QuerySet {
    /// Number of keywords per query.
    pub keyword_count: usize,
    /// The query skeletons.
    pub queries: Vec<QuerySpec>,
}

/// A fully-specified KOR query — a [`QuerySpec`] plus its budget `Δ` —
/// as stored ("canned") inside binary dataset snapshots so every front
/// end replays the exact same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct CannedQuery {
    /// Source location.
    pub source: NodeId,
    /// Target location.
    pub target: NodeId,
    /// Query keywords (sorted, deduplicated).
    pub keywords: Vec<KeywordId>,
    /// Budget limit `Δ`.
    pub budget: f64,
}

/// A named set of canned queries sharing a keyword count.
#[derive(Debug, Clone, PartialEq)]
pub struct CannedQuerySet {
    /// Number of keywords per query.
    pub keyword_count: usize,
    /// The queries.
    pub queries: Vec<CannedQuery>,
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Keyword counts, one query set per entry (paper: 2, 4, 6, 8, 10).
    pub keyword_counts: Vec<usize>,
    /// Queries per set (paper: 50).
    pub queries_per_set: usize,
    /// Sample keywords proportionally to document frequency (realistic:
    /// people ask for common categories) instead of uniformly.
    pub frequency_weighted: bool,
    /// When set and the graph has positions, resample endpoint pairs
    /// until their Euclidean distance is at most this (keeps a Δ sweep in
    /// km meaningful: the paper's day trips stay within the city core).
    pub max_euclidean_km: Option<f64>,
    /// Exclude keywords occurring in fewer than this fraction of nodes
    /// from the query pool (people query common categories; a keyword
    /// that exists at one location citywide makes almost every budget
    /// infeasible). 0 disables the floor.
    pub min_doc_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            keyword_counts: vec![2, 4, 6, 8, 10],
            queries_per_set: 50,
            frequency_weighted: true,
            max_euclidean_km: None,
            min_doc_fraction: 0.0,
            seed: 42,
        }
    }
}

/// Generates the query sets for a graph.
///
/// Endpoints are sampled uniformly from nodes with at least one outgoing
/// (source) / incoming (target) edge; keywords are drawn from the
/// vocabulary restricted to keywords that actually occur.
pub fn generate_workload(
    graph: &Graph,
    index: &InvertedIndex,
    config: &WorkloadConfig,
) -> Vec<QuerySet> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sources: Vec<NodeId> = graph.nodes().filter(|&v| graph.out_degree(v) > 0).collect();
    let targets: Vec<NodeId> = graph.nodes().filter(|&v| graph.in_degree(v) > 0).collect();
    // Keyword pool with cumulative document-frequency weights.
    let floor = (config.min_doc_fraction * graph.node_count() as f64).ceil() as usize;
    let mut pool: Vec<(KeywordId, usize)> = index
        .iter()
        .map(|(k, p)| (k, p.len()))
        .filter(|&(_, df)| df >= floor)
        .collect();
    if pool.is_empty() {
        // Degenerate floor: fall back to the full vocabulary.
        pool = index.iter().map(|(k, p)| (k, p.len())).collect();
    }
    let mut cumulative: Vec<f64> = Vec::with_capacity(pool.len());
    let mut acc = 0.0;
    for (_, df) in &pool {
        acc += if config.frequency_weighted {
            *df as f64
        } else {
            1.0
        };
        cumulative.push(acc);
    }

    config
        .keyword_counts
        .iter()
        .map(|&m| {
            let queries = (0..config.queries_per_set)
                .map(|_| {
                    let (source, target) = {
                        let mut tries = 0;
                        loop {
                            let s = sources[rng.gen_range(0..sources.len())];
                            let t = targets[rng.gen_range(0..targets.len())];
                            tries += 1;
                            if t == s && targets.len() > 1 {
                                continue;
                            }
                            let close_enough = match config.max_euclidean_km {
                                Some(cap) if tries < 10_000 => {
                                    euclidean(graph, s, t).is_none_or(|d| d <= cap)
                                }
                                _ => true,
                            };
                            if close_enough {
                                break (s, t);
                            }
                        }
                    };
                    let mut keywords: Vec<KeywordId> = Vec::with_capacity(m);
                    let mut guard = 0;
                    while keywords.len() < m.min(pool.len()) {
                        let x = rng.gen_range(0.0..acc);
                        let at = cumulative.partition_point(|&c| c <= x);
                        let kw = pool[at].0;
                        if !keywords.contains(&kw) {
                            keywords.push(kw);
                        }
                        guard += 1;
                        if guard > 10_000 {
                            break; // tiny vocabularies: accept fewer
                        }
                    }
                    keywords.sort_unstable();
                    QuerySpec {
                        source,
                        target,
                        keywords,
                    }
                })
                .collect();
            QuerySet {
                keyword_count: m,
                queries,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roadnet::{generate_roadnet, RoadNetConfig};

    fn setup() -> (Graph, InvertedIndex) {
        let g = generate_roadnet(&RoadNetConfig::small());
        let idx = InvertedIndex::build(&g);
        (g, idx)
    }

    #[test]
    fn generates_requested_sets() {
        let (g, idx) = setup();
        let sets = generate_workload(&g, &idx, &WorkloadConfig::default());
        assert_eq!(sets.len(), 5);
        for (set, m) in sets.iter().zip([2usize, 4, 6, 8, 10]) {
            assert_eq!(set.keyword_count, m);
            assert_eq!(set.queries.len(), 50);
            for q in &set.queries {
                assert_eq!(q.keywords.len(), m);
                assert_ne!(q.source, q.target);
                // keywords must exist in the graph's vocabulary postings
                for &kw in &q.keywords {
                    assert!(idx.doc_frequency(kw) > 0);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, idx) = setup();
        let a = generate_workload(&g, &idx, &WorkloadConfig::default());
        let b = generate_workload(&g, &idx, &WorkloadConfig::default());
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.queries, sb.queries);
        }
        let c = generate_workload(
            &g,
            &idx,
            &WorkloadConfig {
                seed: 1,
                ..Default::default()
            },
        );
        assert_ne!(a[0].queries, c[0].queries);
    }

    #[test]
    fn frequency_weighting_prefers_common_tags() {
        let (g, idx) = setup();
        let weighted = generate_workload(
            &g,
            &idx,
            &WorkloadConfig {
                keyword_counts: vec![2],
                queries_per_set: 200,
                frequency_weighted: true,
                max_euclidean_km: None,
                min_doc_fraction: 0.0,
                seed: 5,
            },
        );
        let uniform = generate_workload(
            &g,
            &idx,
            &WorkloadConfig {
                keyword_counts: vec![2],
                queries_per_set: 200,
                frequency_weighted: false,
                max_euclidean_km: None,
                min_doc_fraction: 0.0,
                seed: 5,
            },
        );
        let avg_df = |sets: &[QuerySet]| -> f64 {
            let mut total = 0usize;
            let mut n = 0usize;
            for q in &sets[0].queries {
                for &kw in &q.keywords {
                    total += idx.doc_frequency(kw);
                    n += 1;
                }
            }
            total as f64 / n as f64
        };
        assert!(avg_df(&weighted) > avg_df(&uniform));
    }

    #[test]
    fn keyword_lists_are_sorted_unique() {
        let (g, idx) = setup();
        let sets = generate_workload(&g, &idx, &WorkloadConfig::default());
        for set in &sets {
            for q in &set.queries {
                let mut sorted = q.keywords.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted, q.keywords);
            }
        }
    }
}
