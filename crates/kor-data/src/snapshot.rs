//! The `.korbin` versioned binary snapshot format.
//!
//! One file carries a whole *world* — the CSR graph, the keyword
//! postings, and optional canned query sets — so a single artifact feeds
//! every front end (`kor gen` → `kor serve` / `kor batch` / `kor bench`)
//! without re-parsing text or re-deriving workloads. Loading is O(V + E)
//! straight into [`Graph::from_csr_parts`], which re-validates every
//! builder invariant, so a corrupt file can never produce a graph the
//! rest of the system could not have built.
//!
//! # Layout (all integers and floats little-endian)
//!
//! ```text
//! magic    8 bytes  b"KORBIN\r\n"   (the \r\n catches text-mode mangling)
//! version  u32      currently 1
//! sections u32      section count
//! section  ×N       tag [u8;4] · payload_len u64 · payload · crc32 u32
//! ```
//!
//! Sections, in fixed order (unknown tags are rejected):
//!
//! | tag    | payload |
//! |--------|---------|
//! | `GRPH` | `node_count u32 · edge_count u32 · has_positions u8 · out_offsets (n+1)×u32 · out_targets m×u32 · out_objective m×f64 · out_budget m×f64 · positions n×(f64,f64) if flagged` |
//! | `VOCB` | `term_count u32 · (len u32 · UTF-8 bytes) × terms` (id order) |
//! | `POST` | `node_count u32 · (count u32 · keyword_id u32 × count) × nodes` |
//! | `QRYS` | `set_count u32 · (keyword_count u32 · n u32 · (source u32 · target u32 · budget f64 · k u32 · keyword_id u32 × k) × n) × sets` |
//! | `SHRD` | `shard_count u32 · node_count u32 · assignment n×u32` — only in sharded snapshots |
//! | `BNDR` | `cut_count u32 · (source u32 · target u32 · objective f64 · budget f64) × cuts · escape n×f64 · enter n×f64` — only with `SHRD` |
//!
//! `SHRD` and `BNDR` appear together or not at all: the boundary summary
//! is meaningless without the assignment and vice versa. On read, both
//! are re-validated against the graph (dense non-empty shard ids, the
//! cut-edge list and escape/enter tables recomputed and compared
//! bit-for-bit), so a tampered summary can never weaken the router's
//! confinement proof.
//!
//! Each section checksum is IEEE CRC-32 of its payload. Writing the same
//! in-memory [`Snapshot`] always produces the same bytes (fixed section
//! and iteration order, IEEE-754 bit patterns), which is what makes
//! `kor gen --seed N` byte-reproducible and `kor shard` shard layouts
//! byte-reproducible with it.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use kor_graph::{Graph, GraphError, KeywordId, KeywordSet, NodeId, Vocab};

use crate::queries::{CannedQuery, CannedQuerySet};
use crate::shard::{validate_sharding, CutEdge, ShardingInfo};

/// File magic: `KORBIN` plus a CRLF that breaks if the file ever passes
/// through newline translation.
pub const MAGIC: [u8; 8] = *b"KORBIN\r\n";

/// Current format version.
pub const VERSION: u32 = 1;

const TAG_GRAPH: [u8; 4] = *b"GRPH";
const TAG_VOCAB: [u8; 4] = *b"VOCB";
const TAG_POSTINGS: [u8; 4] = *b"POST";
const TAG_QUERIES: [u8; 4] = *b"QRYS";
const TAG_SHARDS: [u8; 4] = *b"SHRD";
const TAG_BOUNDARY: [u8; 4] = *b"BNDR";

/// A world: the graph plus the canned query sets generated with it, and
/// optionally a shard layout produced by `kor shard`.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The road-network graph.
    pub graph: Graph,
    /// Canned query sets (possibly empty) replayed by the batch front
    /// end and the oracle cross-validation tests.
    pub query_sets: Vec<CannedQuerySet>,
    /// The shard layout (`SHRD` + `BNDR` sections), present only in
    /// sharded snapshots. The graph and query sections are byte-wise
    /// unchanged by sharding, so a sharded snapshot feeds non-sharded
    /// front ends identically.
    pub sharding: Option<ShardingInfo>,
}

impl Snapshot {
    /// Wraps a graph with no canned queries.
    pub fn graph_only(graph: Graph) -> Snapshot {
        Snapshot {
            graph,
            query_sets: Vec::new(),
            sharding: None,
        }
    }

    /// Total canned queries across all sets.
    pub fn query_count(&self) -> usize {
        self.query_sets.iter().map(|s| s.queries.len()).sum()
    }
}

/// Why a snapshot could not be read (or written). Every malformed input
/// maps to a typed error — no panic paths.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file I/O failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`VERSION`].
    UnsupportedVersion(u32),
    /// The file ends before the named piece of data.
    Truncated(String),
    /// A section's CRC-32 does not match its payload.
    ChecksumMismatch {
        /// The four-character section tag.
        section: String,
    },
    /// Structurally invalid content (bad tag, count, or value).
    Corrupt(String),
    /// The decoded CSR arrays fail graph validation.
    Graph(GraphError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a .korbin snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::Truncated(what) => write!(f, "snapshot truncated reading {what}"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section:?}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
            SnapshotError::Graph(e) => write!(f, "snapshot graph invalid: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<GraphError> for SnapshotError {
    fn from(e: GraphError) -> Self {
        SnapshotError::Graph(e)
    }
}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (shared with the mutation journal, whose
/// chained record checksums use the same polynomial).
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------- writing

struct SectionWriter {
    out: Vec<u8>,
}

impl SectionWriter {
    fn new() -> Self {
        Self { out: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

pub(crate) fn graph_section(graph: &Graph) -> Vec<u8> {
    let csr = graph.csr();
    let mut w = SectionWriter::new();
    w.u32(graph.node_count() as u32);
    w.u32(graph.edge_count() as u32);
    w.u8(u8::from(graph.has_positions()));
    for &off in csr.out_offsets {
        w.u32(off);
    }
    for t in csr.out_targets {
        w.u32(t.0);
    }
    for &o in csr.out_objective {
        w.f64(o);
    }
    for &b in csr.out_budget {
        w.f64(b);
    }
    if let Some(positions) = graph.positions() {
        for &(x, y) in positions {
            w.f64(x);
            w.f64(y);
        }
    }
    w.out
}

fn vocab_section(vocab: &Vocab) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.u32(vocab.len() as u32);
    for (_, term) in vocab.iter() {
        w.u32(term.len() as u32);
        w.out.extend_from_slice(term.as_bytes());
    }
    w.out
}

fn postings_section(graph: &Graph) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.u32(graph.node_count() as u32);
    for v in graph.nodes() {
        let set = graph.keywords(v);
        w.u32(set.len() as u32);
        for t in set.iter() {
            w.u32(t.0);
        }
    }
    w.out
}

fn queries_section(sets: &[CannedQuerySet]) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.u32(sets.len() as u32);
    for set in sets {
        w.u32(set.keyword_count as u32);
        w.u32(set.queries.len() as u32);
        for q in &set.queries {
            w.u32(q.source.0);
            w.u32(q.target.0);
            w.f64(q.budget);
            w.u32(q.keywords.len() as u32);
            for t in &q.keywords {
                w.u32(t.0);
            }
        }
    }
    w.out
}

fn shards_section(info: &ShardingInfo) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.u32(info.shard_count);
    w.u32(info.assignment.len() as u32);
    for &s in &info.assignment {
        w.u32(s);
    }
    w.out
}

fn boundary_section(info: &ShardingInfo) -> Vec<u8> {
    let mut w = SectionWriter::new();
    w.u32(info.cut_edges.len() as u32);
    for cut in &info.cut_edges {
        w.u32(cut.source.0);
        w.u32(cut.target.0);
        w.f64(cut.objective);
        w.f64(cut.budget);
    }
    for &d in &info.escape {
        w.f64(d);
    }
    for &d in &info.enter {
        w.f64(d);
    }
    w.out
}

/// Serializes a snapshot to its canonical byte form.
pub fn snapshot_to_bytes(snapshot: &Snapshot) -> Vec<u8> {
    let mut sections: Vec<([u8; 4], Vec<u8>)> = vec![
        (TAG_GRAPH, graph_section(&snapshot.graph)),
        (TAG_VOCAB, vocab_section(snapshot.graph.vocab())),
        (TAG_POSTINGS, postings_section(&snapshot.graph)),
        (TAG_QUERIES, queries_section(&snapshot.query_sets)),
    ];
    if let Some(info) = &snapshot.sharding {
        sections.push((TAG_SHARDS, shards_section(info)));
        sections.push((TAG_BOUNDARY, boundary_section(info)));
    }
    let mut out = Vec::with_capacity(
        MAGIC.len() + 8 + sections.iter().map(|(_, p)| p.len() + 16).sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (tag, payload) in &sections {
        out.extend_from_slice(tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&crc32(payload).to_le_bytes());
    }
    out
}

/// Writes a snapshot to `path` in the `.korbin` format.
pub fn write_snapshot(path: &Path, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    fs::write(path, snapshot_to_bytes(snapshot))?;
    Ok(())
}

// ---------------------------------------------------------------- reading

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated(what.to_string()));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    /// A count that is about to size an allocation of `elem_bytes`-sized
    /// items: rejected up front unless the remaining payload could
    /// actually hold that many, so a corrupt length can never trigger an
    /// absurd allocation.
    fn count(&mut self, elem_bytes: usize, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u32(what)? as usize;
        if n.saturating_mul(elem_bytes) > self.remaining() {
            return Err(SnapshotError::Truncated(what.to_string()));
        }
        Ok(n)
    }
}

fn parse_graph_section(
    payload: &[u8],
    vocab: Vocab,
    keywords: Vec<KeywordSet>,
) -> Result<Graph, SnapshotError> {
    let mut c = Cursor::new(payload);
    let n = c.u32("node count")? as usize;
    let m = c.u32("edge count")? as usize;
    let has_positions = match c.u8("position flag")? {
        0 => false,
        1 => true,
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "position flag must be 0 or 1, got {other}"
            )))
        }
    };
    if keywords.len() != n {
        return Err(SnapshotError::Corrupt(format!(
            "postings cover {} nodes but the graph has {n}",
            keywords.len()
        )));
    }
    // Fixed-size region check up front: (n+1) offsets + m targets as
    // u32, 2m weights as f64, optionally 2n position floats.
    let need = (n + 1) * 4 + m * 4 + m * 16 + if has_positions { n * 16 } else { 0 };
    if c.remaining() < need {
        return Err(SnapshotError::Truncated("graph arrays".into()));
    }
    let mut out_offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        out_offsets.push(c.u32("offset")?);
    }
    let mut out_targets = Vec::with_capacity(m);
    for _ in 0..m {
        out_targets.push(NodeId(c.u32("edge target")?));
    }
    let mut out_objective = Vec::with_capacity(m);
    for _ in 0..m {
        out_objective.push(c.f64("edge objective")?);
    }
    let mut out_budget = Vec::with_capacity(m);
    for _ in 0..m {
        out_budget.push(c.f64("edge budget")?);
    }
    let positions = if has_positions {
        let mut p = Vec::with_capacity(n);
        for _ in 0..n {
            let x = c.f64("position x")?;
            let y = c.f64("position y")?;
            p.push((x, y));
        }
        Some(p)
    } else {
        None
    };
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in graph section",
            c.remaining()
        )));
    }
    Ok(Graph::from_csr_parts(
        out_offsets,
        out_targets,
        out_objective,
        out_budget,
        keywords,
        positions,
        vocab,
    )?)
}

fn parse_vocab_section(payload: &[u8]) -> Result<Vocab, SnapshotError> {
    let mut c = Cursor::new(payload);
    let count = c.count(4, "vocabulary size")?;
    let mut vocab = Vocab::new();
    for _ in 0..count {
        let len = c.u32("term length")? as usize;
        let bytes = c.take(len, "term bytes")?;
        let term = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("vocabulary term is not UTF-8".into()))?;
        vocab.intern(term);
    }
    if vocab.len() != count {
        return Err(SnapshotError::Corrupt(
            "duplicate vocabulary term (ids would shift)".into(),
        ));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in vocabulary section",
            c.remaining()
        )));
    }
    Ok(vocab)
}

fn parse_postings_section(payload: &[u8]) -> Result<Vec<KeywordSet>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let n = c.count(4, "postings node count")?;
    let mut keywords = Vec::with_capacity(n);
    for _ in 0..n {
        let k = c.count(4, "node keyword count")?;
        let mut ids = Vec::with_capacity(k);
        for _ in 0..k {
            ids.push(KeywordId(c.u32("keyword id")?));
        }
        keywords.push(KeywordSet::new(ids));
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in postings section",
            c.remaining()
        )));
    }
    Ok(keywords)
}

fn parse_queries_section(payload: &[u8]) -> Result<Vec<CannedQuerySet>, SnapshotError> {
    let mut c = Cursor::new(payload);
    let sets = c.count(8, "query set count")?;
    let mut out = Vec::with_capacity(sets);
    for _ in 0..sets {
        let keyword_count = c.u32("set keyword count")? as usize;
        let n = c.count(20, "query count")?;
        let mut queries = Vec::with_capacity(n);
        for _ in 0..n {
            let source = NodeId(c.u32("query source")?);
            let target = NodeId(c.u32("query target")?);
            let budget = c.f64("query budget")?;
            if !budget.is_finite() || budget < 0.0 {
                return Err(SnapshotError::Corrupt(format!(
                    "query budget {budget} must be finite and ≥ 0"
                )));
            }
            let k = c.count(4, "query keyword count")?;
            let mut keywords = Vec::with_capacity(k);
            for _ in 0..k {
                keywords.push(KeywordId(c.u32("query keyword")?));
            }
            queries.push(CannedQuery {
                source,
                target,
                keywords,
                budget,
            });
        }
        out.push(CannedQuerySet {
            keyword_count,
            queries,
        });
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in query section",
            c.remaining()
        )));
    }
    Ok(out)
}

fn parse_shards_section(payload: &[u8]) -> Result<(u32, Vec<u32>), SnapshotError> {
    let mut c = Cursor::new(payload);
    let shard_count = c.u32("shard count")?;
    let n = c.count(4, "shard assignment length")?;
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        assignment.push(c.u32("shard assignment")?);
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in shard section",
            c.remaining()
        )));
    }
    Ok((shard_count, assignment))
}

/// Parsed `BNDR` payload: the cut-edge list plus the escape/enter tables.
type BoundaryParts = (Vec<CutEdge>, Vec<f64>, Vec<f64>);

fn parse_boundary_section(
    payload: &[u8],
    node_count: usize,
) -> Result<BoundaryParts, SnapshotError> {
    let mut c = Cursor::new(payload);
    let cuts = c.count(24, "cut edge count")?;
    let mut cut_edges = Vec::with_capacity(cuts);
    for _ in 0..cuts {
        let source = NodeId(c.u32("cut edge source")?);
        let target = NodeId(c.u32("cut edge target")?);
        let objective = c.f64("cut edge objective")?;
        let budget = c.f64("cut edge budget")?;
        cut_edges.push(CutEdge {
            source,
            target,
            objective,
            budget,
        });
    }
    let mut read_table = |what: &str| -> Result<Vec<f64>, SnapshotError> {
        let mut table = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let d = c.f64(what)?;
            if d.is_nan() || d < 0.0 {
                return Err(SnapshotError::Corrupt(format!(
                    "{what} must be non-negative, got {d}"
                )));
            }
            table.push(d);
        }
        Ok(table)
    };
    let escape = read_table("escape distance")?;
    let enter = read_table("enter distance")?;
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes in boundary section",
            c.remaining()
        )));
    }
    Ok((cut_edges, escape, enter))
}

/// Parses a snapshot from its byte form.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut c = Cursor::new(bytes);
    if c.take(8, "magic").map_err(|_| SnapshotError::BadMagic)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = c.u32("version")?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let section_count = c.u32("section count")?;

    let mut graph_payload: Option<&[u8]> = None;
    let mut vocab_payload: Option<&[u8]> = None;
    let mut postings_payload: Option<&[u8]> = None;
    let mut queries_payload: Option<&[u8]> = None;
    let mut shards_payload: Option<&[u8]> = None;
    let mut boundary_payload: Option<&[u8]> = None;
    for _ in 0..section_count {
        let tag: [u8; 4] = c.take(4, "section tag")?.try_into().unwrap();
        let len = c.u64("section length")? as usize;
        let payload = c.take(len, "section payload")?;
        let stored = c.u32("section checksum")?;
        if crc32(payload) != stored {
            return Err(SnapshotError::ChecksumMismatch {
                section: String::from_utf8_lossy(&tag).into_owned(),
            });
        }
        let slot = match tag {
            TAG_GRAPH => &mut graph_payload,
            TAG_VOCAB => &mut vocab_payload,
            TAG_POSTINGS => &mut postings_payload,
            TAG_QUERIES => &mut queries_payload,
            TAG_SHARDS => &mut shards_payload,
            TAG_BOUNDARY => &mut boundary_payload,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown section tag {:?}",
                    String::from_utf8_lossy(&other)
                )))
            }
        };
        if slot.replace(payload).is_some() {
            return Err(SnapshotError::Corrupt(format!(
                "duplicate section {:?}",
                String::from_utf8_lossy(&tag)
            )));
        }
    }
    if c.remaining() != 0 {
        return Err(SnapshotError::Corrupt(format!(
            "{} trailing bytes after the last section",
            c.remaining()
        )));
    }

    let missing = |name: &str| SnapshotError::Corrupt(format!("missing section {name:?}"));
    let vocab = parse_vocab_section(vocab_payload.ok_or_else(|| missing("VOCB"))?)?;
    let keywords = parse_postings_section(postings_payload.ok_or_else(|| missing("POST"))?)?;
    let graph = parse_graph_section(
        graph_payload.ok_or_else(|| missing("GRPH"))?,
        vocab,
        keywords,
    )?;
    let query_sets = match queries_payload {
        Some(p) => parse_queries_section(p)?,
        None => Vec::new(),
    };
    // Canned queries must reference the graph they ship with.
    for set in &query_sets {
        for q in &set.queries {
            if !graph.contains(q.source) || !graph.contains(q.target) {
                return Err(SnapshotError::Corrupt(format!(
                    "canned query endpoint out of range ({} -> {})",
                    q.source, q.target
                )));
            }
            for t in &q.keywords {
                if t.index() >= graph.vocab().len() {
                    return Err(SnapshotError::Corrupt(format!(
                        "canned query keyword id {} outside the vocabulary",
                        t.0
                    )));
                }
            }
        }
    }
    let sharding = match (shards_payload, boundary_payload) {
        (None, None) => None,
        (Some(_), None) => {
            return Err(SnapshotError::Corrupt(
                "section \"SHRD\" present without \"BNDR\"".into(),
            ))
        }
        (None, Some(_)) => {
            return Err(SnapshotError::Corrupt(
                "section \"BNDR\" present without \"SHRD\"".into(),
            ))
        }
        (Some(shards), Some(boundary)) => {
            let (shard_count, assignment) = parse_shards_section(shards)?;
            let (cut_edges, escape, enter) = parse_boundary_section(boundary, graph.node_count())?;
            let info = ShardingInfo {
                shard_count,
                assignment,
                cut_edges,
                escape,
                enter,
            };
            // The summary feeds the router's confinement proof, so it
            // must be *exactly* what the assignment implies — recomputed
            // and compared bit-for-bit, like every other invariant here.
            validate_sharding(&graph, &info)
                .map_err(|msg| SnapshotError::Corrupt(format!("shard layout: {msg}")))?;
            Some(info)
        }
    };
    Ok(Snapshot {
        graph,
        query_sets,
        sharding,
    })
}

/// Reads a `.korbin` snapshot from `path`.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, SnapshotError> {
    snapshot_from_bytes(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_world, GenConfig};
    use kor_graph::fixtures::figure1;

    fn world() -> Snapshot {
        generate_world(&GenConfig::grid(5, 4, 11))
    }

    #[test]
    fn write_read_write_is_byte_identical() {
        let snap = world();
        let bytes = snapshot_to_bytes(&snap);
        let read = snapshot_from_bytes(&bytes).unwrap();
        let again = snapshot_to_bytes(&read);
        assert_eq!(bytes, again, "write→read→write must be byte-identical");
        assert_eq!(read.graph.node_count(), snap.graph.node_count());
        assert_eq!(read.graph.edge_count(), snap.graph.edge_count());
        assert_eq!(read.query_sets, snap.query_sets);
        // Structure survives, including vocab resolution and positions.
        for v in snap.graph.nodes() {
            assert_eq!(read.graph.keywords(v), snap.graph.keywords(v));
            assert_eq!(read.graph.position(v), snap.graph.position(v));
            let e1: Vec<_> = snap
                .graph
                .out_edges(v)
                .map(|e| (e.node, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            let e2: Vec<_> = read
                .graph
                .out_edges(v)
                .map(|e| (e.node, e.objective.to_bits(), e.budget.to_bits()))
                .collect();
            assert_eq!(e1, e2);
        }
        for (id, term) in snap.graph.vocab().iter() {
            assert_eq!(read.graph.vocab().resolve(id), Some(term));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("kor-snapshot-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.korbin");
        let snap = world();
        write_snapshot(&path, &snap).unwrap();
        let read = read_snapshot(&path).unwrap();
        assert_eq!(snapshot_to_bytes(&read), snapshot_to_bytes(&snap));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn positionless_graph_survives() {
        let snap = Snapshot::graph_only(figure1());
        let read = snapshot_from_bytes(&snapshot_to_bytes(&snap)).unwrap();
        assert!(!read.graph.has_positions());
        assert_eq!(read.graph.node_count(), 8);
        assert_eq!(read.query_count(), 0);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = snapshot_to_bytes(&world());
        bytes[0] = b'X';
        assert!(matches!(
            snapshot_from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
        // A short file is also a magic problem, not a panic.
        assert!(matches!(
            snapshot_from_bytes(b"KOR"),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = snapshot_to_bytes(&world());
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            snapshot_from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_anywhere_is_typed() {
        let bytes = snapshot_to_bytes(&world());
        // Every prefix must fail cleanly with a typed error — never a
        // panic, never a silent partial success.
        for cut in 0..bytes.len() {
            let err = snapshot_from_bytes(&bytes[..cut]).expect_err("prefix must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic
                        | SnapshotError::Truncated(_)
                        | SnapshotError::Corrupt(_)
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn checksum_mismatch_is_typed_and_names_the_section() {
        let snap = world();
        let bytes = snapshot_to_bytes(&snap);
        // Flip one payload byte inside the first (graph) section; its
        // payload begins after magic(8) + version(4) + count(4) +
        // tag(4) + len(8).
        let mut corrupted = bytes.clone();
        corrupted[28] ^= 0xFF;
        match snapshot_from_bytes(&corrupted) {
            Err(SnapshotError::ChecksumMismatch { section }) => assert_eq!(section, "GRPH"),
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_section_and_garbage_counts_are_typed() {
        let snap = world();
        let mut bytes = snapshot_to_bytes(&snap);
        // Rewrite the first section tag to an unknown one (checksum
        // still matches the payload, so the tag check must fire).
        bytes[16..20].copy_from_slice(b"WHAT");
        assert!(matches!(
            snapshot_from_bytes(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    fn sharded_world() -> Snapshot {
        let mut snap = world();
        snap.sharding = Some(crate::shard::compute_sharding(&snap.graph, 2));
        snap
    }

    #[test]
    fn sharded_write_read_write_is_byte_identical() {
        let snap = sharded_world();
        let bytes = snapshot_to_bytes(&snap);
        let read = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(bytes, snapshot_to_bytes(&read));
        let info = read.sharding.expect("shard layout survives");
        assert_eq!(Some(&info), snap.sharding.as_ref());
        assert_eq!(info.assignment.len(), snap.graph.node_count());
    }

    #[test]
    fn sharding_does_not_change_the_unsharded_sections() {
        // `kor shard` appends sections; the graph/vocab/postings/queries
        // bytes must be untouched so the fused engine rebuilt from a
        // sharded snapshot is bit-identical to the unsharded one.
        let plain = snapshot_to_bytes(&world());
        let sharded = snapshot_to_bytes(&sharded_world());
        // The prefix differs only in the section count field.
        assert_eq!(plain[..12], sharded[..12]);
        let mut expected = plain.clone();
        expected[12..16].copy_from_slice(&6u32.to_le_bytes());
        assert_eq!(sharded[..plain.len()], expected[..]);
    }

    #[test]
    fn sharded_truncation_anywhere_is_typed() {
        let bytes = snapshot_to_bytes(&sharded_world());
        for cut in 0..bytes.len() {
            let err = snapshot_from_bytes(&bytes[..cut]).expect_err("prefix must fail");
            assert!(
                matches!(
                    err,
                    SnapshotError::BadMagic
                        | SnapshotError::Truncated(_)
                        | SnapshotError::Corrupt(_)
                        | SnapshotError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn shard_section_without_boundary_is_rejected() {
        // Write a sharded snapshot, then drop the last section (BNDR)
        // by rewriting the section count and truncating.
        let snap = sharded_world();
        let with = snapshot_to_bytes(&snap);
        let without_info = snapshot_to_bytes(&world());
        // BNDR is the final section; SHRD ends where we can compute:
        // everything except the BNDR section's bytes.
        let info = snap.sharding.as_ref().unwrap();
        let bndr_payload = 4 + info.cut_edges.len() * 24 + info.escape.len() * 16;
        let bndr_total = 4 + 8 + bndr_payload + 4;
        let mut bytes = with[..with.len() - bndr_total].to_vec();
        bytes[12..16].copy_from_slice(&5u32.to_le_bytes());
        match snapshot_from_bytes(&bytes) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("SHRD"), "{msg}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        drop(without_info);
    }

    #[test]
    fn tampered_boundary_summary_is_rejected() {
        // Flip the shard of one node inside the SHRD payload (keeping
        // the CRC consistent by recomputing it): validation must catch
        // the now-inconsistent cut-edge list.
        let snap = sharded_world();
        let info = snap.sharding.clone().unwrap();
        let mut tampered = snap.clone();
        let mut bad = info;
        bad.assignment[0] = (bad.assignment[0] + 1) % bad.shard_count;
        tampered.sharding = Some(bad);
        let bytes = snapshot_to_bytes(&tampered);
        match snapshot_from_bytes(&bytes) {
            Err(SnapshotError::Corrupt(msg)) => {
                assert!(msg.contains("shard layout"), "{msg}")
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(SnapshotError::Truncated("edge target".into())
            .to_string()
            .contains("edge target"));
        assert!(SnapshotError::ChecksumMismatch {
            section: "GRPH".into()
        }
        .to_string()
        .contains("GRPH"));
    }
}
