//! Road-network generator (the paper's four scalability datasets).
//!
//! The paper extracts New York road subgraphs of 5k/10k/15k/20k nodes,
//! attaches random Flickr tags to nodes, uses travel distance as the
//! budget and a uniform-(0,1) random objective per edge. We generate
//! random geometric graphs with the same shape: uniform points in a
//! square, bidirectional edges to the k nearest neighbors (road networks
//! have degree ≈ 2–4), a connectivity pass so every query has a chance of
//! being feasible, Euclidean budgets, uniform objectives and Zipf tags.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kor_graph::{Graph, GraphBuilder, KeywordId, NodeId};

use crate::tags::TagModel;

/// Configuration for the road-network generator.
#[derive(Debug, Clone)]
pub struct RoadNetConfig {
    /// Number of nodes (the paper sweeps 5k, 10k, 15k, 20k).
    pub nodes: usize,
    /// Undirected edges per node toward nearest neighbors.
    pub k_neighbors: usize,
    /// Square extent in km (the paper's scalability Δ is 30 km).
    pub area_km: f64,
    /// Tag vocabulary size.
    pub vocab_size: usize,
    /// Zipf exponent for tags.
    pub tag_exponent: f64,
    /// Tags per node: uniform in `1..=max_tags_per_node`.
    pub max_tags_per_node: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RoadNetConfig {
    /// The paper's scalability dataset of the given node count.
    pub fn with_nodes(nodes: usize) -> Self {
        Self {
            nodes,
            k_neighbors: 3,
            area_km: 60.0,
            vocab_size: 9_785,
            tag_exponent: 1.0,
            max_tags_per_node: 6,
            seed: 2012,
        }
    }

    /// Small instance for tests.
    pub fn small() -> Self {
        Self {
            nodes: 300,
            k_neighbors: 3,
            area_km: 20.0,
            vocab_size: 400,
            tag_exponent: 1.0,
            max_tags_per_node: 4,
            seed: 7,
        }
    }
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra as usize] = rb;
        }
    }
}

/// Generates the road network graph (strongly connected by construction:
/// all edges are bidirectional and components are bridged).
pub fn generate_roadnet(config: &RoadNetConfig) -> Graph {
    assert!(config.nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let tags = TagModel::new(config.vocab_size, config.tag_exponent);

    let points: Vec<(f64, f64)> = (0..config.nodes)
        .map(|_| {
            (
                rng.gen_range(0.0..config.area_km),
                rng.gen_range(0.0..config.area_km),
            )
        })
        .collect();

    let mut builder =
        GraphBuilder::with_capacity(config.nodes, config.nodes * config.k_neighbors * 2);
    for name in tags.names() {
        builder.vocab_mut().intern(name);
    }
    for &(x, y) in &points {
        let n_tags = rng.gen_range(1..=config.max_tags_per_node);
        let ids: Vec<KeywordId> = tags
            .sample_distinct(&mut rng, n_tags)
            .into_iter()
            .map(|r| KeywordId(r as u32))
            .collect();
        builder.add_node_ids_at(ids, x, y);
    }

    // Grid buckets with ~1 point per cell accelerate the KNN queries.
    let cell = (config.area_km / (config.nodes as f64).sqrt()).max(1e-9);
    let cols = (config.area_km / cell).ceil() as i64 + 2;
    let mut grid: HashMap<i64, Vec<u32>> = HashMap::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        let key = (y / cell).floor() as i64 * cols + (x / cell).floor() as i64;
        grid.entry(key).or_default().push(i as u32);
    }

    let dist = |a: usize, b: usize| -> f64 {
        let (x1, y1) = points[a];
        let (x2, y2) = points[b];
        ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
    };

    let mut uf = UnionFind::new(config.nodes);
    let add_undirected =
        |builder: &mut GraphBuilder, rng: &mut StdRng, uf: &mut UnionFind, a: usize, b: usize| {
            let (a_id, b_id) = (NodeId(a as u32), NodeId(b as u32));
            let d = dist(a, b).max(1e-6);
            if !builder.has_edge(a_id, b_id) {
                let o = rng.gen_range(1e-6..1.0);
                builder.add_edge(a_id, b_id, o, d).expect("valid edge");
            }
            if !builder.has_edge(b_id, a_id) {
                let o = rng.gen_range(1e-6..1.0);
                builder.add_edge(b_id, a_id, o, d).expect("valid edge");
            }
            uf.union(a as u32, b as u32);
        };

    #[allow(clippy::needless_range_loop)] // i is also the node id
    for i in 0..config.nodes {
        let (x, y) = points[i];
        let (ci, cj) = ((x / cell).floor() as i64, (y / cell).floor() as i64);
        let mut candidates: Vec<u32> = Vec::new();
        let mut radius = 1i64;
        // Expand rings until enough candidates (or the whole grid).
        loop {
            candidates.clear();
            for dj in -radius..=radius {
                for di in -radius..=radius {
                    if let Some(bucket) = grid.get(&((cj + dj) * cols + ci + di)) {
                        candidates.extend(bucket.iter().filter(|&&c| c as usize != i));
                    }
                }
            }
            if candidates.len() >= config.k_neighbors * 3 || radius > 2 * cols {
                break;
            }
            radius += 1;
        }
        candidates.sort_by(|&a, &b| {
            dist(i, a as usize)
                .total_cmp(&dist(i, b as usize))
                .then(a.cmp(&b))
        });
        for &n in candidates.iter().take(config.k_neighbors) {
            add_undirected(&mut builder, &mut rng, &mut uf, i, n as usize);
        }
    }

    // Bridge remaining components: connect each component representative
    // to the next one (adds < #components edges; negligible distortion).
    let mut reps: Vec<u32> = Vec::new();
    for i in 0..config.nodes as u32 {
        if uf.find(i) == i {
            reps.push(i);
        }
    }
    for w in 0..reps.len().saturating_sub(1) {
        let (a, b) = (reps[w] as usize, reps[w + 1] as usize);
        add_undirected(&mut builder, &mut rng, &mut uf, a, b);
    }

    builder.build().expect("generated road network is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_apsp::{backward_tree, Metric};

    #[test]
    fn generates_requested_node_count() {
        let g = generate_roadnet(&RoadNetConfig::small());
        assert_eq!(g.node_count(), 300);
        assert!(g.edge_count() >= 300 * 2, "k-NN should add ≥ 2 edges/node");
        assert!(g.has_positions());
    }

    #[test]
    fn strongly_connected() {
        let g = generate_roadnet(&RoadNetConfig::small());
        // Backward tree from node 0 must reach every node (bidirectional
        // edges + component bridging).
        let tree = backward_tree(&g, Metric::Budget, &[(NodeId(0), 0.0, 0.0)]);
        for v in g.nodes() {
            assert!(tree.is_reachable(v), "{v} cannot reach v0");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g1 = generate_roadnet(&RoadNetConfig::small());
        let g2 = generate_roadnet(&RoadNetConfig::small());
        assert_eq!(g1.node_count(), g2.node_count());
        assert_eq!(g1.edge_count(), g2.edge_count());
        for v in g1.nodes().take(20) {
            let e1: Vec<_> = g1.out_edges(v).map(|e| (e.node, e.objective)).collect();
            let e2: Vec<_> = g2.out_edges(v).map(|e| (e.node, e.objective)).collect();
            assert_eq!(e1, e2);
        }
    }

    #[test]
    fn budgets_are_distances_objectives_in_unit_range() {
        let g = generate_roadnet(&RoadNetConfig::small());
        for v in g.nodes() {
            let (x1, y1) = g.position(v).unwrap();
            for e in g.out_edges(v) {
                let (x2, y2) = g.position(e.node).unwrap();
                let d = ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt().max(1e-6);
                assert!((e.budget - d).abs() < 1e-9);
                assert!(e.objective > 0.0 && e.objective < 1.0);
            }
        }
    }

    #[test]
    fn edges_are_bidirectional() {
        let g = generate_roadnet(&RoadNetConfig::small());
        for v in g.nodes() {
            for e in g.out_edges(v) {
                assert!(
                    g.edge_between(e.node, v).is_some(),
                    "missing reverse of {v}->{}",
                    e.node
                );
            }
        }
    }

    #[test]
    fn degree_resembles_road_networks() {
        let g = generate_roadnet(&RoadNetConfig::small());
        let stats = g.stats();
        assert!(
            stats.avg_out_degree >= 2.0 && stats.avg_out_degree <= 8.0,
            "{stats:?}"
        );
    }
}
