//! Seeded traffic profiles: deterministic, replayable mutation scripts.
//!
//! A profile turns a graph plus a [`TrafficConfig`] into a sequence of
//! *phases*, each one a mutation batch ready for
//! `Graph::apply_mutations` (or the serve `update_edges` method):
//!
//! * **closures** — randomly chosen open edges are removed, modeling
//!   incidents; their original weights are recorded so later phases can
//!   reopen them bit-for-bit;
//! * **slowdowns** — rush-hour multipliers on the *budget* weight of
//!   randomly chosen edges (objective multiplier stays `1.0`), drawn
//!   uniformly from [`TrafficConfig::multiplier_range`];
//! * **reopenings** — when [`TrafficConfig::reopen`] is set, each phase
//!   first reopens a random subset of the currently closed edges with
//!   their recorded original weights.
//!
//! The whole script is a pure function of `(graph, config)`: the same
//! seed replays the same incidents on any machine, which is what lets
//! the mutation oracle battery and the CI smoke step compare a warm
//! engine against a cold rebuild digest-for-digest.

use kor_graph::{EdgeMutation, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs for one seeded traffic profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficConfig {
    /// Seed for the whole script; every phase derives from it.
    pub seed: u64,
    /// Number of mutation batches to generate.
    pub phases: usize,
    /// Edges closed per phase (best effort: fewer if the graph runs out
    /// of open edges).
    pub closures_per_phase: usize,
    /// Edges slowed down per phase (best effort, as above).
    pub slowdowns_per_phase: usize,
    /// Uniform range the budget multiplier is drawn from; both ends
    /// must be finite and positive. Values above `1.0` model rush hour,
    /// below `1.0` recovery.
    pub multiplier_range: (f64, f64),
    /// Whether phases may reopen previously closed edges (with their
    /// recorded original weights).
    pub reopen: bool,
}

impl TrafficConfig {
    /// A small default profile: 3 phases of 2 closures + 3 slowdowns
    /// with multipliers in `[1.2, 3.0]` and reopenings enabled.
    pub fn base(seed: u64) -> Self {
        Self {
            seed,
            phases: 3,
            closures_per_phase: 2,
            slowdowns_per_phase: 3,
            multiplier_range: (1.2, 3.0),
            reopen: true,
        }
    }

    fn validate(&self) {
        let (lo, hi) = self.multiplier_range;
        assert!(
            lo.is_finite() && hi.is_finite() && lo > 0.0 && hi >= lo,
            "multiplier range must be finite, positive, and ordered; got [{lo}, {hi}]"
        );
    }
}

/// One edge of the profile's working set: endpoints plus the original
/// weights (the reopen payload).
#[derive(Debug, Clone, Copy)]
struct ProfileEdge {
    from: NodeId,
    to: NodeId,
    objective: f64,
    budget: f64,
}

/// Generates a deterministic mutation script for `graph`: one batch per
/// phase, each valid against the graph state left by applying all
/// earlier batches in order (closures never target closed edges,
/// reopenings only closed ones, no pair repeats within a batch).
///
/// Pure in `(graph, config)` — same inputs, same script, any machine.
///
/// # Panics
///
/// If `config.multiplier_range` is empty, non-positive, or non-finite.
pub fn generate_traffic(graph: &Graph, config: &TrafficConfig) -> Vec<Vec<EdgeMutation>> {
    config.validate();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Working set of every edge with its original weights; `open`
    // tracks which are currently present as the script unfolds.
    let mut edges: Vec<ProfileEdge> = Vec::with_capacity(graph.edge_count());
    for v in graph.nodes() {
        for e in graph.out_edges(v) {
            edges.push(ProfileEdge {
                from: v,
                to: e.node,
                objective: e.objective,
                budget: e.budget,
            });
        }
    }
    let mut open: Vec<bool> = vec![true; edges.len()];
    let mut closed: Vec<usize> = Vec::new();

    let (lo, hi) = config.multiplier_range;
    let mut script = Vec::with_capacity(config.phases);
    for _ in 0..config.phases {
        let mut batch: Vec<EdgeMutation> = Vec::new();
        // Pairs already mutated in this batch (indices into `edges`);
        // batches must not repeat a pair or they would be rejected.
        let mut used: Vec<usize> = Vec::new();

        if config.reopen && !closed.is_empty() {
            let n_reopen = rng.gen_range(0..=closed.len());
            for _ in 0..n_reopen {
                let pick = rng.gen_range(0..closed.len());
                let idx = closed.swap_remove(pick);
                let e = edges[idx];
                open[idx] = true;
                used.push(idx);
                batch.push(EdgeMutation::reopen(e.from, e.to, e.objective, e.budget));
            }
        }

        // Closures and slowdowns sample open, unused edges; bounded
        // retries keep generation total even on tiny graphs.
        for (want, is_closure) in [
            (config.closures_per_phase, true),
            (config.slowdowns_per_phase, false),
        ] {
            let mut placed = 0;
            let mut attempts = 0;
            while placed < want && attempts < 20 * want.max(1) && !edges.is_empty() {
                attempts += 1;
                let idx = rng.gen_range(0..edges.len());
                if !open[idx] || used.contains(&idx) {
                    continue;
                }
                let e = edges[idx];
                used.push(idx);
                placed += 1;
                if is_closure {
                    open[idx] = false;
                    closed.push(idx);
                    batch.push(EdgeMutation::close(e.from, e.to));
                } else {
                    let m = rng.gen_range(lo..=hi);
                    batch.push(EdgeMutation::scale(e.from, e.to, 1.0, m));
                }
            }
        }
        script.push(batch);
    }
    script
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_world, GenConfig};
    use kor_graph::MutationKind;

    fn world() -> Graph {
        generate_world(&GenConfig::grid(6, 6, 42)).graph
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let g = world();
        let cfg = TrafficConfig::base(7);
        let a = generate_traffic(&g, &cfg);
        let b = generate_traffic(&g, &cfg);
        assert_eq!(a.len(), cfg.phases);
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.len(), pb.len());
            for (ma, mb) in pa.iter().zip(pb) {
                assert_eq!(ma, mb);
            }
        }
        let c = generate_traffic(&g, &TrafficConfig::base(8));
        assert!(
            a.iter().flatten().ne(c.iter().flatten()),
            "different seeds must diverge"
        );
    }

    #[test]
    fn every_phase_applies_cleanly_in_order() {
        let g = world();
        let cfg = TrafficConfig {
            phases: 6,
            ..TrafficConfig::base(13)
        };
        let script = generate_traffic(&g, &cfg);
        let mut current = g.clone();
        let mut saw_close = false;
        let mut saw_scale = false;
        let mut saw_reopen = false;
        for (i, batch) in script.iter().enumerate() {
            for m in batch {
                match m.kind {
                    MutationKind::Close => saw_close = true,
                    MutationKind::Scale { .. } => saw_scale = true,
                    MutationKind::Reopen { .. } => saw_reopen = true,
                }
            }
            current = current
                .apply_mutations(batch)
                .unwrap_or_else(|e| panic!("phase {i} must be valid: {e}"));
            assert_eq!(current.epoch(), (i + 1) as u64);
        }
        assert!(
            saw_close && saw_scale && saw_reopen,
            "profile must exercise all three mutation kinds"
        );
    }

    #[test]
    fn reopen_restores_original_weight_bits() {
        let g = world();
        let cfg = TrafficConfig {
            phases: 8,
            slowdowns_per_phase: 0,
            ..TrafficConfig::base(3)
        };
        let script = generate_traffic(&g, &cfg);
        let mut current = g.clone();
        for batch in &script {
            for m in batch {
                if let MutationKind::Reopen { objective, budget } = m.kind {
                    let orig = g
                        .edge_between(m.from, m.to)
                        .expect("reopened edges existed originally");
                    assert_eq!(objective.to_bits(), orig.objective.to_bits());
                    assert_eq!(budget.to_bits(), orig.budget.to_bits());
                }
            }
            current = current.apply_mutations(batch).unwrap();
        }
    }

    #[test]
    fn reopen_false_never_reopens() {
        let g = world();
        let cfg = TrafficConfig {
            reopen: false,
            phases: 5,
            ..TrafficConfig::base(9)
        };
        for batch in generate_traffic(&g, &cfg) {
            assert!(batch
                .iter()
                .all(|m| !matches!(m.kind, MutationKind::Reopen { .. })));
        }
    }

    #[test]
    #[should_panic(expected = "multiplier range")]
    fn empty_multiplier_range_panics() {
        let g = world();
        let cfg = TrafficConfig {
            multiplier_range: (2.0, 1.0),
            ..TrafficConfig::base(1)
        };
        let _ = generate_traffic(&g, &cfg);
    }
}
