//! Dataset sharding: node assignment, cut-edge boundary summaries, and
//! per-shard subgraphs.
//!
//! A *sharded* world is the same graph split into `N` node groups
//! (shards) plus a boundary summary describing every edge that crosses
//! a shard border. The summary carries, per node, the cheapest budget
//! to *leave* its shard ([`ShardingInfo::escape`]) and to be *reached
//! from outside* it ([`ShardingInfo::enter`]). Together they prove the
//! confinement condition a scatter-gather router needs: for a query
//! `⟨s, t, ψ, Δ⟩` with `s` and `t` in the same shard, any route that
//! leaves the shard spends at least `escape[s] + enter[t]` budget on
//! the excursion, so when that sum exceeds `Δ` every feasible route is
//! confined to the shard and a shard-local search is exhaustive
//! (see [`ShardingInfo::confined`]).
//!
//! The assignment comes from [`kor_apsp::partition`] — a geometric grid
//! cut when the world has positions (the generator's grid/ring
//! topologies), BFS chunks otherwise — folded down to exactly the
//! requested shard count. Everything here is deterministic: the same
//! graph and shard count always produce the same assignment, cut-edge
//! list (node order, then CSR edge order), and boundary distances, which
//! is what makes sharded snapshots byte-reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use kor_graph::{Graph, NodeId};

/// One directed edge whose endpoints live in different shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CutEdge {
    /// Source node (owned by `assignment[source]`).
    pub source: NodeId,
    /// Target node (owned by a different shard).
    pub target: NodeId,
    /// The edge's objective weight, copied from the graph.
    pub objective: f64,
    /// The edge's budget weight, copied from the graph.
    pub budget: f64,
}

/// The shard layout of a world: who owns each node, which edges cross
/// shard borders, and how expensive border crossings are from each node.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingInfo {
    /// Number of shards; ids are dense in `0..shard_count` and every
    /// shard owns at least one node.
    pub shard_count: u32,
    /// `assignment[v] = shard id of node v` (length = node count).
    pub assignment: Vec<u32>,
    /// Every directed edge crossing a shard border, in canonical order
    /// (by source node id, then CSR out-edge order).
    pub cut_edges: Vec<CutEdge>,
    /// `escape[v]`: the smallest budget of any path that starts at `v`,
    /// stays inside `v`'s shard, and then takes one outgoing cut edge —
    /// i.e. the cheapest way for a route at `v` to leave the shard.
    /// `+inf` when the shard has no outgoing cut edge reachable from `v`.
    pub escape: Vec<f64>,
    /// `enter[v]`: the smallest budget from any incoming cut edge of
    /// `v`'s shard to `v`, staying inside the shard after crossing —
    /// i.e. the cheapest way for a route from outside to reach `v`.
    /// `+inf` when unreachable from any incoming cut edge.
    pub enter: Vec<f64>,
}

impl ShardingInfo {
    /// The shard owning `node`.
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.assignment[node.index()]
    }

    /// Number of nodes owned by each shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shard_count as usize];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// The confinement condition: `source` and `target` share a shard
    /// and `escape[source] + enter[target] > budget`, which proves that
    /// every route within the budget stays inside that shard (any
    /// excursion costs at least the cheapest exit from `source`'s
    /// position plus the cheapest re-entry to `target`). When this
    /// holds, a search over the shard subgraph alone is exhaustive.
    pub fn confined(&self, source: NodeId, target: NodeId, budget: f64) -> bool {
        self.assignment[source.index()] == self.assignment[target.index()]
            && self.escape[source.index()] + self.enter[target.index()] > budget
    }
}

/// Computes the full shard layout of `graph` at `shards` shards:
/// assignment via [`kor_apsp::partition`] folded to the requested count,
/// then the canonical cut-edge list and the escape/enter boundary
/// distances. Deterministic for a given graph and count.
pub fn compute_sharding(graph: &Graph, shards: usize) -> ShardingInfo {
    let assignment = shard_assignment(graph, shards);
    sharding_from_assignment(graph, assignment)
}

/// Builds the cut-edge list and boundary distances for an existing
/// `assignment` (shard ids must be dense; every node assigned).
pub fn sharding_from_assignment(graph: &Graph, assignment: Vec<u32>) -> ShardingInfo {
    let shard_count = assignment.iter().copied().max().map_or(0, |m| m + 1);
    let cut_edges = cut_edges(graph, &assignment);
    let (escape, enter) = boundary_budgets(graph, &assignment, &cut_edges);
    ShardingInfo {
        shard_count,
        assignment,
        cut_edges,
        escape,
        enter,
    }
}

/// The per-node shard assignment: [`kor_apsp::partition`] (geometric
/// grid over positions, BFS chunks otherwise) folded down to at most
/// `shards` dense ids. The grid cut can produce more non-empty cells
/// than requested (e.g. 2 requested, 4 quadrants non-empty); folding
/// cell `c` to `c % shards` keeps the count exact whenever the raw cut
/// yields at least `shards` groups, and keeps ids dense either way.
pub fn shard_assignment(graph: &Graph, shards: usize) -> Vec<u32> {
    let shards = shards.max(1) as u32;
    let mut assignment = kor_apsp::partition(graph, shards as usize);
    let raw = assignment.iter().copied().max().map_or(0, |m| m + 1);
    if raw > shards {
        for a in &mut assignment {
            *a %= shards;
        }
    }
    assignment
}

/// Every directed edge whose endpoints are in different shards, in
/// canonical order: source node id ascending, CSR out-edge order within
/// a node.
pub fn cut_edges(graph: &Graph, assignment: &[u32]) -> Vec<CutEdge> {
    let mut cuts = Vec::new();
    for v in graph.nodes() {
        for e in graph.out_edges(v) {
            if assignment[v.index()] != assignment[e.node.index()] {
                cuts.push(CutEdge {
                    source: v,
                    target: e.node,
                    objective: e.objective,
                    budget: e.budget,
                });
            }
        }
    }
    cuts
}

/// Budget-metric Dijkstra keyed by (`f64` bit pattern, node id) —
/// non-negative finite floats order like their bit patterns, and the id
/// tiebreak makes the relaxation order (and thus the result on equal
/// distances) deterministic.
fn heap_key(d: f64, v: NodeId) -> Reverse<(u64, u32)> {
    Reverse((d.to_bits(), v.0))
}

/// Computes the `escape` and `enter` distance tables for `assignment`.
///
/// `escape` is a multi-source Dijkstra on the *reversed* intra-shard
/// edges seeded with `escape[a] ≤ e.budget` for every cut edge
/// `a → b`; `enter` is the forward mirror seeded with
/// `enter[b] ≤ e.budget`. Relaxation never crosses a shard border, so
/// one pass over the whole graph handles every shard at once.
pub fn boundary_budgets(
    graph: &Graph,
    assignment: &[u32],
    cuts: &[CutEdge],
) -> (Vec<f64>, Vec<f64>) {
    let n = graph.node_count();
    let mut escape = vec![f64::INFINITY; n];
    let mut enter = vec![f64::INFINITY; n];
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    for cut in cuts {
        if cut.budget < escape[cut.source.index()] {
            escape[cut.source.index()] = cut.budget;
        }
    }
    for (v, &d) in escape.iter().enumerate() {
        if d.is_finite() {
            heap.push(heap_key(d, NodeId(v as u32)));
        }
    }
    while let Some(Reverse((bits, raw))) = heap.pop() {
        let v = NodeId(raw);
        let d = f64::from_bits(bits);
        if d > escape[v.index()] {
            continue;
        }
        for e in graph.in_edges(v) {
            if assignment[e.node.index()] != assignment[v.index()] {
                continue;
            }
            let cand = d + e.budget;
            if cand < escape[e.node.index()] {
                escape[e.node.index()] = cand;
                heap.push(heap_key(cand, e.node));
            }
        }
    }

    for cut in cuts {
        if cut.budget < enter[cut.target.index()] {
            enter[cut.target.index()] = cut.budget;
        }
    }
    for (v, &d) in enter.iter().enumerate() {
        if d.is_finite() {
            heap.push(heap_key(d, NodeId(v as u32)));
        }
    }
    while let Some(Reverse((bits, raw))) = heap.pop() {
        let v = NodeId(raw);
        let d = f64::from_bits(bits);
        if d > enter[v.index()] {
            continue;
        }
        for e in graph.out_edges(v) {
            if assignment[e.node.index()] != assignment[v.index()] {
                continue;
            }
            let cand = d + e.budget;
            if cand < enter[e.node.index()] {
                enter[e.node.index()] = cand;
                heap.push(heap_key(cand, e.node));
            }
        }
    }

    (escape, enter)
}

/// The subgraph a shard's engine searches: the **full node space** of
/// the original graph (node ids, keyword sets, positions, and the
/// vocabulary are unchanged) with only the edges whose endpoints both
/// belong to `shard`. Keeping every node — non-owned ones simply have
/// no edges — means node ids, query keyword masks, and the Opt-2
/// document-frequency gate are identical to the fused graph's, so a
/// shard-local search differs from the fused search only in the edges
/// it can traverse.
pub fn shard_subgraph(graph: &Graph, assignment: &[u32], shard: u32) -> Graph {
    let n = graph.node_count();
    let mut out_offsets = Vec::with_capacity(n + 1);
    let mut out_targets = Vec::new();
    let mut out_objective = Vec::new();
    let mut out_budget = Vec::new();
    out_offsets.push(0u32);
    for v in graph.nodes() {
        if assignment[v.index()] == shard {
            for e in graph.out_edges(v) {
                if assignment[e.node.index()] == shard {
                    out_targets.push(e.node);
                    out_objective.push(e.objective);
                    out_budget.push(e.budget);
                }
            }
        }
        out_offsets.push(out_targets.len() as u32);
    }
    let keywords = graph.nodes().map(|v| graph.keywords(v).clone()).collect();
    let positions = graph.positions().map(|p| p.to_vec());
    Graph::from_csr_parts(
        out_offsets,
        out_targets,
        out_objective,
        out_budget,
        keywords,
        positions,
        graph.vocab().clone(),
    )
    .expect("a shard subgraph only removes edges from a valid graph")
}

/// Validates a [`ShardingInfo`] against the graph it claims to shard.
/// Used by the snapshot reader so a corrupt or hand-edited sharded
/// `.korbin` can never feed a router a wrong boundary summary (which
/// would silently break the confinement proof). The cut edges and
/// boundary distances are recomputed from the assignment and compared
/// bit-for-bit — both are deterministic functions of it.
pub fn validate_sharding(graph: &Graph, info: &ShardingInfo) -> Result<(), String> {
    let n = graph.node_count();
    if info.assignment.len() != n {
        return Err(format!(
            "shard assignment covers {} nodes but the graph has {n}",
            info.assignment.len()
        ));
    }
    if info.escape.len() != n || info.enter.len() != n {
        return Err(format!(
            "boundary tables cover {}/{} nodes but the graph has {n}",
            info.escape.len(),
            info.enter.len()
        ));
    }
    if info.shard_count == 0 && n > 0 {
        return Err("shard count is 0 for a non-empty graph".into());
    }
    let mut seen = vec![false; info.shard_count as usize];
    for (v, &s) in info.assignment.iter().enumerate() {
        if s >= info.shard_count {
            return Err(format!(
                "node {v} assigned to shard {s} (only {} shards)",
                info.shard_count
            ));
        }
        seen[s as usize] = true;
    }
    if let Some(empty) = seen.iter().position(|&s| !s) {
        return Err(format!("shard {empty} owns no nodes"));
    }
    let expected_cuts = cut_edges(graph, &info.assignment);
    if expected_cuts != info.cut_edges {
        return Err(format!(
            "cut-edge list does not match the assignment ({} stored, {} expected)",
            info.cut_edges.len(),
            expected_cuts.len()
        ));
    }
    let (escape, enter) = boundary_budgets(graph, &info.assignment, &expected_cuts);
    let same = |a: &[f64], b: &[f64]| {
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(x, y)| x.to_bits() == y.to_bits())
    };
    if !same(&escape, &info.escape) || !same(&enter, &info.enter) {
        return Err("boundary distance tables do not match the assignment".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_world, GenConfig};

    fn world() -> Graph {
        generate_world(&GenConfig::grid(6, 5, 7)).graph
    }

    #[test]
    fn assignment_covers_every_node_exactly_once() {
        let g = world();
        for shards in [1, 2, 3, 4, 8] {
            let info = compute_sharding(&g, shards);
            assert_eq!(info.assignment.len(), g.node_count());
            assert!(info.shard_count >= 1 && info.shard_count as usize <= shards.max(1));
            let sizes = info.shard_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), g.node_count());
            assert!(sizes.iter().all(|&s| s > 0), "no shard may be empty");
        }
    }

    #[test]
    fn grid_cut_folds_to_requested_count() {
        // A 2-way split of a positioned world must not silently return
        // the 4 grid quadrants.
        let g = world();
        let info = compute_sharding(&g, 2);
        assert_eq!(info.shard_count, 2);
        let info4 = compute_sharding(&g, 4);
        assert_eq!(info4.shard_count, 4);
    }

    #[test]
    fn cut_edges_are_exactly_the_crossing_edges() {
        let g = world();
        let info = compute_sharding(&g, 4);
        let mut expected = 0;
        for v in g.nodes() {
            for e in g.out_edges(v) {
                let crosses = info.shard_of(v) != info.shard_of(e.node);
                if crosses {
                    expected += 1;
                }
                assert_eq!(
                    info.cut_edges
                        .iter()
                        .any(|c| c.source == v && c.target == e.node),
                    crosses
                );
            }
        }
        assert_eq!(info.cut_edges.len(), expected);
        assert!(expected > 0, "a 4-way split of a grid world cuts edges");
    }

    #[test]
    fn escape_and_enter_are_valid_crossing_bounds() {
        let g = world();
        let info = compute_sharding(&g, 4);
        // Every cut edge's endpoints bound their own tables.
        for cut in &info.cut_edges {
            assert!(info.escape[cut.source.index()] <= cut.budget);
            assert!(info.enter[cut.target.index()] <= cut.budget);
        }
        // Escape relaxes along intra-shard edges: an in-shard edge u → v
        // implies escape[u] ≤ budget(u→v) + escape[v].
        for u in g.nodes() {
            for e in g.out_edges(u) {
                if info.shard_of(u) == info.shard_of(e.node) {
                    assert!(
                        info.escape[u.index()] <= e.budget + info.escape[e.node.index()] + 1e-9
                    );
                    assert!(info.enter[e.node.index()] <= info.enter[u.index()] + e.budget + 1e-9);
                }
            }
        }
    }

    #[test]
    fn single_shard_has_no_boundary() {
        let g = world();
        let info = compute_sharding(&g, 1);
        assert_eq!(info.shard_count, 1);
        assert!(info.cut_edges.is_empty());
        assert!(info.escape.iter().all(|d| d.is_infinite()));
        assert!(info.enter.iter().all(|d| d.is_infinite()));
        // With no way to leave, every (finite-budget) query is confined.
        let v0 = NodeId(0);
        let v1 = NodeId(1);
        assert!(info.confined(v0, v1, 1e18));
    }

    #[test]
    fn subgraph_keeps_node_space_and_drops_cross_edges() {
        let g = world();
        let info = compute_sharding(&g, 4);
        let mut edges = 0;
        for shard in 0..info.shard_count {
            let sub = shard_subgraph(&g, &info.assignment, shard);
            assert_eq!(sub.node_count(), g.node_count());
            assert_eq!(sub.vocab().len(), g.vocab().len());
            for v in g.nodes() {
                assert_eq!(sub.keywords(v), g.keywords(v));
                if info.shard_of(v) != shard {
                    assert_eq!(sub.out_degree(v), 0, "non-owned nodes are edgeless");
                }
            }
            edges += sub.edge_count();
        }
        assert_eq!(
            edges + info.cut_edges.len(),
            g.edge_count(),
            "shard subgraphs + cut edges partition the edge set"
        );
    }

    #[test]
    fn sharding_is_deterministic() {
        let g = world();
        let a = compute_sharding(&g, 4);
        let b = compute_sharding(&g, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn validate_accepts_computed_and_rejects_tampered() {
        let g = world();
        let info = compute_sharding(&g, 4);
        validate_sharding(&g, &info).unwrap();

        let mut wrong_owner = info.clone();
        wrong_owner.assignment[0] = (wrong_owner.assignment[0] + 1) % wrong_owner.shard_count;
        assert!(validate_sharding(&g, &wrong_owner).is_err());

        let mut wrong_escape = info.clone();
        wrong_escape.escape[0] += 1.0;
        assert!(validate_sharding(&g, &wrong_escape).is_err());

        let mut missing_cut = info.clone();
        missing_cut.cut_edges.pop();
        assert!(validate_sharding(&g, &missing_cut).is_err());

        let mut short = info;
        short.assignment.pop();
        assert!(validate_sharding(&g, &short).is_err());
    }

    #[test]
    fn confinement_requires_same_shard_and_budget_margin() {
        let g = world();
        let info = compute_sharding(&g, 2);
        let (mut local_pair, mut cross_pair) = (None, None);
        for a in g.nodes() {
            for b in g.nodes() {
                if a == b {
                    continue;
                }
                if info.shard_of(a) == info.shard_of(b) {
                    local_pair.get_or_insert((a, b));
                } else {
                    cross_pair.get_or_insert((a, b));
                }
            }
        }
        let (s, t) = local_pair.expect("same-shard pair exists");
        // Tiny budget: cheaper than any excursion, so confined.
        assert!(info.confined(s, t, 0.0));
        // A budget beyond any possible excursion is never confined
        // (unless the shard is escape-proof, which a 2-cut grid isn't).
        let huge = info.escape[s.index()] + info.enter[t.index()];
        if huge.is_finite() {
            assert!(!info.confined(s, t, huge));
        }
        let (cs, ct) = cross_pair.expect("cross-shard pair exists");
        assert!(!info.confined(cs, ct, 0.0));
    }
}
