//! The `.korj` append-only mutation journal — crash durability for
//! dynamic worlds.
//!
//! `update_edges` makes a live dataset drift away from its on-disk
//! snapshot; without a journal, a crash silently rewinds the world to
//! epoch 0. The journal closes that hole with classic write-ahead
//! logging: every mutation batch is appended and fsync'd *before* the
//! in-memory graph swap, so any batch a client saw acknowledged is on
//! disk, and recovery replays the journal over the snapshot to land on
//! the exact pre-crash epoch — bit-identical, because mutation replay
//! is deterministic ([`Graph::apply_mutations`]) and the batch encoding
//! preserves `f64` bit patterns ([`EdgeMutation::encode_into`]).
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! magic       8 bytes  b"KORJNL\r\n"
//! version     u32      currently 1
//! base_epoch  u64      epoch of the snapshot this journal extends
//! base_digest u32      structure digest of that snapshot's graph
//! header_crc  u32      CRC-32 of the 24 header bytes above
//! record ×N:
//!   payload_len u32
//!   payload        epoch u64 · count u32 · count × encoded EdgeMutation
//!   crc         u32  CRC-32 of (previous crc as 4 LE bytes ‖ payload)
//! ```
//!
//! Record checksums are *chained* — each CRC folds in the previous
//! record's CRC (the header CRC for the first record) — so records
//! cannot be reordered, spliced between journals, or replayed from an
//! earlier offset without detection. Epochs must also advance by
//! exactly one per record from `base_epoch`, and `base_digest` (a
//! CRC-32 of the base graph's canonical CSR bytes, see
//! [`graph_digest`]) pins the journal to the exact world it extends —
//! replaying it over any other snapshot is a typed error, never a
//! silently wrong world.
//!
//! # Torn tails vs. corruption
//!
//! A crash can leave the final record half-written; that is the normal
//! case recovery exists for, not an error. The reader distinguishes:
//!
//! * **Torn tail** — the byte stream ends inside a record (or inside
//!   the header), or the *final* record is complete but fails its CRC:
//!   reading stops cleanly after the last fully-valid record, and the
//!   torn bytes are reported (and truncated away on [`Journal::open`]).
//!   Truncation at *any* byte offset of a valid journal recovers this
//!   way — the property test below proves every offset.
//! * **Mid-stream corruption** — a record fails its CRC (or decodes
//!   inconsistently, or breaks the epoch chain) while *later* bytes
//!   exist: that is not a crash artifact but real damage, and reading
//!   fails with a typed [`JournalError::Corrupt`] naming the offset.
//!
//! # Checkpoint compaction
//!
//! [`Journal::checkpoint`] bounds replay cost: it writes the current
//! world as `<name>.<epoch>.korbin` beside the journal, then atomically
//! replaces the journal with an empty one whose `base_epoch` is that
//! epoch. Recovery resolves the chain from the journal header: a
//! non-zero `base_epoch` means "load my checkpoint, renumber to
//! `base_epoch`, then replay my records". Both steps are
//! write-temp-then-rename; a crash between them leaves the *old*
//! journal (base epoch and checkpoint intact), so the pre-crash state
//! is still recoverable — stale checkpoints are deleted only after the
//! new journal is durable.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use kor_graph::{EdgeMutation, Graph, MutationError};

use crate::faultpoint::{self, FaultAction};
use crate::snapshot::{crc32, graph_section, snapshot_to_bytes, Snapshot};

/// File magic: `KORJNL` plus a CRLF that breaks if the journal ever
/// passes through newline translation.
pub const JOURNAL_MAGIC: [u8; 8] = *b"KORJNL\r\n";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// magic (8) + version (4) + base_epoch (8) + base_digest (4) +
/// header crc (4).
const HEADER_LEN: usize = 28;

/// Structure digest of a graph: CRC-32 of its canonical CSR byte form
/// (the same bytes the snapshot `GRPH` section stores, epoch excluded).
/// Two graphs share a digest exactly when a snapshot round-trip would
/// make them indistinguishable, which is what binds a journal to the
/// world it extends.
pub fn graph_digest(graph: &Graph) -> u32 {
    crc32(&graph_section(graph))
}

/// Why a journal could not be read, appended to, or replayed.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying file I/O failure (including injected ones).
    Io(io::Error),
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// The journal's version is not [`JOURNAL_VERSION`].
    UnsupportedVersion(u32),
    /// Damage that cannot be a torn tail: a checksum, decode, or epoch
    /// failure with valid data after it, or an inconsistency between
    /// journal and snapshot.
    Corrupt {
        /// Byte offset of the bad record (0 for header problems).
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A journaled batch no longer applies to the graph being
    /// recovered — the snapshot and journal do not belong together.
    Replay {
        /// Epoch of the batch that failed to apply.
        epoch: u64,
        /// The graph's rejection.
        error: MutationError,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a .korj journal (bad magic)"),
            JournalError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported journal version {v} (expected {JOURNAL_VERSION})"
                )
            }
            JournalError::Corrupt { offset, detail } => {
                write!(f, "corrupt journal at byte {offset}: {detail}")
            }
            JournalError::Replay { epoch, error } => {
                write!(f, "journal batch for epoch {epoch} does not apply: {error}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Everything a journal read yields: the valid batches plus how the
/// byte stream ended.
#[derive(Debug, Clone)]
pub struct RecoveredJournal {
    /// Epoch of the snapshot this journal extends (0 unless the journal
    /// was compacted). 0 as well when even the header was torn.
    pub base_epoch: u64,
    /// [`graph_digest`] of the snapshot this journal extends (0 when
    /// the header was torn).
    pub base_digest: u32,
    /// Fully-valid mutation batches in append order, each with the
    /// epoch it produced (`base_epoch + 1, base_epoch + 2, …`).
    pub batches: Vec<(u64, Vec<EdgeMutation>)>,
    /// Length in bytes of the valid prefix (header plus whole records);
    /// 0 when the header itself was torn.
    pub valid_len: u64,
    /// Trailing bytes discarded as a torn tail (0 for a clean file).
    pub torn_bytes: u64,
    /// Chained CRC state after the last valid record, for appending.
    chain_crc: u32,
}

impl RecoveredJournal {
    /// The epoch recovery lands on: the last valid batch's epoch, or
    /// the base epoch for an empty (or fully-torn) journal.
    pub fn recovered_epoch(&self) -> u64 {
        self.batches.last().map_or(self.base_epoch, |(e, _)| *e)
    }
}

fn header_bytes(base_epoch: u64, base_digest: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(&JOURNAL_MAGIC);
    h[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&base_epoch.to_le_bytes());
    h[20..24].copy_from_slice(&base_digest.to_le_bytes());
    let crc = crc32(&h[..24]);
    h[24..28].copy_from_slice(&crc.to_le_bytes());
    h
}

fn encode_record(chain_crc: u32, epoch: u64, batch: &[EdgeMutation]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + batch.len() * 25);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for m in batch {
        m.encode_into(&mut payload);
    }
    let mut chained = Vec::with_capacity(4 + payload.len());
    chained.extend_from_slice(&chain_crc.to_le_bytes());
    chained.extend_from_slice(&payload);
    let crc = crc32(&chained);
    let mut record = Vec::with_capacity(8 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&payload);
    record.extend_from_slice(&crc.to_le_bytes());
    record
}

fn decode_payload(payload: &[u8], offset: u64) -> Result<(u64, Vec<EdgeMutation>), JournalError> {
    let corrupt = |detail: String| JournalError::Corrupt { offset, detail };
    if payload.len() < 12 {
        return Err(corrupt(format!(
            "record payload of {} bytes cannot hold its epoch and count",
            payload.len()
        )));
    }
    let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let mut at = 12;
    let mut batch = Vec::with_capacity(count.min(payload.len() / 9));
    for i in 0..count {
        batch.push(
            EdgeMutation::decode_from(payload, &mut at)
                .map_err(|e| corrupt(format!("mutation {i} of {count}: {e}")))?,
        );
    }
    if at != payload.len() {
        return Err(corrupt(format!(
            "{} trailing bytes after {count} mutations",
            payload.len() - at
        )));
    }
    Ok((epoch, batch))
}

/// Reads a journal byte stream, tolerating a torn tail and rejecting
/// mid-stream corruption (see the module docs for the exact rule).
pub fn read_journal_bytes(bytes: &[u8]) -> Result<RecoveredJournal, JournalError> {
    // Header. A short prefix of a valid header is a torn create — an
    // empty journal for recovery purposes. Short *garbage* is not a
    // journal at all.
    let torn_header = |len: usize| RecoveredJournal {
        base_epoch: 0,
        base_digest: 0,
        batches: Vec::new(),
        valid_len: 0,
        torn_bytes: len as u64,
        chain_crc: 0,
    };
    if bytes.len() < HEADER_LEN {
        if !JOURNAL_MAGIC.starts_with(&bytes[..bytes.len().min(8)]) {
            return Err(JournalError::BadMagic);
        }
        return Ok(torn_header(bytes.len()));
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(JournalError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != JOURNAL_VERSION {
        return Err(JournalError::UnsupportedVersion(version));
    }
    let base_epoch = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let base_digest = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let header_crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    if crc32(&bytes[..24]) != header_crc {
        if bytes.len() == HEADER_LEN {
            // Garbled header with nothing after it: torn create.
            return Ok(torn_header(bytes.len()));
        }
        return Err(JournalError::Corrupt {
            offset: 0,
            detail: "header checksum mismatch with records after it".into(),
        });
    }

    let mut batches = Vec::new();
    let mut chain_crc = header_crc;
    let mut epoch = base_epoch;
    let mut at = HEADER_LEN;
    loop {
        let remaining = bytes.len() - at;
        if remaining == 0 {
            break; // clean end
        }
        let torn = |upto: usize| RecoveredJournal {
            base_epoch,
            base_digest,
            batches: Vec::new(), // placeholder; filled by caller below
            valid_len: upto as u64,
            torn_bytes: (bytes.len() - upto) as u64,
            chain_crc,
        };
        if remaining < 4 {
            let mut r = torn(at);
            r.batches = batches;
            return Ok(r);
        }
        let payload_len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let Some(record_end) = at
            .checked_add(4)
            .and_then(|x| x.checked_add(payload_len))
            .and_then(|x| x.checked_add(4))
            .filter(|&end| end <= bytes.len())
        else {
            // The declared payload runs past EOF: a torn length field
            // or a record cut mid-payload — either way, a torn tail.
            let mut r = torn(at);
            r.batches = batches;
            return Ok(r);
        };
        let payload = &bytes[at + 4..at + 4 + payload_len];
        let stored_crc = u32::from_le_bytes(bytes[record_end - 4..record_end].try_into().unwrap());
        let mut chained = Vec::with_capacity(4 + payload.len());
        chained.extend_from_slice(&chain_crc.to_le_bytes());
        chained.extend_from_slice(payload);
        if crc32(&chained) != stored_crc {
            if record_end == bytes.len() {
                // Garbled final record: torn tail, stop cleanly.
                let mut r = torn(at);
                r.batches = batches;
                return Ok(r);
            }
            return Err(JournalError::Corrupt {
                offset: at as u64,
                detail: "record checksum mismatch with records after it".into(),
            });
        }
        let (record_epoch, batch) = decode_payload(payload, at as u64)?;
        if record_epoch != epoch + 1 {
            return Err(JournalError::Corrupt {
                offset: at as u64,
                detail: format!(
                    "epoch chain broken: record claims epoch {record_epoch} after {epoch}"
                ),
            });
        }
        epoch = record_epoch;
        chain_crc = stored_crc;
        batches.push((record_epoch, batch));
        at = record_end;
    }
    Ok(RecoveredJournal {
        base_epoch,
        base_digest,
        batches,
        valid_len: bytes.len() as u64,
        torn_bytes: 0,
        chain_crc,
    })
}

/// Reads and validates the journal file at `path`.
pub fn read_journal(path: &Path) -> Result<RecoveredJournal, JournalError> {
    read_journal_bytes(&fs::read(path)?)
}

/// Replays recovered batches over `graph`, returning the recovered
/// graph and the number of batches applied.
///
/// A freshly loaded graph is always epoch 0; when the journal's base
/// epoch says it extends a compacted checkpoint, the graph is
/// renumbered to that base first, so the recovered epochs match the
/// pre-crash numbering exactly. A non-zero graph epoch that disagrees
/// with the base epoch means snapshot and journal do not belong
/// together — typed error, never a silently wrong world.
pub fn replay(graph: &Graph, recovered: &RecoveredJournal) -> Result<(Graph, u64), JournalError> {
    let mut g = graph.clone();
    if recovered.valid_len > 0 {
        let digest = graph_digest(&g);
        if digest != recovered.base_digest {
            return Err(JournalError::Corrupt {
                offset: 20,
                detail: format!(
                    "journal extends a world with structure digest {:08x}, \
                     but this graph digests to {digest:08x} — wrong snapshot \
                     (a compacted journal replays over its checkpoint, not \
                     the original dataset)",
                    recovered.base_digest
                ),
            });
        }
        if g.epoch() == 0 && recovered.base_epoch > 0 {
            g.set_epoch(recovered.base_epoch);
        }
        if g.epoch() != recovered.base_epoch {
            return Err(JournalError::Corrupt {
                offset: 12,
                detail: format!(
                    "journal base epoch {} does not match graph epoch {}",
                    recovered.base_epoch,
                    g.epoch()
                ),
            });
        }
    }
    let mut applied = 0u64;
    for (epoch, batch) in &recovered.batches {
        g = g
            .apply_mutations(batch)
            .map_err(|error| JournalError::Replay {
                epoch: *epoch,
                error,
            })?;
        applied += 1;
    }
    Ok((g, applied))
}

/// The journal file for dataset `name` inside `dir`.
pub fn journal_path(dir: &Path, name: &str) -> PathBuf {
    dir.join(format!("{name}.korj"))
}

/// The checkpoint snapshot a compacted journal with this base epoch
/// points at. The epoch is part of the file name so a crash between
/// "write new checkpoint" and "reset journal" leaves the old pair
/// intact and unambiguous.
pub fn checkpoint_path(dir: &Path, name: &str, epoch: u64) -> PathBuf {
    dir.join(format!("{name}.{epoch}.korbin"))
}

fn write_file_durably(path: &Path, bytes: &[u8]) -> io::Result<()> {
    // temp-then-rename so a crash never leaves a half file under the
    // final name; fsync file and directory so the rename is durable.
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// An open, appendable mutation journal. Created by [`Journal::open`]
/// (which also performs torn-tail truncation) and written by
/// [`Journal::append`], which is where the write-ahead contract lives:
/// it returns only after the record is on disk.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    chain_crc: u32,
    base_epoch: u64,
    base_digest: u32,
    epoch: u64,
    records: u64,
}

impl Journal {
    /// Creates (or atomically replaces) the journal at `path` as empty
    /// with the given base epoch and base-graph digest.
    pub fn create(path: &Path, base_epoch: u64, base_digest: u32) -> Result<Journal, JournalError> {
        let header = header_bytes(base_epoch, base_digest);
        write_file_durably(path, &header)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            chain_crc: crc32(&header[..HEADER_LEN - 4]),
            base_epoch,
            base_digest,
            epoch: base_epoch,
            records: 0,
        })
    }

    /// Opens the journal at `path`, creating an empty one (base epoch
    /// 0, the given digest) if the file does not exist. An existing
    /// file is fully validated; a torn tail is truncated away so the
    /// next append starts at the last valid record. Returns the journal
    /// positioned for appending plus everything recovered from it.
    pub fn open(
        path: &Path,
        base_digest: u32,
    ) -> Result<(Journal, RecoveredJournal), JournalError> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let journal = Journal::create(path, 0, base_digest)?;
                let recovered = RecoveredJournal {
                    base_epoch: 0,
                    base_digest,
                    batches: Vec::new(),
                    valid_len: HEADER_LEN as u64,
                    torn_bytes: 0,
                    chain_crc: journal.chain_crc,
                };
                return Ok((journal, recovered));
            }
            Err(e) => return Err(e.into()),
        };
        let recovered = read_journal_bytes(&bytes)?;
        if recovered.valid_len == 0 {
            // Torn header: the journal never durably existed. Recreate.
            let journal = Journal::create(path, 0, base_digest)?;
            return Ok((journal, recovered));
        }
        if recovered.torn_bytes > 0 {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(recovered.valid_len)?;
            f.sync_all()?;
        }
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        let journal = Journal {
            file,
            path: path.to_path_buf(),
            chain_crc: recovered.chain_crc,
            base_epoch: recovered.base_epoch,
            base_digest: recovered.base_digest,
            epoch: recovered.recovered_epoch(),
            records: recovered.batches.len() as u64,
        };
        Ok((journal, recovered))
    }

    /// Epoch of the last durable batch (the base epoch when empty).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Base epoch from the header: the snapshot epoch this journal
    /// extends.
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// Digest of the base world from the header ([`graph_digest`] of the
    /// snapshot this journal extends).
    pub fn base_digest(&self) -> u32 {
        self.base_digest
    }

    /// Number of batches currently in the journal.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one batch and returns only after it is fsync'd — the
    /// write-ahead half of the durability contract. `epoch` must be
    /// exactly one past the journal's current epoch (the epoch the
    /// batch produces).
    ///
    /// Fault points (see [`crate::faultpoint`]): `journal-append` fires
    /// before the write (`io-error` rejects the append and leaves the
    /// file untouched; `torn` writes half the record, flushes, and
    /// aborts; `crash` writes the whole record and aborts without
    /// syncing), and `journal-synced` fires after the fsync (`crash`
    /// aborts with the record durable but unacknowledged).
    pub fn append(&mut self, epoch: u64, batch: &[EdgeMutation]) -> Result<(), JournalError> {
        if epoch != self.epoch + 1 {
            return Err(JournalError::Corrupt {
                offset: self.file.metadata().map(|m| m.len()).unwrap_or(0),
                detail: format!(
                    "append for epoch {epoch} out of order (journal is at {})",
                    self.epoch
                ),
            });
        }
        let record = encode_record(self.chain_crc, epoch, batch);
        match faultpoint::hit("journal-append") {
            Some(FaultAction::IoError) => {
                return Err(JournalError::Io(faultpoint::injected_error(
                    "journal-append",
                )));
            }
            Some(FaultAction::Torn) => {
                // Half a record, durably on disk, then sudden death —
                // the exact artifact torn-tail recovery exists for.
                let half = &record[..record.len() / 2];
                let _ = self.file.write_all(half);
                let _ = self.file.sync_data();
                faultpoint::die("journal-append");
            }
            Some(FaultAction::Crash) => {
                let _ = self.file.write_all(&record);
                faultpoint::die("journal-append");
            }
            Some(FaultAction::Panic) => panic!("fault point \"journal-append\" firing"),
            None => {}
        }
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        if let Some(FaultAction::Crash | FaultAction::Torn) = faultpoint::hit("journal-synced") {
            faultpoint::die("journal-synced");
        }
        self.chain_crc = crc32(
            &[
                &self.chain_crc.to_le_bytes()[..],
                &record[4..record.len() - 4],
            ]
            .concat(),
        );
        self.epoch = epoch;
        self.records += 1;
        Ok(())
    }

    /// Flushes journal bytes to disk. Appends already sync per record,
    /// so this matters only for belt-and-suspenders shutdown paths.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Compacts the journal: writes `world` (which must be the
    /// recovered state at this journal's epoch) as a checkpoint
    /// snapshot beside the journal, then atomically replaces the
    /// journal with an empty one based at that epoch. Returns the
    /// checkpoint path. Stale checkpoints from earlier compactions are
    /// removed only after the new journal is durable, so a crash at any
    /// point leaves a recoverable pair on disk.
    pub fn checkpoint(&mut self, name: &str, world: &Snapshot) -> Result<PathBuf, JournalError> {
        if world.graph.epoch() != self.epoch {
            return Err(JournalError::Corrupt {
                offset: 0,
                detail: format!(
                    "checkpoint world is at epoch {} but the journal is at {}",
                    world.graph.epoch(),
                    self.epoch
                ),
            });
        }
        let dir = self.path.parent().unwrap_or(Path::new(".")).to_path_buf();
        let snap_path = checkpoint_path(&dir, name, self.epoch);
        write_file_durably(&snap_path, &snapshot_to_bytes(world))?;
        *self = Journal::create(&self.path, self.epoch, graph_digest(&world.graph))?;
        // Now that the new (journal, checkpoint) pair is durable, the
        // older checkpoints are unreachable — garbage-collect them.
        let prefix = format!("{name}.");
        if let Ok(entries) = fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let file_name = entry.file_name();
                let Some(file_name) = file_name.to_str() else {
                    continue;
                };
                if let Some(middle) = file_name
                    .strip_prefix(&prefix)
                    .and_then(|rest| rest.strip_suffix(".korbin"))
                {
                    if middle.parse::<u64>().is_ok_and(|e| e != self.epoch) {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        Ok(snap_path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_world, GenConfig};
    use kor_graph::NodeId;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kor-journal-{tag}-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Three deterministic batches that apply to any gen world in
    /// sequence (close an edge, scale another, reopen the closed one).
    fn script(graph: &Graph) -> Vec<Vec<EdgeMutation>> {
        let mut edges = graph
            .nodes()
            .flat_map(|v| {
                graph
                    .out_edges(v)
                    .map(move |e| (v, e.node, e.objective, e.budget))
            })
            .take(2);
        let (a_from, a_to, a_obj, a_bud) = edges.next().unwrap();
        let (b_from, b_to, _, _) = edges.next().unwrap();
        vec![
            vec![EdgeMutation::close(a_from, a_to)],
            vec![EdgeMutation::scale(b_from, b_to, 1.5, 0.75)],
            vec![EdgeMutation::reopen(a_from, a_to, a_obj, a_bud)],
        ]
    }

    fn journal_with_script(dir: &Path, graph: &Graph) -> (PathBuf, Vec<Vec<EdgeMutation>>) {
        let path = journal_path(dir, "w");
        let mut journal = Journal::create(&path, 0, graph_digest(graph)).unwrap();
        let batches = script(graph);
        for (i, batch) in batches.iter().enumerate() {
            journal.append(i as u64 + 1, batch).unwrap();
        }
        (path, batches)
    }

    #[test]
    fn append_read_replay_round_trips_bit_for_bit() {
        let dir = temp_dir("roundtrip");
        let world = generate_world(&GenConfig::grid(5, 4, 3));
        let (path, batches) = journal_with_script(&dir, &world.graph);

        let recovered = read_journal(&path).unwrap();
        assert_eq!(recovered.base_epoch, 0);
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(recovered.recovered_epoch(), 3);
        assert_eq!(
            recovered.batches,
            batches
                .iter()
                .enumerate()
                .map(|(i, b)| (i as u64 + 1, b.clone()))
                .collect::<Vec<_>>()
        );

        let (recovered_graph, applied) = replay(&world.graph, &recovered).unwrap();
        assert_eq!(applied, 3);
        assert_eq!(recovered_graph.epoch(), 3);
        let mut expected = world.graph.clone();
        for batch in &batches {
            expected = expected.apply_mutations(batch).unwrap();
        }
        let (a, b) = (recovered_graph.csr(), expected.csr());
        assert_eq!(a.out_offsets, b.out_offsets);
        assert_eq!(a.out_targets, b.out_targets);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.out_objective), bits(b.out_objective));
        assert_eq!(bits(a.out_budget), bits(b.out_budget));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_at_every_byte_offset_recovers_cleanly() {
        let dir = temp_dir("torn");
        let world = generate_world(&GenConfig::grid(5, 4, 7));
        let (path, _) = journal_with_script(&dir, &world.graph);
        let bytes = fs::read(&path).unwrap();

        // Record boundaries: recovery must land exactly on the last
        // boundary at or before the cut — never a partial batch.
        let full = read_journal_bytes(&bytes).unwrap();
        let mut boundaries = vec![HEADER_LEN as u64];
        let mut at = HEADER_LEN;
        for _ in &full.batches {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 4 + len + 4;
            boundaries.push(at as u64);
        }
        assert_eq!(at, bytes.len());

        for cut in 0..bytes.len() {
            let r = read_journal_bytes(&bytes[..cut])
                .unwrap_or_else(|e| panic!("cut at {cut}: must recover, got {e}"));
            let expected_batches = if cut < HEADER_LEN {
                0
            } else {
                boundaries
                    .iter()
                    .filter(|&&b| b <= cut as u64 && b > HEADER_LEN as u64)
                    .count()
            };
            assert_eq!(r.batches.len(), expected_batches, "cut at {cut}");
            assert_eq!(
                r.torn_bytes,
                cut as u64
                    - if cut < HEADER_LEN {
                        0
                    } else {
                        boundaries[expected_batches]
                    },
                "cut at {cut}"
            );
            // Replay of the recovered prefix applies without error.
            let (g, applied) = replay(&world.graph, &r).unwrap();
            assert_eq!(applied, expected_batches as u64);
            assert_eq!(g.epoch(), expected_batches as u64);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbled_final_record_is_a_torn_tail() {
        let dir = temp_dir("garbled");
        let world = generate_world(&GenConfig::grid(5, 4, 7));
        let (path, _) = journal_with_script(&dir, &world.graph);
        let bytes = fs::read(&path).unwrap();
        let mut garbled = bytes.clone();
        let last = garbled.len() - 1;
        garbled[last] ^= 0xFF; // flip inside the final record's CRC
        let r = read_journal_bytes(&garbled).unwrap();
        assert_eq!(r.batches.len(), 2, "final record dropped, prior ones kept");
        assert_eq!(r.recovered_epoch(), 2);
        assert!(r.torn_bytes > 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_stream_corruption_is_typed() {
        let dir = temp_dir("midstream");
        let world = generate_world(&GenConfig::grid(5, 4, 7));
        let (path, _) = journal_with_script(&dir, &world.graph);
        let bytes = fs::read(&path).unwrap();
        // Flip one byte inside the first record's payload (offset
        // HEADER_LEN + 4 is the first payload byte).
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN + 4] ^= 0xFF;
        match read_journal_bytes(&corrupt) {
            Err(JournalError::Corrupt { offset, .. }) => {
                assert_eq!(offset, HEADER_LEN as u64);
            }
            other => panic!("expected mid-stream corruption, got {other:?}"),
        }
        // Same flip in the *header*, with records after it.
        let mut bad_header = bytes;
        bad_header[12] ^= 0xFF;
        assert!(matches!(
            read_journal_bytes(&bad_header),
            Err(JournalError::Corrupt { offset: 0, .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chained_crcs_reject_record_reordering() {
        let dir = temp_dir("chain");
        let world = generate_world(&GenConfig::grid(5, 4, 7));
        let (path, _) = journal_with_script(&dir, &world.graph);
        let bytes = fs::read(&path).unwrap();
        // Cut the three records apart and swap the first two. Each
        // record is individually intact, so only the chain (and the
        // epoch sequence) can catch this.
        let mut cuts = vec![HEADER_LEN];
        let mut at = HEADER_LEN;
        for _ in 0..3 {
            let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
            at += 8 + len;
            cuts.push(at);
        }
        let mut swapped = bytes[..HEADER_LEN].to_vec();
        swapped.extend_from_slice(&bytes[cuts[1]..cuts[2]]);
        swapped.extend_from_slice(&bytes[cuts[0]..cuts[1]]);
        swapped.extend_from_slice(&bytes[cuts[2]..cuts[3]]);
        assert!(matches!(
            read_journal_bytes(&swapped),
            Err(JournalError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_truncates_torn_tails_and_appends_continue_the_chain() {
        let dir = temp_dir("reopen");
        let world = generate_world(&GenConfig::grid(5, 4, 9));
        let (path, batches) = journal_with_script(&dir, &world.graph);
        // Tear the tail by hand.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (mut journal, recovered) = Journal::open(&path, graph_digest(&world.graph)).unwrap();
        assert_eq!(recovered.batches.len(), 2);
        assert_eq!(journal.epoch(), 2);
        assert_eq!(journal.records(), 2);
        // The torn tail is gone from disk.
        assert_eq!(fs::read(&path).unwrap().len() as u64, recovered.valid_len);
        // Re-append the lost batch; the whole file must validate again.
        journal.append(3, &batches[2]).unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(r.batches.len(), 3);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.recovered_epoch(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_order_appends_are_rejected() {
        let dir = temp_dir("order");
        let path = journal_path(&dir, "w");
        let mut journal = Journal::create(&path, 0, 0).unwrap();
        let batch = vec![EdgeMutation::close(NodeId(0), NodeId(1))];
        assert!(matches!(
            journal.append(2, &batch),
            Err(JournalError::Corrupt { .. })
        ));
        journal.append(1, &batch).unwrap();
        assert!(matches!(
            journal.append(1, &batch),
            Err(JournalError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_opens_empty_and_bad_magic_is_typed() {
        let dir = temp_dir("fresh");
        let path = journal_path(&dir, "fresh");
        let (journal, recovered) = Journal::open(&path, 0).unwrap();
        assert_eq!(journal.epoch(), 0);
        assert!(recovered.batches.is_empty());
        assert!(path.exists());

        let garbage = dir.join("garbage.korj");
        fs::write(&garbage, b"this is not a journal at all").unwrap();
        assert!(matches!(
            Journal::open(&garbage, 0),
            Err(JournalError::BadMagic)
        ));

        let mut versioned = header_bytes(0, 0).to_vec();
        versioned[8..12].copy_from_slice(&9u32.to_le_bytes());
        let vcrc = crc32(&versioned[..HEADER_LEN - 4]);
        versioned[HEADER_LEN - 4..].copy_from_slice(&vcrc.to_le_bytes());
        let vpath = dir.join("versioned.korj");
        fs::write(&vpath, &versioned).unwrap();
        assert!(matches!(
            Journal::open(&vpath, 0),
            Err(JournalError::UnsupportedVersion(9))
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_compacts_and_recovery_resumes_from_it() {
        let dir = temp_dir("checkpoint");
        let mut world = generate_world(&GenConfig::grid(5, 4, 13));
        let base = world.graph.clone();
        let path = journal_path(&dir, "w");
        let mut journal = Journal::create(&path, 0, graph_digest(&base)).unwrap();
        let batches = script(&world.graph);
        for (i, batch) in batches.iter().enumerate() {
            journal.append(i as u64 + 1, batch).unwrap();
            world.graph = world.graph.apply_mutations(batch).unwrap();
        }
        assert_eq!(world.graph.epoch(), 3);

        let snap_path = journal.checkpoint("w", &world).unwrap();
        assert_eq!(snap_path, checkpoint_path(&dir, "w", 3));
        assert!(snap_path.exists());
        assert_eq!(journal.base_epoch(), 3);
        assert_eq!(journal.epoch(), 3);
        assert_eq!(journal.records(), 0);

        // Append on top of the compacted journal, then recover: load
        // the checkpoint, renumber, replay the tail.
        let more = vec![EdgeMutation::scale(
            batches[1][0].from,
            batches[1][0].to,
            2.0,
            2.0,
        )];
        journal.append(4, &more).unwrap();
        world.graph = world.graph.apply_mutations(&more).unwrap();

        let checkpoint = crate::snapshot::read_snapshot(&snap_path).unwrap();
        assert_eq!(checkpoint.graph.epoch(), 0, "snapshots never store epochs");
        let recovered = read_journal(&path).unwrap();
        assert_eq!(recovered.base_epoch, 3);
        let (g, applied) = replay(&checkpoint.graph, &recovered).unwrap();
        assert_eq!((applied, g.epoch()), (1, 4));
        let (a, b) = (g.csr(), world.graph.csr());
        assert_eq!(a.out_targets, b.out_targets);
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(a.out_objective), bits(b.out_objective));

        // Replaying the compacted journal over the *original* snapshot
        // (epoch 0 structure, base epoch 3) must fail loudly, not
        // produce a silently wrong world.
        assert!(matches!(
            replay(&base, &recovered),
            Err(JournalError::Corrupt { .. }) | Err(JournalError::Replay { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_append_failure_leaves_the_file_untouched() {
        let dir = temp_dir("inject");
        let path = journal_path(&dir, "w");
        let mut journal = Journal::create(&path, 0, 0).unwrap();
        let batch = vec![EdgeMutation::close(NodeId(0), NodeId(1))];
        journal.append(1, &batch).unwrap();
        let before = fs::read(&path).unwrap();

        crate::faultpoint::arm("journal-append:io-error").unwrap();
        match journal.append(2, &batch) {
            Err(JournalError::Io(e)) => assert!(e.to_string().contains("journal-append")),
            other => panic!("expected injected I/O error, got {other:?}"),
        }
        assert_eq!(fs::read(&path).unwrap(), before, "no bytes written");
        assert_eq!(journal.epoch(), 1, "journal state unchanged");

        // The fault fired once; the retry goes through and the file
        // still validates end to end.
        journal.append(2, &batch).unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(r.recovered_epoch(), 2);
        assert_eq!(r.torn_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_display_is_informative() {
        assert!(JournalError::BadMagic.to_string().contains("magic"));
        assert!(JournalError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        let c = JournalError::Corrupt {
            offset: 42,
            detail: "checksum".into(),
        };
        assert!(c.to_string().contains("42"));
        let r = JournalError::Replay {
            epoch: 9,
            error: MutationError::UnknownNode(NodeId(3)),
        };
        assert!(r.to_string().contains('9'));
    }
}
