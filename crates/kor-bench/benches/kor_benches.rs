//! Criterion micro-benchmarks, one group per paper figure family.
//!
//! These complement the `experiments` binary (which reproduces the
//! figures' data series): Criterion provides statistically robust
//! per-operation timings on fixed, representative inputs.
//!
//! ```bash
//! cargo bench -p kor-bench
//! ```

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use kor_apsp::{CachedPairCosts, DenseApsp, PairCosts, QueryContext};
use kor_core::{
    BucketBoundParams, GreedyParams, KorEngine, KorQuery, OsScalingParams,
};
use kor_data::{
    generate_roadnet, generate_workload, QuerySpec, RoadNetConfig, WorkloadConfig,
};
use kor_graph::fixtures::figure1;
use kor_graph::Graph;
use kor_index::{DiskInvertedIndex, InvertedIndex};

fn bench_graph() -> Graph {
    generate_roadnet(&RoadNetConfig {
        nodes: 1_500,
        area_km: 40.0,
        vocab_size: 2_000,
        seed: 2012,
        ..RoadNetConfig::with_nodes(1_500)
    })
}

fn specs(graph: &Graph, keyword_counts: &[usize], per_set: usize) -> Vec<Vec<QuerySpec>> {
    let index = InvertedIndex::build(graph);
    generate_workload(
        graph,
        &index,
        &WorkloadConfig {
            keyword_counts: keyword_counts.to_vec(),
            queries_per_set: per_set,
            frequency_weighted: true,
            max_euclidean_km: Some(15.0),
            min_doc_fraction: 0.0,
            seed: 7,
        },
    )
    .into_iter()
    .map(|s| s.queries)
    .collect()
}

fn query(graph: &Graph, spec: &QuerySpec, delta: f64) -> KorQuery {
    KorQuery::new(graph, spec.source, spec.target, spec.keywords.clone(), delta).unwrap()
}

/// Figure 4/18 analogue: per-algorithm runtime as keyword count grows.
fn algorithms_vs_keywords(c: &mut Criterion) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let sets = specs(&graph, &[2, 6, 10], 4);
    let delta = 25.0;
    let mut group = c.benchmark_group("runtime_vs_keywords");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for (set, &m) in sets.iter().zip(&[2usize, 6, 10]) {
        let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, delta)).collect();
        group.bench_with_input(BenchmarkId::new("os_scaling", m), &queries, |b, qs| {
            let params = OsScalingParams::default();
            b.iter(|| {
                for q in qs {
                    let _ = engine.os_scaling(q, &params).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("bucket_bound", m), &queries, |b, qs| {
            let params = BucketBoundParams::default();
            b.iter(|| {
                for q in qs {
                    let _ = engine.bucket_bound(q, &params).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy1", m), &queries, |b, qs| {
            let params = GreedyParams::with_beam(1);
            b.iter(|| {
                for q in qs {
                    let _ = engine.greedy(q, &params).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("greedy2", m), &queries, |b, qs| {
            let params = GreedyParams::with_beam(2);
            b.iter(|| {
                for q in qs {
                    let _ = engine.greedy(q, &params).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Figure 6 analogue: OSScaling runtime across ε.
fn epsilon_sweep(c: &mut Criterion) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 4)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    let mut group = c.benchmark_group("epsilon_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for eps in [0.1, 0.5, 0.9] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &queries, |b, qs| {
            let params = OsScalingParams::with_epsilon(eps);
            b.iter(|| {
                for q in qs {
                    let _ = engine.os_scaling(q, &params).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Figure 8 analogue: BucketBound runtime across β.
fn beta_sweep(c: &mut Criterion) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 4)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    let mut group = c.benchmark_group("beta_sweep");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for beta in [1.2, 1.6, 2.0] {
        group.bench_with_input(BenchmarkId::from_parameter(beta), &queries, |b, qs| {
            let params = BucketBoundParams::with(0.5, beta);
            b.iter(|| {
                for q in qs {
                    let _ = engine.bucket_bound(q, &params).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Figure 16 analogue: KkR runtime across k.
fn topk_sweep(c: &mut Criterion) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[4], 3)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    let mut group = c.benchmark_group("topk");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for k in [1usize, 3, 5] {
        group.bench_with_input(BenchmarkId::new("os_scaling", k), &queries, |b, qs| {
            let params = OsScalingParams::default();
            b.iter(|| {
                for q in qs {
                    let _ = engine.top_k_os_scaling(q, &params, k).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("bucket_bound", k), &queries, |b, qs| {
            let params = BucketBoundParams::default();
            b.iter(|| {
                for q in qs {
                    let _ = engine.top_k_bucket_bound(q, &params, k).unwrap();
                }
            })
        });
    }
    group.finish();
}

/// Figure 17 analogue: scalability over graph size.
fn scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10).measurement_time(Duration::from_secs(10));
    for nodes in [500usize, 1_000, 2_000] {
        let graph = generate_roadnet(&RoadNetConfig::with_nodes(nodes));
        let engine = KorEngine::new(&graph);
        let set = &specs(&graph, &[6], 3)[0];
        let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 30.0)).collect();
        group.bench_with_input(
            BenchmarkId::new("bucket_bound", nodes),
            &queries,
            |b, qs| {
                let params = BucketBoundParams::default();
                b.iter(|| {
                    for q in qs {
                        let _ = engine.bucket_bound(q, &params).unwrap();
                    }
                })
            },
        );
    }
    group.finish();
}

/// §4.2.1 claim: the optimization strategies' speed-up.
fn optimization_ablation(c: &mut Criterion) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 3)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    let mut group = c.benchmark_group("opt_ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_with_input(BenchmarkId::new("os_scaling", "with"), &queries, |b, qs| {
        let params = OsScalingParams::default();
        b.iter(|| {
            for q in qs {
                let _ = engine.os_scaling(q, &params).unwrap();
            }
        })
    });
    group.bench_with_input(
        BenchmarkId::new("os_scaling", "without"),
        &queries,
        |b, qs| {
            let params = OsScalingParams::without_optimizations(0.5);
            b.iter(|| {
                for q in qs {
                    let _ = engine.os_scaling(q, &params).unwrap();
                }
            })
        },
    );
    group.finish();
}

/// Substrate benchmarks: pre-processing and index lookups (§3.1).
fn substrates(c: &mut Criterion) {
    let graph = bench_graph();
    let mut group = c.benchmark_group("substrates");
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    group.bench_function("query_context_build", |b| {
        let target = kor_graph::NodeId(0);
        b.iter(|| QueryContext::new(&graph, target))
    });
    group.bench_function("inverted_index_build", |b| {
        b.iter(|| InvertedIndex::build(&graph))
    });
    let dir = std::env::temp_dir().join("kor-bench-idx");
    std::fs::create_dir_all(&dir).unwrap();
    let disk = DiskInvertedIndex::build(&graph, &dir.join("bench.idx")).unwrap();
    let mem = InvertedIndex::build(&graph);
    let terms: Vec<String> = graph
        .vocab()
        .iter()
        .filter(|(k, _)| mem.doc_frequency(*k) > 0)
        .take(64)
        .map(|(_, t)| t.to_string())
        .collect();
    group.bench_function("bptree_lookup_64_terms", |b| {
        b.iter(|| {
            for t in &terms {
                let _ = disk.postings(t).unwrap();
            }
        })
    });
    // Floyd–Warshall is cubic: measure it on the Figure-1 fixture where a
    // single iteration is cheap, and Dijkstra-APSP on the big graph.
    let small = figure1();
    group.bench_function("floyd_warshall_fixture", |b| {
        b.iter(|| DenseApsp::floyd_warshall(&small))
    });
    group.bench_function("pairwise_tau_cached", |b| {
        let pairs = CachedPairCosts::new(&graph);
        let nodes: Vec<_> = graph.nodes().take(16).collect();
        b.iter(|| {
            let mut acc = 0.0;
            for &s in &nodes {
                if let Some(c) = pairs.tau(s, kor_graph::NodeId(0)) {
                    acc += c.objective;
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    algorithms_vs_keywords,
    epsilon_sweep,
    beta_sweep,
    topk_sweep,
    scalability,
    optimization_ablation,
    substrates
);
criterion_main!(benches);
