//! Micro-benchmarks, one group per paper figure family.
//!
//! These complement the `experiments` binary (which reproduces the
//! figures' data series) with per-operation timings on fixed,
//! representative inputs. The build environment vendors no Criterion, so
//! the file is a `harness = false` benchmark with a small built-in
//! measurement loop: warm up once, then run batches until the slower of
//! ~0.5 s or 10 iterations, and report mean/min per iteration.
//!
//! ```bash
//! cargo bench -p kor-bench               # all groups
//! cargo bench -p kor-bench -- epsilon    # only groups whose name matches
//! ```

use std::time::{Duration, Instant};

use kor_apsp::{CachedPairCosts, DenseApsp, PairCosts, QueryContext};
use kor_core::{BucketBoundParams, GreedyParams, KorEngine, KorQuery, OsScalingParams};
use kor_data::{generate_roadnet, generate_workload, QuerySpec, RoadNetConfig, WorkloadConfig};
use kor_graph::fixtures::figure1;
use kor_graph::Graph;
use kor_index::{DiskInvertedIndex, InvertedIndex};

/// Minimal stand-in for a Criterion benchmark group: times closures and
/// prints one aligned row per benchmark.
struct Harness {
    filter: Option<String>,
}

impl Harness {
    fn from_args() -> Self {
        // Cargo passes `--bench`; any other free argument is a substring
        // filter on `group/name`.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Harness { filter }
    }

    fn bench<T>(&self, group: &str, name: &str, mut f: impl FnMut() -> T) {
        let id = format!("{group}/{name}");
        if let Some(fil) = &self.filter {
            if !id.contains(fil.as_str()) {
                return;
            }
        }
        // Warm-up run (also keeps the result alive so the call is not
        // optimized out).
        let _keep = f();
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        let mut iters = 0u32;
        let mut best = Duration::MAX;
        while iters < 10 || (started.elapsed() < budget && iters < 1_000) {
            let t0 = Instant::now();
            let _keep = f();
            let dt = t0.elapsed();
            if dt < best {
                best = dt;
            }
            iters += 1;
        }
        let mean = started.elapsed() / iters;
        println!(
            "{id:<44} {iters:>5} iters   mean {:>12}   min {:>12}",
            format!("{:.3?}", mean),
            format!("{:.3?}", best),
        );
    }
}

fn bench_graph() -> Graph {
    generate_roadnet(&RoadNetConfig {
        nodes: 1_500,
        area_km: 40.0,
        vocab_size: 2_000,
        seed: 2012,
        ..RoadNetConfig::with_nodes(1_500)
    })
}

fn specs(graph: &Graph, keyword_counts: &[usize], per_set: usize) -> Vec<Vec<QuerySpec>> {
    let index = InvertedIndex::build(graph);
    generate_workload(
        graph,
        &index,
        &WorkloadConfig {
            keyword_counts: keyword_counts.to_vec(),
            queries_per_set: per_set,
            frequency_weighted: true,
            max_euclidean_km: Some(15.0),
            min_doc_fraction: 0.0,
            seed: 7,
        },
    )
    .into_iter()
    .map(|s| s.queries)
    .collect()
}

fn query(graph: &Graph, spec: &QuerySpec, delta: f64) -> KorQuery {
    KorQuery::new(
        graph,
        spec.source,
        spec.target,
        spec.keywords.clone(),
        delta,
    )
    .unwrap()
}

/// Figure 4/18 analogue: per-algorithm runtime as keyword count grows.
fn algorithms_vs_keywords(h: &Harness) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let sets = specs(&graph, &[2, 6, 10], 4);
    let delta = 25.0;
    for (set, &m) in sets.iter().zip(&[2usize, 6, 10]) {
        let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, delta)).collect();
        h.bench("runtime_vs_keywords", &format!("os_scaling/{m}"), || {
            let params = OsScalingParams::default();
            for q in &queries {
                let _ = engine.os_scaling(q, &params).unwrap();
            }
        });
        h.bench("runtime_vs_keywords", &format!("bucket_bound/{m}"), || {
            let params = BucketBoundParams::default();
            for q in &queries {
                let _ = engine.bucket_bound(q, &params).unwrap();
            }
        });
        h.bench("runtime_vs_keywords", &format!("greedy1/{m}"), || {
            let params = GreedyParams::with_beam(1);
            for q in &queries {
                let _ = engine.greedy(q, &params).unwrap();
            }
        });
        h.bench("runtime_vs_keywords", &format!("greedy2/{m}"), || {
            let params = GreedyParams::with_beam(2);
            for q in &queries {
                let _ = engine.greedy(q, &params).unwrap();
            }
        });
    }
}

/// Figure 6 analogue: OSScaling runtime across ε.
fn epsilon_sweep(h: &Harness) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 4)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    for eps in [0.1, 0.5, 0.9] {
        h.bench("epsilon_sweep", &format!("{eps}"), || {
            let params = OsScalingParams::with_epsilon(eps);
            for q in &queries {
                let _ = engine.os_scaling(q, &params).unwrap();
            }
        });
    }
}

/// Figure 8 analogue: BucketBound runtime across β.
fn beta_sweep(h: &Harness) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 4)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    for beta in [1.2, 1.6, 2.0] {
        h.bench("beta_sweep", &format!("{beta}"), || {
            let params = BucketBoundParams::with(0.5, beta);
            for q in &queries {
                let _ = engine.bucket_bound(q, &params).unwrap();
            }
        });
    }
}

/// Figure 16 analogue: KkR runtime across k.
fn topk_sweep(h: &Harness) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[4], 3)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    for k in [1usize, 3, 5] {
        h.bench("topk", &format!("os_scaling/{k}"), || {
            let params = OsScalingParams::default();
            for q in &queries {
                let _ = engine.top_k_os_scaling(q, &params, k).unwrap();
            }
        });
        h.bench("topk", &format!("bucket_bound/{k}"), || {
            let params = BucketBoundParams::default();
            for q in &queries {
                let _ = engine.top_k_bucket_bound(q, &params, k).unwrap();
            }
        });
    }
}

/// Figure 17 analogue: scalability over graph size.
fn scalability(h: &Harness) {
    for nodes in [500usize, 1_000, 2_000] {
        let graph = generate_roadnet(&RoadNetConfig::with_nodes(nodes));
        let engine = KorEngine::new(&graph);
        let set = &specs(&graph, &[6], 3)[0];
        let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 30.0)).collect();
        h.bench("scalability", &format!("bucket_bound/{nodes}"), || {
            let params = BucketBoundParams::default();
            for q in &queries {
                let _ = engine.bucket_bound(q, &params).unwrap();
            }
        });
    }
}

/// §4.2.1 claim: the optimization strategies' speed-up.
fn optimization_ablation(h: &Harness) {
    let graph = bench_graph();
    let engine = KorEngine::new(&graph);
    let set = &specs(&graph, &[6], 3)[0];
    let queries: Vec<KorQuery> = set.iter().map(|s| query(&graph, s, 25.0)).collect();
    h.bench("opt_ablation", "os_scaling/with", || {
        let params = OsScalingParams::default();
        for q in &queries {
            let _ = engine.os_scaling(q, &params).unwrap();
        }
    });
    h.bench("opt_ablation", "os_scaling/without", || {
        let params = OsScalingParams::without_optimizations(0.5);
        for q in &queries {
            let _ = engine.os_scaling(q, &params).unwrap();
        }
    });
}

/// Substrate benchmarks: pre-processing and index lookups (§3.1).
fn substrates(h: &Harness) {
    let graph = bench_graph();
    let target = kor_graph::NodeId(0);
    h.bench("substrates", "query_context_build", || {
        QueryContext::new(&graph, target)
    });
    h.bench("substrates", "inverted_index_build", || {
        InvertedIndex::build(&graph)
    });
    let dir = std::env::temp_dir().join("kor-bench-idx");
    std::fs::create_dir_all(&dir).unwrap();
    let disk = DiskInvertedIndex::build(&graph, &dir.join("bench.idx")).unwrap();
    let mem = InvertedIndex::build(&graph);
    let terms: Vec<String> = graph
        .vocab()
        .iter()
        .filter(|(k, _)| mem.doc_frequency(*k) > 0)
        .take(64)
        .map(|(_, t)| t.to_string())
        .collect();
    h.bench("substrates", "bptree_lookup_64_terms", || {
        for t in &terms {
            let _ = disk.postings(t).unwrap();
        }
    });
    // Floyd–Warshall is cubic: measure it on the Figure-1 fixture where a
    // single iteration is cheap, and Dijkstra-APSP on the big graph.
    let small = figure1();
    h.bench("substrates", "floyd_warshall_fixture", || {
        DenseApsp::floyd_warshall(&small)
    });
    let pairs = CachedPairCosts::new(&graph);
    let nodes: Vec<_> = graph.nodes().take(16).collect();
    h.bench("substrates", "pairwise_tau_cached", || {
        let mut acc = 0.0;
        for &s in &nodes {
            if let Some(c) = pairs.tau(s, kor_graph::NodeId(0)) {
                acc += c.objective;
            }
        }
        acc
    });
}

fn main() {
    let h = Harness::from_args();
    algorithms_vs_keywords(&h);
    epsilon_sweep(&h);
    beta_sweep(&h);
    topk_sweep(&h);
    scalability(&h);
    optimization_ablation(&h);
    substrates(&h);
}
