//! Experiment sizing profiles.

use kor_data::FlickrConfig;

/// All knobs the experiments read. Two presets: [`Profile::paper`]
/// mirrors the paper's §4.1 setup; [`Profile::quick`] shrinks datasets
/// and query counts so the full suite completes in a couple of minutes.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Preset name (used for the output directory).
    pub name: String,
    /// Queries per query set (paper: 50).
    pub queries_per_set: usize,
    /// Flickr-like dataset configuration.
    pub flickr: FlickrConfig,
    /// The Δ sweep on the Flickr dataset, km (paper: 3–15).
    pub flickr_deltas_km: Vec<f64>,
    /// Default Δ for parameter sweeps (paper: 6 km).
    pub default_delta_km: f64,
    /// Keyword-count sweep (paper: 2–10).
    pub keyword_counts: Vec<usize>,
    /// Default keyword count for parameter sweeps (paper: 6).
    pub default_keywords: usize,
    /// Road-network sizes for the scalability experiment
    /// (paper: 5k/10k/15k/20k).
    pub road_sizes: Vec<usize>,
    /// Δ for road-network experiments (paper: 30 km).
    pub road_delta_km: f64,
    /// Square extent of the generated road networks, km.
    pub road_area_km: f64,
    /// Endpoint sampling cap for road-network workloads, km.
    pub road_endpoint_cap_km: Option<f64>,
    /// Δ sweep for the synthetic-dataset experiment (paper Figure 19).
    pub road_deltas_km: Vec<f64>,
    /// ε sweep (paper: 0.1–0.9).
    pub epsilons: Vec<f64>,
    /// β sweep (paper: 1.2–2.0).
    pub betas: Vec<f64>,
    /// α sweep (paper: 0–1).
    pub alphas: Vec<f64>,
    /// k sweep for KkR (paper: 1–5).
    pub ks: Vec<usize>,
    /// Equal theoretical approximation ratios (paper §4.2.3: 2–10).
    pub equal_bounds: Vec<f64>,
    /// Endpoint sampling cap in km (keeps the Δ sweep meaningful).
    pub endpoint_cap_km: Option<f64>,
    /// Document-frequency floor for query keywords (see
    /// `WorkloadConfig::min_doc_fraction`).
    pub min_doc_fraction: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Profile {
    /// The paper's full experiment sizing.
    pub fn paper() -> Self {
        Self {
            name: "paper".into(),
            queries_per_set: 50,
            flickr: FlickrConfig::paper_scale(),
            flickr_deltas_km: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            default_delta_km: 6.0,
            keyword_counts: vec![2, 4, 6, 8, 10],
            default_keywords: 6,
            road_sizes: vec![5_000, 10_000, 15_000, 20_000],
            road_delta_km: 30.0,
            road_area_km: 30.0,
            road_endpoint_cap_km: Some(8.0),
            road_deltas_km: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            epsilons: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            betas: vec![1.2, 1.4, 1.6, 1.8, 2.0],
            alphas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            ks: vec![1, 2, 3, 4, 5],
            equal_bounds: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            endpoint_cap_km: Some(4.0),
            min_doc_fraction: 0.005,
            seed: 42,
        }
    }

    /// A scaled-down preset: same sweeps, smaller datasets and fewer
    /// queries, for CI and iteration.
    pub fn quick() -> Self {
        Self {
            name: "quick".into(),
            queries_per_set: 8,
            flickr: FlickrConfig {
                users: 2_500,
                photos_per_user: 40,
                attraction_centers: 30,
                city_km: 10.0,
                cell_km: 0.35,
                min_photos_per_location: 8,
                vocab_size: 4_000,
                tag_exponent: 1.0,
                max_tags_per_location: 16,
                hop_scale_km: 2.0,
                seed: 2012,
            },
            flickr_deltas_km: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            default_delta_km: 6.0,
            keyword_counts: vec![2, 4, 6, 8, 10],
            default_keywords: 6,
            road_sizes: vec![1_000, 2_000, 3_000, 4_000],
            road_delta_km: 30.0,
            road_area_km: 30.0,
            road_endpoint_cap_km: Some(8.0),
            road_deltas_km: vec![3.0, 6.0, 9.0, 12.0, 15.0],
            epsilons: vec![0.1, 0.3, 0.5, 0.7, 0.9],
            betas: vec![1.2, 1.4, 1.6, 1.8, 2.0],
            alphas: vec![0.0, 0.25, 0.5, 0.75, 1.0],
            ks: vec![1, 2, 3, 4, 5],
            equal_bounds: vec![2.0, 4.0, 6.0, 8.0, 10.0],
            endpoint_cap_km: Some(3.5),
            min_doc_fraction: 0.005,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let p = Profile::paper();
        assert_eq!(p.queries_per_set, 50);
        assert_eq!(p.keyword_counts, vec![2, 4, 6, 8, 10]);
        assert_eq!(p.flickr_deltas_km, vec![3.0, 6.0, 9.0, 12.0, 15.0]);
        assert_eq!(p.road_sizes, vec![5_000, 10_000, 15_000, 20_000]);
        assert_eq!(p.road_delta_km, 30.0);
        assert_eq!(p.epsilons.len(), 5);
        assert_eq!(p.betas, vec![1.2, 1.4, 1.6, 1.8, 2.0]);
        assert_eq!(p.ks, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn quick_is_smaller() {
        let q = Profile::quick();
        let p = Profile::paper();
        assert!(q.queries_per_set < p.queries_per_set);
        assert!(q.flickr.users < p.flickr.users);
        assert!(q.road_sizes.iter().max() < p.road_sizes.iter().max());
        // ...but the sweeps are identical, so figures keep their x-axes.
        assert_eq!(q.keyword_counts, p.keyword_counts);
        assert_eq!(q.epsilons, p.epsilons);
    }
}
