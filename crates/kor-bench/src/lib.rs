//! Experiment harness for the KOR paper reproduction.
//!
//! One runner per table/figure of the paper's evaluation (§4): each
//! experiment regenerates the corresponding rows/series on the synthetic
//! datasets and prints them as aligned tables (plus CSV files). Absolute
//! numbers differ from the paper's 2012 testbed; the *shapes* — which
//! algorithm wins, by what factor, how curves trend — are the
//! reproduction target (see EXPERIMENTS.md).
//!
//! Run everything:
//!
//! ```bash
//! cargo run --release -p kor-bench --bin experiments
//! ```
//!
//! or a subset / the full-size profile:
//!
//! ```bash
//! cargo run --release -p kor-bench --bin experiments -- fig4-5 fig17
//! cargo run --release -p kor-bench --bin experiments -- --paper
//! ```

pub mod context;
pub mod experiments;
pub mod profile;
pub mod report;
pub mod runner;

pub use context::Context;
pub use profile::Profile;
pub use report::Table;
