//! Table rendering and CSV export.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One result table (a figure's data series or a paper table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Stable identifier, e.g. `fig4`.
    pub id: String,
    /// Human title, e.g. `Runtime vs number of query keywords (Flickr)`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (pre-formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: Vec<impl Into<String>>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in table {}",
            self.id
        );
        self.rows.push(cells);
    }

    /// CSV rendering (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {} — {}", self.id, self.title)?;
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        writeln!(f, "{}", header_line.join("  "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "{}", rule.join("  "))?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

/// Formats milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Formats a ratio with 4 decimals (the paper's relative-ratio axes).
pub fn fmt_ratio(r: f64) -> String {
    if r.is_finite() {
        format!("{r:.4}")
    } else {
        "n/a".into()
    }
}

/// Formats a percentage with one decimal.
pub fn fmt_pct(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig0", "demo", vec!["m", "OSScaling", "Greedy-1"]);
        t.push_row(vec!["2".into(), "10.5".into(), "0.3".into()]);
        t.push_row(vec!["4".into(), "20.1".into(), "0.4".into()]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let text = sample().to_string();
        assert!(text.contains("## fig0 — demo"));
        assert!(text.contains("OSScaling"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "m,OSScaling,Greedy-1");
        assert_eq!(lines[1], "2,10.5,0.3");
    }

    #[test]
    fn csv_escapes_specials() {
        let mut t = Table::new("x", "t", vec!["a"]);
        t.push_row(vec!["va,l\"ue".into()]);
        assert_eq!(t.to_csv().lines().nth(1).unwrap(), "\"va,l\"\"ue\"");
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("kor-report-tests");
        let path = sample().write_csv(&dir).unwrap();
        assert!(path.exists());
        assert!(std::fs::read_to_string(path).unwrap().starts_with("m,"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "t", vec!["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.1234), "0.1234");
        assert_eq!(fmt_ratio(1.23456), "1.2346");
        assert_eq!(fmt_ratio(f64::NAN), "n/a");
        assert_eq!(fmt_pct(12.34), "12.3%");
    }
}
