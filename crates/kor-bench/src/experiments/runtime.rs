//! Runtime experiments: Figures 4–5 (Flickr), 17 (scalability), and
//! 18–19 (synthetic road dataset).

use kor_core::KorEngine;
use kor_graph::Graph;

use crate::context::Context;
use crate::report::{fmt_ms, Table};
use crate::runner::{mean_ms, run_algo, to_query, Algo, QueryRun};

/// Shared sweep: for every keyword set and every Δ, run all algorithms;
/// returns `runs[algo][m_index][delta_index]`.
fn keyword_delta_grid(
    graph: &Graph,
    ctx: &Context,
    keyword_counts: &[usize],
    deltas: &[f64],
    algos: &[Algo],
    road: bool,
) -> Vec<Vec<Vec<Vec<QueryRun>>>> {
    let engine = KorEngine::new(graph);
    let sets = if road {
        ctx.road_workload(graph, keyword_counts)
    } else {
        ctx.workload(graph, keyword_counts)
    };
    let mut runs: Vec<Vec<Vec<Vec<QueryRun>>>> = algos
        .iter()
        .map(|_| {
            keyword_counts
                .iter()
                .map(|_| deltas.iter().map(|_| Vec::new()).collect())
                .collect()
        })
        .collect();
    for (mi, set) in sets.iter().enumerate() {
        for (di, &delta) in deltas.iter().enumerate() {
            for spec in &set.queries {
                let query = to_query(graph, spec, delta);
                for (ai, algo) in algos.iter().enumerate() {
                    runs[ai][mi][di].push(run_algo(&engine, &query, algo));
                }
            }
        }
    }
    runs
}

fn runtime_tables(
    ids: (&str, &str),
    titles: (&str, &str),
    keyword_counts: &[usize],
    deltas: &[f64],
    algos: &[Algo],
    runs: &[Vec<Vec<Vec<QueryRun>>>],
) -> Vec<Table> {
    // First table: rows = keyword counts, averaged over all Δ.
    let mut headers = vec!["#keywords".to_string()];
    headers.extend(algos.iter().map(|a| format!("{} (ms)", a.label())));
    let mut by_m = Table::new(ids.0, titles.0, headers);
    for (mi, m) in keyword_counts.iter().enumerate() {
        let mut row = vec![m.to_string()];
        for algo_runs in runs {
            let flat: Vec<QueryRun> = algo_runs[mi].iter().flatten().copied().collect();
            row.push(fmt_ms(mean_ms(&flat)));
        }
        by_m.push_row(row);
    }
    // Second table: rows = Δ, averaged over all keyword counts.
    let mut headers = vec!["Δ (km)".to_string()];
    headers.extend(algos.iter().map(|a| format!("{} (ms)", a.label())));
    let mut by_delta = Table::new(ids.1, titles.1, headers);
    for (di, delta) in deltas.iter().enumerate() {
        let mut row = vec![format!("{delta}")];
        for algo_runs in runs {
            let flat: Vec<QueryRun> = algo_runs
                .iter()
                .flat_map(|per_m| per_m[di].iter())
                .copied()
                .collect();
            row.push(fmt_ms(mean_ms(&flat)));
        }
        by_delta.push_row(row);
    }
    vec![by_m, by_delta]
}

/// Figures 4–5: runtime on the Flickr-like dataset, varying the number
/// of query keywords (averaged over Δ ∈ {3,…,15} km) and varying Δ
/// (averaged over m ∈ {2,…,10}).
pub fn fig4_5(ctx: &Context) -> Vec<Table> {
    let graph = ctx.flickr();
    let algos = Algo::defaults();
    let runs = keyword_delta_grid(
        &graph,
        ctx,
        &ctx.profile.keyword_counts,
        &ctx.profile.flickr_deltas_km,
        &algos,
        false,
    );
    runtime_tables(
        ("fig4", "fig5"),
        (
            "Runtime vs number of query keywords (Flickr-like)",
            "Runtime vs budget limit Δ (Flickr-like)",
        ),
        &ctx.profile.keyword_counts,
        &ctx.profile.flickr_deltas_km,
        &algos,
        &runs,
    )
}

/// Figure 17: scalability — runtime of all algorithms over road networks
/// of increasing size (m = 6, Δ = 30 km).
pub fn fig17(ctx: &Context) -> Vec<Table> {
    let algos = Algo::defaults();
    let mut headers = vec!["nodes".to_string()];
    headers.extend(algos.iter().map(|a| format!("{} (ms)", a.label())));
    let mut table = Table::new(
        "fig17",
        "Scalability: runtime vs road-network size (m = 6, Δ = 30 km)",
        headers,
    );
    for &size in &ctx.profile.road_sizes {
        let graph = ctx.road(size);
        let engine = KorEngine::new(&graph);
        let sets = ctx.road_workload(&graph, &[ctx.profile.default_keywords]);
        let mut row = vec![size.to_string()];
        for algo in &algos {
            let mut runs = Vec::new();
            for spec in &sets[0].queries {
                let query = to_query(&graph, spec, ctx.profile.road_delta_km);
                runs.push(run_algo(&engine, &query, algo));
            }
            row.push(fmt_ms(mean_ms(&runs)));
        }
        table.push_row(row);
    }
    vec![table]
}

/// Figures 18–19: the Figures 4–5 sweep repeated on the smallest road
/// network (the paper's synthetic 5k-node dataset).
pub fn fig18_19(ctx: &Context) -> Vec<Table> {
    let graph = ctx.road(ctx.profile.road_sizes[0]);
    let algos = Algo::defaults();
    let runs = keyword_delta_grid(
        &graph,
        ctx,
        &ctx.profile.keyword_counts,
        &ctx.profile.road_deltas_km,
        &algos,
        true,
    );
    runtime_tables(
        ("fig18", "fig19"),
        (
            "Runtime vs number of query keywords (synthetic road)",
            "Runtime vs budget limit Δ (synthetic road)",
        ),
        &ctx.profile.keyword_counts,
        &ctx.profile.road_deltas_km,
        &algos,
        &runs,
    )
}
