//! One experiment per table/figure of the paper's evaluation (§4).
//!
//! Paired figures that share a measurement grid (e.g. Figures 4 and 5,
//! which both come from the keyword×Δ sweep) are produced by a single
//! experiment to avoid re-running identical searches.

mod accuracy;
mod extras;
mod params;
mod runtime;
mod topk;

use crate::context::Context;
use crate::report::Table;

/// A runnable experiment.
pub struct Experiment {
    /// Stable id accepted on the command line (e.g. `fig4-5`).
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runner.
    pub run: fn(&Context) -> Vec<Table>,
}

/// The registry, in the paper's presentation order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: label contents of Example 2 (golden trace)",
            run: extras::table1,
        },
        Experiment {
            id: "fig4-5",
            title: "Figures 4–5: runtime vs #keywords and vs Δ (Flickr)",
            run: runtime::fig4_5,
        },
        Experiment {
            id: "fig6-7",
            title: "Figures 6–7: OSScaling runtime / accuracy vs ε",
            run: params::fig6_7,
        },
        Experiment {
            id: "fig8-9",
            title: "Figures 8–9: BucketBound runtime / accuracy vs β",
            run: params::fig8_9,
        },
        Experiment {
            id: "fig10-11",
            title: "Figures 10–11: relative ratio vs #keywords and vs Δ",
            run: accuracy::fig10_11,
        },
        Experiment {
            id: "fig12-13",
            title: "Figures 12–13: greedy accuracy and failure rate vs α",
            run: accuracy::fig12_13,
        },
        Experiment {
            id: "fig14-15",
            title: "Figures 14–15: OSScaling vs BucketBound at equal bounds",
            run: params::fig14_15,
        },
        Experiment {
            id: "fig16",
            title: "Figure 16: KkR runtime vs k",
            run: topk::fig16,
        },
        Experiment {
            id: "fig17",
            title: "Figure 17: scalability over road-network sizes",
            run: runtime::fig17,
        },
        Experiment {
            id: "fig18-19",
            title: "Figures 18–19: runtime vs #keywords and vs Δ (road 5k)",
            run: runtime::fig18_19,
        },
        Experiment {
            id: "fig20-21",
            title: "Figures 20–21: example routes under Δ = 9 vs 6 km",
            run: extras::fig20_21,
        },
        Experiment {
            id: "ablation",
            title: "§4.2.1 claim: optimization strategies speed-up",
            run: extras::ablation,
        },
        Experiment {
            id: "brute",
            title: "§4.2.1–4.2.2 claim: brute force vs OSScaling",
            run: extras::brute,
        },
    ]
}

/// Looks up experiments by id; `None` if any id is unknown.
pub fn select(ids: &[String]) -> Option<Vec<Experiment>> {
    let registry = all();
    let mut out = Vec::new();
    for id in ids {
        let found = registry.iter().find(|e| e.id == id)?;
        out.push(Experiment {
            id: found.id,
            title: found.title,
            run: found.run,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }

    #[test]
    fn select_finds_known_ids() {
        assert!(select(&["fig4-5".into(), "fig17".into()]).is_some());
        assert!(select(&["nope".into()]).is_none());
        assert_eq!(select(&[]).unwrap().len(), 0);
    }

    #[test]
    fn registry_covers_every_figure_of_section4() {
        let ids: Vec<&str> = all().iter().map(|e| e.id).collect();
        for required in [
            "table1", "fig4-5", "fig6-7", "fig8-9", "fig10-11", "fig12-13", "fig14-15", "fig16",
            "fig17", "fig18-19", "fig20-21", "ablation", "brute",
        ] {
            assert!(ids.contains(&required), "missing {required}");
        }
    }
}
