//! Parameter-sweep experiments: Figures 6–7 (ε), 8–9 (β), and 14–15
//! (equal theoretical bounds).

use kor_core::{BucketBoundParams, KorEngine, KorQuery, OsScalingParams};

use crate::context::Context;
use crate::report::{fmt_ms, fmt_ratio, Table};
use crate::runner::{mean_ms, relative_ratio, run_algo, to_query, Algo, QueryRun};

/// The default single-cell workload: m = 6, Δ = 6 km on the Flickr-like
/// graph — shared by the ε/β/equal-bound sweeps.
fn default_queries(ctx: &Context) -> (std::sync::Arc<kor_graph::Graph>, Vec<KorQuery>) {
    let graph = ctx.flickr();
    let sets = ctx.workload(&graph, &[ctx.profile.default_keywords]);
    let queries: Vec<KorQuery> = sets[0]
        .queries
        .iter()
        .map(|s| to_query(&graph, s, ctx.profile.default_delta_km))
        .collect();
    (graph, queries)
}

fn run_all<G: AsRef<kor_graph::Graph>>(
    engine: &KorEngine<G>,
    queries: &[KorQuery],
    algo: &Algo,
) -> Vec<QueryRun> {
    queries.iter().map(|q| run_algo(engine, q, algo)).collect()
}

/// Figures 6–7: `OSScaling` runtime and relative ratio as ε grows.
/// The accuracy baseline is `OSScaling` at ε = 0.1 (§4.2.2).
pub fn fig6_7(ctx: &Context) -> Vec<Table> {
    let (graph, queries) = default_queries(ctx);
    let engine = KorEngine::new(&graph);
    let base = run_all(
        &engine,
        &queries,
        &Algo::OsScaling(OsScalingParams::with_epsilon(0.1)),
    );
    let mut runtime = Table::new(
        "fig6",
        "OSScaling runtime vs ε (m = 6, Δ = 6 km)",
        vec!["ε", "runtime (ms)"],
    );
    let mut ratio = Table::new(
        "fig7",
        "OSScaling relative ratio vs ε (base: ε = 0.1)",
        vec!["ε", "relative ratio"],
    );
    for &eps in &ctx.profile.epsilons {
        let runs = if (eps - 0.1).abs() < 1e-12 {
            base.clone()
        } else {
            run_all(
                &engine,
                &queries,
                &Algo::OsScaling(OsScalingParams::with_epsilon(eps)),
            )
        };
        runtime.push_row(vec![format!("{eps}"), fmt_ms(mean_ms(&runs))]);
        ratio.push_row(vec![
            format!("{eps}"),
            fmt_ratio(relative_ratio(&runs, &base)),
        ]);
    }
    vec![runtime, ratio]
}

/// Figures 8–9: `BucketBound` runtime and relative ratio as β grows
/// (ε = 0.5). Ratios are reported against both the ε = 0.1 baseline (the
/// paper's measure) and the ε = 0.5 `OSScaling` run (whose route shares
/// the bucket, so this column must stay below β).
pub fn fig8_9(ctx: &Context) -> Vec<Table> {
    let (graph, queries) = default_queries(ctx);
    let engine = KorEngine::new(&graph);
    let base01 = run_all(
        &engine,
        &queries,
        &Algo::OsScaling(OsScalingParams::with_epsilon(0.1)),
    );
    let base05 = run_all(
        &engine,
        &queries,
        &Algo::OsScaling(OsScalingParams::with_epsilon(0.5)),
    );
    let mut runtime = Table::new(
        "fig8",
        "BucketBound runtime vs β (ε = 0.5, m = 6, Δ = 6 km)",
        vec!["β", "runtime (ms)"],
    );
    let mut ratio = Table::new(
        "fig9",
        "BucketBound relative ratio vs β",
        vec!["β", "vs OSScaling ε=0.1", "vs OSScaling ε=0.5 (< β)"],
    );
    for &beta in &ctx.profile.betas {
        let runs = run_all(
            &engine,
            &queries,
            &Algo::BucketBound(BucketBoundParams::with(0.5, beta)),
        );
        runtime.push_row(vec![format!("{beta}"), fmt_ms(mean_ms(&runs))]);
        ratio.push_row(vec![
            format!("{beta}"),
            fmt_ratio(relative_ratio(&runs, &base01)),
            fmt_ratio(relative_ratio(&runs, &base05)),
        ]);
    }
    vec![runtime, ratio]
}

/// Figures 14–15: `OSScaling` and `BucketBound` configured to the *same*
/// theoretical approximation ratio (2–10): runtime and relative ratio
/// (base: `OSScaling` ε = 0.1). ε is derived per algorithm:
/// `1/(1−ε) = bound` and `β/(1−ε) = bound` with β = 1.2.
pub fn fig14_15(ctx: &Context) -> Vec<Table> {
    let (graph, queries) = default_queries(ctx);
    let engine = KorEngine::new(&graph);
    let base = run_all(
        &engine,
        &queries,
        &Algo::OsScaling(OsScalingParams::with_epsilon(0.1)),
    );
    let mut runtime = Table::new(
        "fig14",
        "Runtime at equal theoretical bounds (m = 6, Δ = 6 km)",
        vec!["bound", "OSScaling (ms)", "BucketBound (ms)"],
    );
    let mut ratio = Table::new(
        "fig15",
        "Relative ratio at equal theoretical bounds (base: ε = 0.1)",
        vec!["bound", "OSScaling", "BucketBound"],
    );
    for &bound in &ctx.profile.equal_bounds {
        let eps_os = OsScalingParams::epsilon_for_ratio(bound);
        let eps_bb = BucketBoundParams::epsilon_for_ratio(bound, 1.2);
        let os_runs = run_all(
            &engine,
            &queries,
            &Algo::OsScaling(OsScalingParams::with_epsilon(eps_os)),
        );
        let bb_runs = run_all(
            &engine,
            &queries,
            &Algo::BucketBound(BucketBoundParams::with(eps_bb, 1.2)),
        );
        runtime.push_row(vec![
            format!("{bound}"),
            fmt_ms(mean_ms(&os_runs)),
            fmt_ms(mean_ms(&bb_runs)),
        ]);
        ratio.push_row(vec![
            format!("{bound}"),
            fmt_ratio(relative_ratio(&os_runs, &base)),
            fmt_ratio(relative_ratio(&bb_runs, &base)),
        ]);
    }
    vec![runtime, ratio]
}
