//! Accuracy experiments: Figures 10–11 (relative ratio vs #keywords and
//! vs Δ) and Figures 12–13 (greedy α sweep with failure rates).

use kor_core::{BucketBoundParams, GreedyParams, KorEngine, OsScalingParams};

use crate::context::Context;
use crate::report::{fmt_pct, fmt_ratio, Table};
use crate::runner::{failure_pct, relative_ratio, run_algo, to_query, Algo, QueryRun};

/// Figures 10–11: relative ratio (base: `OSScaling` ε = 0.1) of
/// `BucketBound` (ε = 0.5, β = 1.2), `Greedy-2` and `Greedy-1` — grouped
/// by keyword count (averaged over Δ) and by Δ (averaged over keyword
/// counts). Greedy ratios count only its feasible queries (§4.2.2).
pub fn fig10_11(ctx: &Context) -> Vec<Table> {
    let graph = ctx.flickr();
    let engine = KorEngine::new(&graph);
    let sets = ctx.workload(&graph, &ctx.profile.keyword_counts);
    let deltas = &ctx.profile.flickr_deltas_km;
    let algos = [
        Algo::BucketBound(BucketBoundParams::default()),
        Algo::Greedy(GreedyParams::with_beam(2)),
        Algo::Greedy(GreedyParams::with_beam(1)),
    ];
    let base_algo = Algo::OsScaling(OsScalingParams::with_epsilon(0.1));

    // cell[mi][di] = (base runs, per-algo runs)
    let mut base_runs: Vec<Vec<Vec<QueryRun>>> = Vec::new();
    let mut algo_runs: Vec<Vec<Vec<Vec<QueryRun>>>> = algos.iter().map(|_| Vec::new()).collect();
    for set in &sets {
        let mut base_row = Vec::new();
        let mut algo_rows: Vec<Vec<Vec<QueryRun>>> = algos.iter().map(|_| Vec::new()).collect();
        for &delta in deltas {
            let queries: Vec<_> = set
                .queries
                .iter()
                .map(|s| to_query(&graph, s, delta))
                .collect();
            base_row.push(
                queries
                    .iter()
                    .map(|q| run_algo(&engine, q, &base_algo))
                    .collect::<Vec<_>>(),
            );
            for (ai, algo) in algos.iter().enumerate() {
                algo_rows[ai].push(
                    queries
                        .iter()
                        .map(|q| run_algo(&engine, q, algo))
                        .collect::<Vec<_>>(),
                );
            }
        }
        base_runs.push(base_row);
        for (ai, rows) in algo_rows.into_iter().enumerate() {
            algo_runs[ai].push(rows);
        }
    }

    let mut headers = vec!["#keywords".to_string()];
    headers.extend(algos.iter().map(|a| a.label()));
    let mut by_m = Table::new(
        "fig10",
        "Relative ratio vs number of query keywords (base: OSScaling ε = 0.1)",
        headers,
    );
    for (mi, m) in ctx.profile.keyword_counts.iter().enumerate() {
        let mut row = vec![m.to_string()];
        for runs in &algo_runs {
            let flat: Vec<QueryRun> = runs[mi].iter().flatten().copied().collect();
            let base: Vec<QueryRun> = base_runs[mi].iter().flatten().copied().collect();
            row.push(fmt_ratio(relative_ratio(&flat, &base)));
        }
        by_m.push_row(row);
    }

    let mut headers = vec!["Δ (km)".to_string()];
    headers.extend(algos.iter().map(|a| a.label()));
    let mut by_delta = Table::new(
        "fig11",
        "Relative ratio vs budget limit Δ (base: OSScaling ε = 0.1)",
        headers,
    );
    for (di, delta) in deltas.iter().enumerate() {
        let mut row = vec![format!("{delta}")];
        for runs in &algo_runs {
            let flat: Vec<QueryRun> = runs
                .iter()
                .flat_map(|per_m| per_m[di].iter())
                .copied()
                .collect();
            let base: Vec<QueryRun> = base_runs
                .iter()
                .flat_map(|per_m| per_m[di].iter())
                .copied()
                .collect();
            row.push(fmt_ratio(relative_ratio(&flat, &base)));
        }
        by_delta.push_row(row);
    }
    vec![by_m, by_delta]
}

/// Figures 12–13: greedy relative ratio and failure percentage as the
/// balance parameter α varies (Δ = 6 km, averaged over all keyword
/// counts).
pub fn fig12_13(ctx: &Context) -> Vec<Table> {
    let graph = ctx.flickr();
    let engine = KorEngine::new(&graph);
    let sets = ctx.workload(&graph, &ctx.profile.keyword_counts);
    let delta = ctx.profile.default_delta_km;
    let queries: Vec<_> = sets
        .iter()
        .flat_map(|set| set.queries.iter().map(|s| to_query(&graph, s, delta)))
        .collect();
    let base: Vec<QueryRun> = queries
        .iter()
        .map(|q| {
            run_algo(
                &engine,
                q,
                &Algo::OsScaling(OsScalingParams::with_epsilon(0.1)),
            )
        })
        .collect();

    let mut ratio = Table::new(
        "fig12",
        "Greedy relative ratio vs α (Δ = 6 km; feasible queries only)",
        vec!["α", "Greedy-1", "Greedy-2"],
    );
    let mut failures = Table::new(
        "fig13",
        "Greedy failure percentage vs α (Δ = 6 km)",
        vec!["α", "Greedy-1", "Greedy-2"],
    );
    for &alpha in &ctx.profile.alphas {
        let mut ratio_row = vec![format!("{alpha}")];
        let mut fail_row = vec![format!("{alpha}")];
        for beam in [1usize, 2] {
            let params = GreedyParams {
                alpha,
                beam_width: beam,
                ..GreedyParams::default()
            };
            let runs: Vec<QueryRun> = queries
                .iter()
                .map(|q| run_algo(&engine, q, &Algo::Greedy(params.clone())))
                .collect();
            ratio_row.push(fmt_ratio(relative_ratio(&runs, &base)));
            fail_row.push(fmt_pct(failure_pct(&runs, &base)));
        }
        ratio.push_row(ratio_row);
        failures.push_row(fail_row);
    }
    vec![ratio, failures]
}
