//! Figure 16: KkR (top-k) runtime as k grows.

use kor_core::{BucketBoundParams, OsScalingParams};

use crate::context::Context;
use crate::report::{fmt_ms, Table};
use crate::runner::{mean_ms, run_algo, to_query, Algo, QueryRun};

/// Figure 16: runtime of the KkR variants of `OSScaling` and
/// `BucketBound` for k = 1…5 (ε = 0.5, β = 1.2, Δ = 6 km, averaged over
/// all keyword counts).
pub fn fig16(ctx: &Context) -> Vec<Table> {
    let graph = ctx.flickr();
    let engine = kor_core::KorEngine::new(&graph);
    let sets = ctx.workload(&graph, &ctx.profile.keyword_counts);
    let delta = ctx.profile.default_delta_km;
    let queries: Vec<_> = sets
        .iter()
        .flat_map(|set| set.queries.iter().map(|s| to_query(&graph, s, delta)))
        .collect();

    let mut table = Table::new(
        "fig16",
        "KkR runtime vs k (ε = 0.5, β = 1.2, Δ = 6 km)",
        vec!["k", "OSScaling (ms)", "BucketBound (ms)"],
    );
    for &k in &ctx.profile.ks {
        let os: Vec<QueryRun> = queries
            .iter()
            .map(|q| {
                run_algo(
                    &engine,
                    q,
                    &Algo::TopKOsScaling(OsScalingParams::default(), k),
                )
            })
            .collect();
        let bb: Vec<QueryRun> = queries
            .iter()
            .map(|q| {
                run_algo(
                    &engine,
                    q,
                    &Algo::TopKBucketBound(BucketBoundParams::default(), k),
                )
            })
            .collect();
        table.push_row(vec![
            k.to_string(),
            fmt_ms(mean_ms(&os)),
            fmt_ms(mean_ms(&bb)),
        ]);
    }
    vec![table]
}
