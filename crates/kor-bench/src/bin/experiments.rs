//! CLI driver: regenerates the paper's tables and figures.
//!
//! ```bash
//! experiments [--paper|--quick] [--out DIR] [--list] [ids…]
//! ```
//!
//! Without ids, every experiment runs (in the paper's order). Tables are
//! printed to stdout and written as CSV under `results/<profile>/`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use kor_bench::experiments;
use kor_bench::{Context, Profile};

fn main() -> ExitCode {
    let mut profile = Profile::quick();
    let mut out_dir: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--paper" => profile = Profile::paper(),
            "--quick" => profile = Profile::quick(),
            "--out" => match args.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--list" => {
                for e in experiments::all() {
                    println!("{:<10} {}", e.id, e.title);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: experiments [--paper|--quick] [--out DIR] [--list] [ids…]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag {other}; see --help");
                return ExitCode::FAILURE;
            }
            id => ids.push(id.to_string()),
        }
    }

    let selected = if ids.is_empty() {
        experiments::all()
    } else {
        match experiments::select(&ids) {
            Some(sel) => sel,
            None => {
                eprintln!("unknown experiment id; use --list");
                return ExitCode::FAILURE;
            }
        }
    };

    let out_dir = out_dir.unwrap_or_else(|| PathBuf::from("results").join(&profile.name));
    println!(
        "KOR experiment suite — profile '{}' ({} queries/set) → {}",
        profile.name,
        profile.queries_per_set,
        out_dir.display()
    );
    let ctx = Context::new(profile);
    let suite_start = Instant::now();
    for exp in selected {
        println!("\n=== {} — {}", exp.id, exp.title);
        let start = Instant::now();
        let tables = (exp.run)(&ctx);
        for table in &tables {
            println!("\n{table}");
            match table.write_csv(&out_dir) {
                Ok(path) => println!("[csv] {}", path.display()),
                Err(e) => eprintln!("[csv] write failed: {e}"),
            }
        }
        println!("[time] {} took {:.1?}", exp.id, start.elapsed());
    }
    println!("\nSuite finished in {:.1?}", suite_start.elapsed());
    ExitCode::SUCCESS
}
