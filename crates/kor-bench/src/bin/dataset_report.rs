//! Dataset inspection tool: prints the generated datasets' shape and the
//! workload's feasibility profile, mirroring the paper's §4.1 dataset
//! description. Useful when calibrating generator parameters.
//!
//! ```bash
//! cargo run --release -p kor-bench --bin dataset-report [--paper]
//! ```

use kor_bench::{Context, Profile};
use kor_core::{KorEngine, KorQuery, OsScalingParams};

fn main() {
    let profile = if std::env::args().any(|a| a == "--paper") {
        Profile::paper()
    } else {
        Profile::quick()
    };
    println!("profile: {}", profile.name);
    let ctx = Context::new(profile);

    let graph = ctx.flickr();
    println!("\n== Flickr-like dataset ==\n{}", graph.stats());

    let engine = KorEngine::new(&graph);
    println!("\nfeasibility (queries with a feasible route / total):");
    println!("{:>10} {:>8} {:>8} {:>8}", "keywords", "Δ=3", "Δ=6", "Δ=15");
    for &m in &ctx.profile.keyword_counts {
        let sets = ctx.workload(&graph, &[m]);
        let mut cells = Vec::new();
        for delta in [3.0, 6.0, 15.0] {
            let mut feasible = 0;
            for spec in &sets[0].queries {
                let q = KorQuery::new(
                    &graph,
                    spec.source,
                    spec.target,
                    spec.keywords.clone(),
                    delta,
                )
                .expect("valid spec");
                if engine
                    .os_scaling(&q, &OsScalingParams::default())
                    .expect("valid params")
                    .route
                    .is_some()
                {
                    feasible += 1;
                }
            }
            cells.push(format!("{feasible}/{}", sets[0].queries.len()));
        }
        println!("{m:>10} {:>8} {:>8} {:>8}", cells[0], cells[1], cells[2]);
    }

    for &size in &ctx.profile.road_sizes[..1] {
        let road = ctx.road(size);
        println!("\n== Road network ({size} nodes) ==\n{}", road.stats());
    }
}
