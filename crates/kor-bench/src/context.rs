//! Shared, lazily-built experiment datasets.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use kor_data::{
    generate_flickr, generate_roadnet, generate_workload, QuerySet, RoadNetConfig, WorkloadConfig,
};
use kor_graph::Graph;
use kor_index::InvertedIndex;

use crate::profile::Profile;

/// Lazily generates and caches the datasets the experiments share, so a
/// run of many figures builds the Flickr-like graph exactly once.
pub struct Context {
    /// The sizing profile.
    pub profile: Profile,
    flickr: OnceLock<Arc<Graph>>,
    roads: Mutex<HashMap<usize, Arc<Graph>>>,
}

impl Context {
    /// Creates an empty context.
    pub fn new(profile: Profile) -> Self {
        Self {
            profile,
            flickr: OnceLock::new(),
            roads: Mutex::new(HashMap::new()),
        }
    }

    /// The Flickr-like dataset (generated on first use).
    pub fn flickr(&self) -> Arc<Graph> {
        self.flickr
            .get_or_init(|| {
                let (graph, stats) = generate_flickr(&self.profile.flickr);
                eprintln!(
                    "[data] flickr-like graph: {} locations, {} edges, {} tags ({} photos)",
                    stats.locations, stats.edges, stats.tags_used, stats.photos
                );
                Arc::new(graph)
            })
            .clone()
    }

    /// The road network of a given size (generated on first use).
    pub fn road(&self, nodes: usize) -> Arc<Graph> {
        let mut roads = self.roads.lock().expect("context poisoned");
        roads
            .entry(nodes)
            .or_insert_with(|| {
                let graph = generate_roadnet(&RoadNetConfig {
                    area_km: self.profile.road_area_km,
                    ..RoadNetConfig::with_nodes(nodes)
                });
                eprintln!(
                    "[data] road network: {} nodes, {} edges",
                    graph.node_count(),
                    graph.edge_count()
                );
                Arc::new(graph)
            })
            .clone()
    }

    /// The standard workload on a graph: one query set per keyword count,
    /// `queries_per_set` queries each, endpoints capped per the profile.
    pub fn workload(&self, graph: &Graph, keyword_counts: &[usize]) -> Vec<QuerySet> {
        self.workload_capped(graph, keyword_counts, self.profile.endpoint_cap_km)
    }

    /// Road-network workload: same shape, road endpoint cap.
    pub fn road_workload(&self, graph: &Graph, keyword_counts: &[usize]) -> Vec<QuerySet> {
        self.workload_capped(graph, keyword_counts, self.profile.road_endpoint_cap_km)
    }

    /// Workload with an explicit endpoint cap.
    pub fn workload_capped(
        &self,
        graph: &Graph,
        keyword_counts: &[usize],
        cap: Option<f64>,
    ) -> Vec<QuerySet> {
        let index = InvertedIndex::build(graph);
        generate_workload(
            graph,
            &index,
            &WorkloadConfig {
                keyword_counts: keyword_counts.to_vec(),
                queries_per_set: self.profile.queries_per_set,
                frequency_weighted: true,
                max_euclidean_km: cap,
                min_doc_fraction: self.profile.min_doc_fraction,
                seed: self.profile.seed,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_profile() -> Profile {
        let mut p = Profile::quick();
        p.queries_per_set = 2;
        p.flickr.users = 150;
        p.flickr.city_km = 6.0;
        p.flickr.vocab_size = 200;
        p.flickr.min_photos_per_location = 3;
        p.road_sizes = vec![100];
        p
    }

    #[test]
    fn flickr_is_cached() {
        let ctx = Context::new(tiny_profile());
        let a = ctx.flickr();
        let b = ctx.flickr();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.node_count() > 0);
    }

    #[test]
    fn roads_cached_per_size() {
        let ctx = Context::new(tiny_profile());
        let a = ctx.road(100);
        let b = ctx.road(100);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.node_count(), 100);
    }

    #[test]
    fn workload_respects_profile() {
        let ctx = Context::new(tiny_profile());
        let g = ctx.road(100);
        let sets = ctx.workload(&g, &[2, 4]);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].queries.len(), 2);
    }
}
