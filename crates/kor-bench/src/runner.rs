//! Measurement helpers shared by all experiments.

use std::time::Instant;

use kor_core::{BucketBoundParams, GreedyParams, KorEngine, KorQuery, OsScalingParams};
use kor_data::QuerySpec;
use kor_graph::Graph;

/// The algorithm variants the figures compare.
#[derive(Debug, Clone)]
pub enum Algo {
    /// `OSScaling` with the given parameters.
    OsScaling(OsScalingParams),
    /// `BucketBound` with the given parameters.
    BucketBound(BucketBoundParams),
    /// `Greedy` with the given parameters.
    Greedy(GreedyParams),
    /// KkR via `OSScaling`.
    TopKOsScaling(OsScalingParams, usize),
    /// KkR via `BucketBound`.
    TopKBucketBound(BucketBoundParams, usize),
}

impl Algo {
    /// Display name used in table headers.
    pub fn label(&self) -> String {
        match self {
            Algo::OsScaling(_) => "OSScaling".into(),
            Algo::BucketBound(_) => "BucketBound".into(),
            Algo::Greedy(p) => format!("Greedy-{}", p.beam_width),
            Algo::TopKOsScaling(_, k) => format!("OSScaling k={k}"),
            Algo::TopKBucketBound(_, k) => format!("BucketBound k={k}"),
        }
    }

    /// The paper's defaults: ε = 0.5, β = 1.2, α = 0.5.
    pub fn defaults() -> Vec<Algo> {
        vec![
            Algo::OsScaling(OsScalingParams::default()),
            Algo::BucketBound(BucketBoundParams::default()),
            Algo::Greedy(GreedyParams::with_beam(2)),
            Algo::Greedy(GreedyParams::with_beam(1)),
        ]
    }
}

/// Outcome of one (algorithm, query) measurement.
#[derive(Debug, Clone, Copy)]
pub struct QueryRun {
    /// Whether a feasible route was produced (for greedy: both hard
    /// constraints met).
    pub feasible: bool,
    /// The objective score of the returned feasible route.
    pub objective: Option<f64>,
    /// Wall-clock time in microseconds.
    pub micros: u64,
}

/// Runs one algorithm on one query.
pub fn run_algo<G: AsRef<kor_graph::Graph>>(
    engine: &KorEngine<G>,
    query: &KorQuery,
    algo: &Algo,
) -> QueryRun {
    let start = Instant::now();
    let (feasible, objective) = match algo {
        Algo::OsScaling(p) => {
            let r = engine.os_scaling(query, p).expect("valid params");
            (r.route.is_some(), r.route.map(|x| x.objective))
        }
        Algo::BucketBound(p) => {
            let r = engine.bucket_bound(query, p).expect("valid params");
            (r.route.is_some(), r.route.map(|x| x.objective))
        }
        Algo::Greedy(p) => match engine.greedy(query, p).expect("valid params") {
            Some(r) if r.is_feasible() => (true, Some(r.objective)),
            _ => (false, None),
        },
        Algo::TopKOsScaling(p, k) => {
            let r = engine.top_k_os_scaling(query, p, *k).expect("valid params");
            (r.is_feasible(), r.best().map(|x| x.objective))
        }
        Algo::TopKBucketBound(p, k) => {
            let r = engine
                .top_k_bucket_bound(query, p, *k)
                .expect("valid params");
            (r.is_feasible(), r.best().map(|x| x.objective))
        }
    };
    QueryRun {
        feasible,
        objective,
        micros: start.elapsed().as_micros() as u64,
    }
}

/// Instantiates a spec with a budget.
pub fn to_query(graph: &Graph, spec: &QuerySpec, delta: f64) -> KorQuery {
    KorQuery::new(
        graph,
        spec.source,
        spec.target,
        spec.keywords.clone(),
        delta,
    )
    .expect("generated specs are valid")
}

/// Mean runtime in milliseconds.
pub fn mean_ms(runs: &[QueryRun]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter().map(|r| r.micros as f64).sum::<f64>() / runs.len() as f64 / 1_000.0
}

/// Mean ratio `run.objective / base.objective` over queries where both
/// sides found a feasible route (the paper's relative-ratio measure).
pub fn relative_ratio(runs: &[QueryRun], base: &[QueryRun]) -> f64 {
    assert_eq!(runs.len(), base.len(), "ratio needs aligned run vectors");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (r, b) in runs.iter().zip(base) {
        if let (Some(ro), Some(bo)) = (r.objective, b.objective) {
            if bo > 0.0 {
                sum += ro / bo;
                n += 1;
            }
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Percentage of queries with no feasible answer from this algorithm,
/// among queries the reference found feasible (the paper's greedy
/// failure percentage).
pub fn failure_pct(runs: &[QueryRun], base: &[QueryRun]) -> f64 {
    assert_eq!(runs.len(), base.len());
    let mut failures = 0usize;
    let mut total = 0usize;
    for (r, b) in runs.iter().zip(base) {
        if b.feasible {
            total += 1;
            if !r.feasible {
                failures += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * failures as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kor_graph::fixtures::{figure1, t, v};

    fn run(feasible: bool, objective: Option<f64>, micros: u64) -> QueryRun {
        QueryRun {
            feasible,
            objective,
            micros,
        }
    }

    #[test]
    fn mean_ms_averages() {
        let runs = vec![run(true, Some(1.0), 1000), run(true, Some(2.0), 3000)];
        assert!((mean_ms(&runs) - 2.0).abs() < 1e-12);
        assert_eq!(mean_ms(&[]), 0.0);
    }

    #[test]
    fn relative_ratio_skips_infeasible() {
        let base = vec![
            run(true, Some(2.0), 0),
            run(false, None, 0),
            run(true, Some(4.0), 0),
        ];
        let runs = vec![
            run(true, Some(3.0), 0),
            run(true, Some(9.0), 0),
            run(false, None, 0),
        ];
        // only the first pair counts: 3/2
        assert!((relative_ratio(&runs, &base) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn failure_pct_counts_reference_feasible_only() {
        let base = vec![
            run(true, Some(1.0), 0),
            run(true, Some(1.0), 0),
            run(false, None, 0),
        ];
        let runs = vec![
            run(false, None, 0),
            run(true, Some(2.0), 0),
            run(false, None, 0),
        ];
        assert!((failure_pct(&runs, &base) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn run_algo_measures_all_variants() {
        let g = figure1();
        let engine = KorEngine::new(&g);
        let q = KorQuery::new(&g, v(0), v(7), vec![t(1), t(2)], 10.0).unwrap();
        for algo in Algo::defaults() {
            let r = run_algo(&engine, &q, &algo);
            assert!(r.feasible, "{}", algo.label());
            assert!(r.objective.unwrap() > 0.0);
        }
        let topk = run_algo(
            &engine,
            &q,
            &Algo::TopKOsScaling(OsScalingParams::default(), 3),
        );
        assert!(topk.feasible);
        let topb = run_algo(
            &engine,
            &q,
            &Algo::TopKBucketBound(BucketBoundParams::default(), 2),
        );
        assert!(topb.feasible);
    }

    #[test]
    fn labels_are_descriptive() {
        assert_eq!(
            Algo::OsScaling(OsScalingParams::default()).label(),
            "OSScaling"
        );
        assert_eq!(Algo::Greedy(GreedyParams::with_beam(2)).label(), "Greedy-2");
        assert_eq!(
            Algo::TopKBucketBound(BucketBoundParams::default(), 4).label(),
            "BucketBound k=4"
        );
    }
}
