//! Percentile extraction over latency samples, shared by `kor bench`
//! and `kor loadtest`.
//!
//! Both harnesses previously inlined the same nearest-rank closure; the
//! copies drifted on the degenerate inputs a smoke run can produce (a
//! pass aborted after 0–3 samples). This helper pins the behaviour:
//! never panic, and stay monotone in `p` so `p50 ≤ p95 ≤ p99` holds for
//! every sample count.

/// Nearest-rank percentile of `samples` (need not be sorted; a working
/// copy is sorted internally). Prefer [`percentile_sorted`] when taking
/// several percentiles of one set.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sort_samples(&mut sorted);
    percentile_sorted(&sorted, p)
}

/// Sorts latency samples with a total order (NaN sorts last, so a NaN
/// sample can only perturb the top percentiles, not all of them).
pub fn sort_samples(samples: &mut [f64]) {
    samples.sort_by(|a, b| a.total_cmp(b));
}

/// Nearest-rank percentile of an already-sorted sample set.
///
/// * `samples` empty ⇒ `0.0` (a smoke pass with no completed requests
///   reports zero latency rather than panicking);
/// * `p` is clamped to `[0, 1]`, the rank index to the sample range;
/// * monotone in `p`: for any fixed sample set, a larger `p` can never
///   select an earlier (smaller) sample.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
    let idx = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The degenerate counts the smoke profiles can produce: none of
    /// them may panic or order the percentiles backwards.
    #[test]
    fn tiny_sample_counts_stay_ordered() {
        let sets: [&[f64]; 4] = [&[], &[5.0], &[5.0, 1.0], &[9.0, 1.0, 5.0]];
        for samples in sets {
            let p50 = percentile(samples, 0.50);
            let p95 = percentile(samples, 0.95);
            let p99 = percentile(samples, 0.99);
            assert!(p50 <= p95, "{samples:?}: p50 {p50} > p95 {p95}");
            assert!(p95 <= p99, "{samples:?}: p95 {p95} > p99 {p99}");
        }
    }

    #[test]
    fn empty_reports_zero() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile_sorted(&[], 0.99), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        for p in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn out_of_range_p_is_clamped() {
        let samples = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, -0.5), 1.0);
        assert_eq!(percentile(&samples, 1.5), 3.0);
        assert_eq!(percentile(&samples, f64::NAN), 1.0);
    }

    #[test]
    fn nearest_rank_on_larger_sets() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&samples, 0.50), 51.0); // round(0.5·99) = 50
        assert_eq!(percentile(&samples, 0.95), 95.0);
        assert_eq!(percentile(&samples, 1.0), 100.0);
        assert_eq!(percentile(&samples, 0.0), 1.0);
    }

    #[test]
    fn monotone_in_p_across_counts() {
        for n in 0..8 {
            let samples: Vec<f64> = (0..n).map(|i| f64::from(i) * 3.5).collect();
            let mut last = f64::NEG_INFINITY;
            for i in 0..=20 {
                let v = percentile(&samples, f64::from(i) / 20.0);
                assert!(v >= last, "n={n}: not monotone at step {i}");
                last = v;
            }
        }
    }
}
